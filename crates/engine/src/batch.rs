//! Vectorized batch execution over columnar storage.
//!
//! [`try_select`] runs one planned `SELECT` batch-at-a-time against the
//! lazily built [`crate::column::ColumnarTable`] images: predicate
//! kernels produce selection vectors over typed column vectors, hash
//! joins probe column slices directly, and aggregation runs as
//! per-group accumulators — `Value`s are materialized only at result
//! boundaries.
//!
//! ## The one correctness rule
//!
//! The batch path may give up at **any** point — at compile time (a
//! shape or column kind outside the kernel set) or mid-execution (an
//! arithmetic overflow, a NaN reaching an ordered comparison, anything
//! the row engine would report as an error) — by returning `None`. The
//! caller then silently re-runs the statement on the row path, which is
//! the sole authority on errors. The batch path therefore never
//! *returns* an error; it either produces output byte-identical to the
//! row path's success, or it bails. Bailing is always safe; the only
//! hazard would be succeeding with different bytes, which the kernels
//! below avoid by mirroring row-path semantics exactly:
//!
//! - Three-valued logic is carried as `i8` tristates (`1`/`0`/`-1` for
//!   TRUE/FALSE/NULL); `AND`/`OR` combine via the same
//!   [`combine_logical`] the row engine uses. Both operands of a
//!   logical or arithmetic node are evaluated eagerly — where the row
//!   path would have short-circuited past an error, the batch path
//!   bails and lets the row path decide.
//! - Conjuncts are applied progressively: conjunct *k* is evaluated
//!   only over rows that survived conjuncts *1..k-1*, matching the
//!   row-at-a-time early exit, so a data-dependent error fires for
//!   exactly the same evaluation set.
//! - Join keys reproduce the row path's `sql_eq` hash keys (ints and
//!   integral floats unify; NULL and NaN never match), and reordered
//!   plans restore source row order the same way the row executor does.
//! - Grouping keys use the canonical-key relation ([`canon_num`]
//!   rounding, NaN collapsing) so float keys land in the same groups.
//!
//! Counters (under `SB_OBS=1`): the batch path emits the same
//! `engine.scan.rows` / `engine.scan.rows_pruned_pushdown` totals the
//! row scans would, plus `engine.columnar.*` operator counters — batch
//! counts, selection-vector density, dictionary LUT sizes — surfaced in
//! `profile_run` reports.

use std::collections::HashMap;
use std::sync::Arc;

use sb_sql::{
    AggArg, AggFunc, BinaryOp, ColumnRef, Expr, Literal, OrderItem, Select, SelectItem, UnaryOp,
};

use crate::column::{Column, ColumnData, ColumnarTable, DictColumn, NullMask};
use crate::database::Table;
use crate::error::EngineError;
use crate::eval::{
    apply_cmp, apply_unary, arith, combine_logical, like_match, literal_value, truth_ref, Scope,
};
use crate::exec::{is_aggregate_query, Projected, Relation};
use crate::key::{self, FxBuild, KeyIndex};
use crate::value::{canon_num, cmp_int_f64, Value};
use sb_obs::FixedOp;
use std::cmp::Ordering;

/// Resolved parallel-execution configuration for one batch run: the
/// effective worker fan-out and morsel size (see
/// [`crate::exec::ExecOptions::parallel`]). `workers <= 1` means every
/// operator takes its serial code path untouched.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ParConfig {
    pub(crate) workers: usize,
    pub(crate) morsel_rows: usize,
}

impl ParConfig {
    pub(crate) fn from_options(opts: &crate::exec::ExecOptions) -> ParConfig {
        let (workers, morsel_rows) = opts.par_config();
        ParConfig {
            workers,
            morsel_rows,
        }
    }

    /// Whether an operator over `rows` rows should dispatch morsels:
    /// more than one worker and more than one morsel of work. A single
    /// morsel (or a single worker) always runs the serial code.
    #[inline]
    fn active(&self, rows: usize) -> bool {
        self.workers > 1 && rows > self.morsel_rows
    }

    /// Number of morsels covering `rows` — a pure function of the row
    /// count and morsel size, never of the worker count.
    #[inline]
    fn morsels(&self, rows: usize) -> usize {
        rows.div_ceil(self.morsel_rows)
    }

    /// Row bounds of morsel `m` over `rows` rows.
    #[inline]
    fn bounds(&self, m: usize, rows: usize) -> (usize, usize) {
        let lo = m * self.morsel_rows;
        (lo, (lo + self.morsel_rows).min(rows))
    }
}

/// Everything the batch executor needs from the planned statement.
pub(crate) struct BatchInput<'a, 'q> {
    pub(crate) select: &'q Select,
    pub(crate) order_by: &'q [OrderItem],
    /// Full statement scope (all relations, original columns).
    pub(crate) scope: &'a Scope,
    pub(crate) relations: &'a [Relation<'a>],
    /// Pushed-down conjuncts per relation, planner order.
    pub(crate) pushed: &'a [Vec<&'q Expr>],
    /// Residual filter conjuncts over the joined row.
    pub(crate) residual: &'a [&'q Expr],
    pub(crate) planned: Option<&'a sb_opt::PlannedSelect<'q>>,
    /// Whether the executor is forced to nested-loop joins (the batch
    /// path only implements hash joins, and must not silently hash-join
    /// a query whose row path would error inside a nested-loop
    /// predicate).
    pub(crate) nested_loop: bool,
    /// Morsel-parallel execution knobs (workers, morsel size).
    pub(crate) par: ParConfig,
    /// Per-statement profile block (EXPLAIN ANALYZE), if requested.
    pub(crate) bp: Option<crate::exec::BlockProf<'a>>,
}

/// Record why the batch path bailed (first reason wins) and fall back.
fn bail(input: &BatchInput<'_, '_>, reason: &'static str) -> Option<Projected> {
    if let Some(bp) = &input.bp {
        bp.prof.set_fallback(bp.block, reason);
    }
    None
}

/// Attempt batch execution. `None` means "fall back to the row path" —
/// never an error.
pub(crate) fn try_select(input: &BatchInput<'_, '_>) -> Option<Projected> {
    let out = run(input);
    if sb_obs::enabled() {
        note_outcome(out.is_some());
    }
    out
}

fn run(input: &BatchInput<'_, '_>) -> Option<Projected> {
    if input.nested_loop && !input.select.joins.is_empty() {
        return bail(input, "nested-loop");
    }
    // Base tables with clean columnar images only.
    let tables: Vec<Arc<ColumnarTable>> = match input
        .relations
        .iter()
        .map(|r| match &r.source {
            crate::exec::RelSource::Base(t) => Table::columnar(t),
            crate::exec::RelSource::Derived(_) => None,
        })
        .collect::<Option<_>>()
    {
        Some(t) => t,
        None => return bail(input, "row-image"),
    };
    let cx = Cx {
        scope: input.scope,
        tables: &tables,
    };

    // Compile pushed and residual conjuncts up front: any resolution or
    // typing problem bails before touching data, leaving error behavior
    // (including "zero rows swallow residual errors") to the row path.
    let pushed: Vec<Vec<BoolK>> = match input
        .pushed
        .iter()
        .map(|conjs| conjs.iter().map(|c| cx.compile_bool(c)).collect())
        .collect::<Option<_>>()
    {
        Some(p) => p,
        None => return bail(input, "predicate-kernel"),
    };
    let residual: Vec<BoolK> = match input
        .residual
        .iter()
        .map(|c| cx.compile_bool(c))
        .collect::<Option<_>>()
    {
        Some(r) => r,
        None => return bail(input, "predicate-kernel"),
    };
    // Per-relation scans: progressive selection vectors, conjunct k
    // evaluated only over survivors of conjuncts 1..k-1.
    let mut sels: Vec<Vec<u32>> = Vec::with_capacity(tables.len());
    for (rel, conjs) in pushed.iter().enumerate() {
        let scanned = tables[rel].len;
        let prof_op = input.bp.as_ref().and_then(|b| b.scan(rel));
        let prof_t0 = crate::exec::prof_clock(&input.bp);
        if !conjs.is_empty() && input.par.active(scanned) {
            sels.push(filter_morsels(input, &tables, rel, conjs, scanned)?);
            crate::exec::prof_elapsed(prof_t0, prof_op);
            continue;
        }
        // `identity` defers materializing the 0..scanned index vector:
        // fused conjuncts iterate the range directly, so a scan whose
        // whole conjunct chain stays in the fused lanes never builds it.
        let mut sel: Vec<u32> = Vec::new();
        let mut identity = true;
        let mut ci = 0;
        while ci < conjs.len() {
            let conj = &conjs[ci];
            let selref = if identity {
                SelRef::Identity(scanned)
            } else {
                SelRef::Rows(&sel)
            };
            let before = selref.len();
            // Range fusion: consecutive bounds on one expression
            // evaluate in a single pass. Skipped under observability,
            // which wants the per-conjunct selectivity counters.
            if !sb_obs::enabled() && ci + 1 < conjs.len() {
                if let Some(fused) = filter_fused_pair(&tables, &selref, conj, &conjs[ci + 1]) {
                    match fused {
                        Fused::Kept(kept) => {
                            sel = kept;
                            identity = false;
                        }
                        _ => return None,
                    }
                    ci += 2;
                    continue;
                }
            }
            let fr = filter_fused(&tables, &selref, conj);
            match fr {
                Fused::Kept(kept) => {
                    sel = kept;
                    identity = false;
                }
                Fused::Bail => return None,
                Fused::Unhandled => {
                    if identity {
                        sel = (0..scanned as u32).collect();
                        identity = false;
                    }
                    let view = View::single(&tables, input.relations.len(), rel, &sel);
                    let tri = conj.eval(&view)?;
                    // Branch-free compaction: always write, advance the
                    // cursor only on a keep — no data-dependent branch
                    // to mispredict.
                    let mut kept = vec![0u32; before];
                    let mut k = 0usize;
                    for (i, &r) in sel.iter().enumerate() {
                        kept[k] = r;
                        k += (tri[i] == 1) as usize;
                    }
                    kept.truncate(k);
                    sel = kept;
                }
            }
            if sb_obs::enabled() {
                note_filter(before, sel.len());
            }
            ci += 1;
        }
        if identity {
            sel = (0..scanned as u32).collect();
        }
        if sb_obs::enabled() {
            note_scan(scanned, sel.len());
        }
        if let Some(op) = prof_op {
            op.rows(scanned as u64, sel.len() as u64);
            op.add_batches(1);
            crate::exec::prof_elapsed(prof_t0, Some(op));
        }
        sels.push(sel);
    }
    // Joins: hash only, source or planner order.
    let mut rowids = match join_all(&cx, input, sels) {
        Some(r) => r,
        None => return bail(input, "join-kernel"),
    };

    // Residual filter over the joined view.
    let filter_op = input.bp.as_ref().and_then(|b| b.fixed(FixedOp::Filter));
    let filter_in = rowids.first().map_or(0, |c| c.len());
    let filter_t0 = crate::exec::prof_clock(&input.bp);
    for conj in &residual {
        let view = View::all(&tables, &rowids);
        let tri = conj.eval(&view)?;
        let before = view.len;
        let mut keep_idx = vec![0usize; before];
        let mut k = 0usize;
        for (i, &t) in tri.iter().enumerate() {
            keep_idx[k] = i;
            k += (t == 1) as usize;
        }
        keep_idx.truncate(k);
        if sb_obs::enabled() {
            note_filter(before, keep_idx.len());
        }
        for col in &mut rowids {
            *col = keep_idx.iter().map(|&i| col[i]).collect();
        }
    }
    if !residual.is_empty() {
        if let Some(op) = filter_op {
            op.rows(
                filter_in as u64,
                rowids.first().map_or(0, |c| c.len()) as u64,
            );
            op.add_batches(residual.len() as u64);
            crate::exec::prof_elapsed(filter_t0, Some(op));
        }
    }
    let view = View::all(&tables, &rowids);
    if is_aggregate_query(input.select, input.order_by) {
        grouped(&cx, input, &view).or_else(|| bail(input, "agg-kernel"))
    } else {
        plain(&cx, input, &view).or_else(|| bail(input, "project-kernel"))
    }
}

/// Morsel-parallel pushed-filter scan for one relation: each morsel
/// applies the conjunct chain progressively over its own contiguous row
/// range, and the surviving per-morsel selections concatenate in morsel
/// order — which is exactly the serial scan's ascending selection.
///
/// A bail in any morsel bails the whole statement: every mid-execution
/// bail condition is a property of some evaluated row (a NaN reaching
/// an ordered comparison, an arithmetic error), and the per-conjunct
/// evaluation sets partition across morsels, so the serial scan over
/// their union would have bailed too. The reverse also holds — the
/// parallel path can never succeed where the serial path bails — which
/// is what keeps output byte-identical at any thread count.
fn filter_morsels(
    input: &BatchInput<'_, '_>,
    tables: &[Arc<ColumnarTable>],
    rel: usize,
    conjs: &[BoolK],
    scanned: usize,
) -> Option<Vec<u32>> {
    /// One morsel's surviving selection plus its per-conjunct
    /// `(rows_in, rows_out)` counts.
    type MorselPart = (Vec<u32>, Vec<(usize, usize)>);
    let par = input.par;
    let n_rel = input.relations.len();
    let (parts, stats) = rayon::morsel_map(par.morsels(scanned), par.workers, |m| {
        let (lo, hi) = par.bounds(m, scanned);
        let mut sel: Vec<u32> = (lo as u32..hi as u32).collect();
        // (rows_in, rows_out) per conjunct: summed across morsels after
        // the dispatch so filter counters match the serial totals.
        let mut counts = Vec::with_capacity(conjs.len());
        for conj in conjs {
            let before = sel.len();
            let kept = match filter_fused(tables, &SelRef::Rows(&sel), conj) {
                Fused::Kept(kept) => kept,
                Fused::Bail => return None,
                Fused::Unhandled => {
                    let view = View::single(tables, n_rel, rel, &sel);
                    let tri = conj.eval(&view)?;
                    let mut kept = vec![0u32; before];
                    let mut k = 0usize;
                    for (i, &r) in sel.iter().enumerate() {
                        kept[k] = r;
                        k += (tri[i] == 1) as usize;
                    }
                    kept.truncate(k);
                    kept
                }
            };
            counts.push((before, kept.len()));
            sel = kept;
        }
        Some((sel, counts))
    });
    let parts: Vec<MorselPart> = parts.into_iter().collect::<Option<_>>()?;
    let kept: usize = parts.iter().map(|(sel, _)| sel.len()).sum();
    let mut sel = Vec::with_capacity(kept);
    for (part, _) in &parts {
        sel.extend_from_slice(part);
    }
    if sb_obs::enabled() {
        for c in 0..conjs.len() {
            let rows_in: usize = parts.iter().map(|(_, counts)| counts[c].0).sum();
            let rows_out: usize = parts.iter().map(|(_, counts)| counts[c].1).sum();
            note_filter(rows_in, rows_out);
        }
        note_scan(scanned, sel.len());
        note_parallel(stats, parts.len());
    }
    if let Some(op) = input.bp.as_ref().and_then(|b| b.scan(rel)) {
        op.rows(scanned as u64, sel.len() as u64);
        op.add_batches(parts.len() as u64);
        op.parallel(stats.morsels as u64, stats.steals as u64);
    }
    Some(sel)
}

/// Result of [`filter_fused`]: either the conjunct's shape is outside
/// the fused lanes (fall back to the general kernel), or it evaluated
/// in one pass to a surviving selection / a bail.
enum Fused {
    Unhandled,
    Bail,
    Kept(Vec<u32>),
}

/// Single-pass fused filter for the hot pushed-predicate shapes:
/// `float_col ⊕ float_col  cmp  lit`, `float_col cmp lit` and
/// `int_col cmp lit` — either literal side, and either literal class
/// (an integer literal against a float expression compares exactly via
/// `cmp_int_f64`, never by lossy promotion). The general path
/// materializes the arithmetic batch, a null batch and a tristate
/// batch, then compacts; this computes value → compare → keep per row
/// with zero intermediate allocations.
///
/// Bail semantics are the general lane's exactly, per lane: the
/// homogeneous float lane bails on a NaN literal or a NaN anywhere in
/// the evaluated batch — including null slots, whose stored
/// placeholders the general lane's pre-scan also reads — while the
/// mixed lanes bail only on a NaN read from a *non-null* cell, because
/// that is when the generic cell loop's `cmp_cells(..)?` fires. Finite
/// placeholders stay finite (or overflow to ±inf) under Add/Sub/Mul,
/// so the fused arithmetic lane sees the same NaN set the materialized
/// batch would.
fn filter_fused(tables: &[Arc<ColumnarTable>], sel: &SelRef<'_>, conj: &BoolK) -> Fused {
    let Some((e, op, lit)) = cmp_lit_parts(conj) else {
        return Fused::Unhandled;
    };

    // Dispatch the comparison op OUTSIDE the row loop: each arm calls
    // the generic loop with a concrete keep-predicate closure, so the
    // per-row body monomorphizes to a branchless compare the compiler
    // can vectorize — an op match inside the loop costs ~3× here.
    macro_rules! by_op {
        ($loop:ident, $nulls:expr, $val:expr, $y:expr) => {{
            let y = $y;
            let val = $val;
            match op {
                BinaryOp::Eq => $loop(sel, $nulls, &val, &|x| x == y),
                BinaryOp::NotEq => $loop(sel, $nulls, &val, &|x| x != y),
                BinaryOp::Lt => $loop(sel, $nulls, &val, &|x| x < y),
                BinaryOp::LtEq => $loop(sel, $nulls, &val, &|x| x <= y),
                BinaryOp::Gt => $loop(sel, $nulls, &val, &|x| x > y),
                BinaryOp::GtEq => $loop(sel, $nulls, &val, &|x| x >= y),
                _ => unreachable!("comparison kernels only carry comparison ops"),
            }
        }};
    }

    // Like `by_op!` but the predicate is phrased as an ordering of the
    // row value against the literal — the mixed-class lanes, where the
    // exact compare is `cmp_int_f64`, not a primitive `<`.
    macro_rules! by_ord {
        ($loop:ident, $nulls:expr, $val:expr, $ord:expr) => {{
            let ord = $ord;
            let val = $val;
            match op {
                BinaryOp::Eq => $loop(sel, $nulls, &val, &|x| ord(x).is_eq()),
                BinaryOp::NotEq => $loop(sel, $nulls, &val, &|x| !ord(x).is_eq()),
                BinaryOp::Lt => $loop(sel, $nulls, &val, &|x| ord(x).is_lt()),
                BinaryOp::LtEq => $loop(sel, $nulls, &val, &|x| ord(x).is_le()),
                BinaryOp::Gt => $loop(sel, $nulls, &val, &|x| ord(x).is_gt()),
                BinaryOp::GtEq => $loop(sel, $nulls, &val, &|x| ord(x).is_ge()),
                _ => unreachable!("comparison kernels only carry comparison ops"),
            }
        }};
    }

    // Float-valued expression against either literal class. A float
    // literal follows the homogeneous lane's bail rule (NaN pre-scan
    // over every evaluated slot, nulls included); an integer literal
    // follows the mixed lane's (cells are read only when non-null, so
    // the null drop precedes the NaN bail). A literal within ±2^53 is
    // exactly representable as f64, so one up-front promotion turns the
    // mixed compare into the primitive float compare; beyond that the
    // per-row exact `cmp_int_f64` decides.
    macro_rules! float_lane {
        ($nulls:expr, $val:expr) => {{
            match lit {
                NumCell::F(y) => {
                    if y.is_nan() {
                        return Fused::Bail;
                    }
                    by_op!(float_loop, $nulls, $val, y)
                }
                NumCell::I(y) if y.unsigned_abs() <= (1u64 << 53) => {
                    by_op!(mixed_loop, $nulls, $val, y as f64)
                }
                NumCell::I(y) => {
                    by_ord!(mixed_loop, $nulls, $val, move |x: f64| cmp_int_f64(y, x)
                        .reverse())
                }
            }
        }};
    }

    // Integer column against either literal class. Int-vs-int cannot
    // bail; int-vs-float bails only when the literal is NaN *and* a
    // non-null row actually reads it (an all-null selection stays on
    // the fused path, exactly like the generic cell loop).
    macro_rules! int_lane {
        ($nulls:expr, $val:expr) => {{
            match lit {
                NumCell::I(y) => by_op!(int_loop, $nulls, $val, y),
                NumCell::F(y) if y.is_nan() => bail_if_any_valid(sel, $nulls),
                NumCell::F(y) => {
                    by_ord!(int_loop, $nulls, $val, move |x: i64| cmp_int_f64(x, y))
                }
            }
        }};
    }

    match e {
        NumK::FloatCol(id) => {
            let col = &tables[id.rel].columns[id.col];
            let ColumnData::Float(d) = &col.data else {
                return Fused::Unhandled;
            };
            float_lane!(&col.nulls, |i: usize| d[i])
        }
        NumK::IntCol(id) => {
            let col = &tables[id.rel].columns[id.col];
            let ColumnData::Int(d) = &col.data else {
                return Fused::Unhandled;
            };
            int_lane!(&col.nulls, |i: usize| d[i])
        }
        NumK::Arith { l, op: aop, r } => {
            let (NumK::FloatCol(ia), NumK::FloatCol(ib)) = (&**l, &**r) else {
                return Fused::Unhandled;
            };
            let (ca, cb) = (
                &tables[ia.rel].columns[ia.col],
                &tables[ib.rel].columns[ib.col],
            );
            let (ColumnData::Float(da), ColumnData::Float(db)) = (&ca.data, &cb.data) else {
                return Fused::Unhandled;
            };
            // The general lane's null batch is the OR of both masks.
            let nulls = NullPair(&ca.nulls, &cb.nulls);
            match aop {
                BinaryOp::Add => float_lane!(&nulls, |i: usize| da[i] + db[i]),
                BinaryOp::Sub => float_lane!(&nulls, |i: usize| da[i] - db[i]),
                BinaryOp::Mul => float_lane!(&nulls, |i: usize| da[i] * db[i]),
                _ => Fused::Unhandled,
            }
        }
        _ => Fused::Unhandled,
    }
}

/// An expression-vs-literal comparison conjunct, normalized so the
/// literal is on the right (`mirror` flips the op when it was left).
fn cmp_lit_parts(conj: &BoolK) -> Option<(&NumK, BinaryOp, NumCell)> {
    let BoolK::CmpNum { l, op, r } = conj else {
        return None;
    };
    match (l.as_lit(), r.as_lit()) {
        (None, Some(lit)) => Some((l, *op, lit)),
        (Some(lit), None) => Some((r, mirror(*op), lit)),
        _ => None,
    }
}

/// Structural equality of two float-valued expression kernels, for
/// range fusion: the same column, or the same `col ⊕ col` arithmetic.
fn same_float_expr(a: &NumK, b: &NumK) -> bool {
    match (a, b) {
        (NumK::FloatCol(x), NumK::FloatCol(y)) => x == y,
        (
            NumK::Arith {
                l: la,
                op: oa,
                r: ra,
            },
            NumK::Arith {
                l: lb,
                op: ob,
                r: rb,
            },
        ) => {
            oa == ob
                && matches!((&**la, &**lb), (NumK::FloatCol(x), NumK::FloatCol(y)) if x == y)
                && matches!((&**ra, &**rb), (NumK::FloatCol(x), NumK::FloatCol(y)) if x == y)
        }
        _ => false,
    }
}

/// Two consecutive conjuncts over the *same* float-valued expression
/// (`u - r < 2.22 AND u - r > 1`, `z > 0.5 AND z < 1`) fused into one
/// pass: the interval intersection of both bounds, with the expression
/// read once per row instead of once per conjunct. Only taken with
/// observability off — a fused pass cannot report the intermediate
/// per-conjunct selectivity the filter counters record, so obs runs
/// keep the two-pass chain (the kept set is identical either way).
///
/// `None` means "not this shape" and the single-conjunct lanes decide;
/// `Some` is always `Kept` or `Bail`. Exactness: the serial chain
/// keeps the non-null rows passing both compares, and bails under
/// conjunct 1's lane ordering — conjunct 2 re-reads only non-null,
/// non-NaN survivors, so beyond a NaN literal (which bails whichever
/// pass sees it) it adds no bail of its own.
fn filter_fused_pair(
    tables: &[Arc<ColumnarTable>],
    sel: &SelRef<'_>,
    c1: &BoolK,
    c2: &BoolK,
) -> Option<Fused> {
    let (e1, op1, l1) = cmp_lit_parts(c1)?;
    let (e2, op2, l2) = cmp_lit_parts(c2)?;
    if !same_float_expr(e1, e2) {
        return None;
    }
    // Literal → exact f64 bound; an integer beyond ±2^53 could round.
    let as_bound = |l: NumCell| -> Option<f64> {
        match l {
            NumCell::F(y) => Some(y),
            NumCell::I(y) if y.unsigned_abs() <= (1u64 << 53) => Some(y as f64),
            NumCell::I(_) => None,
        }
    };
    let (y1, y2) = (as_bound(l1)?, as_bound(l2)?);
    // Each op as a closed/open interval end pair; NotEq is no interval.
    let ends = |op: BinaryOp, y: f64| -> Option<(f64, bool, f64, bool)> {
        Some(match op {
            BinaryOp::Lt => (f64::NEG_INFINITY, false, y, true),
            BinaryOp::LtEq => (f64::NEG_INFINITY, false, y, false),
            BinaryOp::Gt => (y, true, f64::INFINITY, false),
            BinaryOp::GtEq => (y, false, f64::INFINITY, false),
            BinaryOp::Eq => (y, false, y, false),
            _ => return None,
        })
    };
    let (lo1, ls1, hi1, hs1) = ends(op1, y1)?;
    let (lo2, ls2, hi2, hs2) = ends(op2, y2)?;
    // Intersection: the tighter bound wins, strictness wins ties. NaN
    // bounds are resolved to a bail before this is consulted.
    let (lo, lo_s) = if lo1 > lo2 {
        (lo1, ls1)
    } else if lo2 > lo1 {
        (lo2, ls2)
    } else {
        (lo1, ls1 || ls2)
    };
    let (hi, hi_s) = if hi1 < hi2 {
        (hi1, hs1)
    } else if hi2 < hi1 {
        (hi2, hs2)
    } else {
        (hi1, hs1 || hs2)
    };

    macro_rules! by_bounds {
        ($loop:ident, $nulls:expr, $val:expr) => {{
            let val = $val;
            match (lo_s, hi_s) {
                (false, false) => $loop(sel, $nulls, &val, &|x| x >= lo && x <= hi),
                (false, true) => $loop(sel, $nulls, &val, &|x| x >= lo && x < hi),
                (true, false) => $loop(sel, $nulls, &val, &|x| x > lo && x <= hi),
                (true, true) => $loop(sel, $nulls, &val, &|x| x > lo && x < hi),
            }
        }};
    }

    // Conjunct 1's literal class picks the null/NaN scan ordering, as
    // in the single-conjunct lanes: a float literal pre-scans every
    // evaluated slot, an integer literal reads only non-null cells.
    let nan_first = matches!(l1, NumCell::F(_));
    Some(match e1 {
        NumK::FloatCol(id) => {
            let col = &tables[id.rel].columns[id.col];
            let ColumnData::Float(d) = &col.data else {
                return None;
            };
            if y1.is_nan() || y2.is_nan() {
                return Some(Fused::Bail);
            }
            if nan_first {
                by_bounds!(float_loop, &col.nulls, |i: usize| d[i])
            } else {
                by_bounds!(mixed_loop, &col.nulls, |i: usize| d[i])
            }
        }
        NumK::Arith { l, op: aop, r } => {
            let (NumK::FloatCol(ia), NumK::FloatCol(ib)) = (&**l, &**r) else {
                return None;
            };
            let (ca, cb) = (
                &tables[ia.rel].columns[ia.col],
                &tables[ib.rel].columns[ib.col],
            );
            let (ColumnData::Float(da), ColumnData::Float(db)) = (&ca.data, &cb.data) else {
                return None;
            };
            if y1.is_nan() || y2.is_nan() {
                return Some(Fused::Bail);
            }
            let nulls = NullPair(&ca.nulls, &cb.nulls);
            match (aop, nan_first) {
                (BinaryOp::Add, true) => by_bounds!(float_loop, &nulls, |i: usize| da[i] + db[i]),
                (BinaryOp::Sub, true) => by_bounds!(float_loop, &nulls, |i: usize| da[i] - db[i]),
                (BinaryOp::Mul, true) => by_bounds!(float_loop, &nulls, |i: usize| da[i] * db[i]),
                (BinaryOp::Add, false) => by_bounds!(mixed_loop, &nulls, |i: usize| da[i] + db[i]),
                (BinaryOp::Sub, false) => by_bounds!(mixed_loop, &nulls, |i: usize| da[i] - db[i]),
                (BinaryOp::Mul, false) => by_bounds!(mixed_loop, &nulls, |i: usize| da[i] * db[i]),
                _ => return None,
            }
        }
        _ => return None,
    })
}

/// The NaN-literal-vs-int-column case: the generic lane bails via
/// `cmp_cells(..)?` only at a non-null cell, so an entirely-NULL
/// selection keeps (an empty) fused result instead of bailing.
fn bail_if_any_valid(sel: &SelRef<'_>, nulls: &impl NullTest) -> Fused {
    if !nulls.any() {
        return if sel.len() == 0 {
            Fused::Kept(Vec::new())
        } else {
            Fused::Bail
        };
    }
    let any_valid = match sel {
        SelRef::Identity(n) => (0..*n).any(|i| !nulls.is_null(i)),
        SelRef::Rows(rows) => rows.iter().any(|&r| !nulls.is_null(r as usize)),
    };
    if any_valid {
        Fused::Bail
    } else {
        Fused::Kept(Vec::new())
    }
}

/// Null test over one or two masks, with the any-null check hoisted so
/// the all-valid fast path costs nothing per row.
trait NullTest {
    fn any(&self) -> bool;
    fn is_null(&self, i: usize) -> bool;
}
impl NullTest for NullMask {
    fn any(&self) -> bool {
        NullMask::any(self)
    }
    fn is_null(&self, i: usize) -> bool {
        NullMask::is_null(self, i)
    }
}
struct NullPair<'a>(&'a NullMask, &'a NullMask);
impl NullTest for NullPair<'_> {
    fn any(&self) -> bool {
        self.0.any() || self.1.any()
    }
    fn is_null(&self, i: usize) -> bool {
        self.0.is_null(i) | self.1.is_null(i)
    }
}

/// The fused float filter loop: value → NaN bail → null drop → compare,
/// writing survivors branch-free. Monomorphized per (value, keep) pair
/// by `filter_fused`'s op dispatch.
#[inline(always)]
fn float_loop(
    sel: &SelRef<'_>,
    nulls: &impl NullTest,
    value: &impl Fn(usize) -> f64,
    keep: &impl Fn(f64) -> bool,
) -> Fused {
    let n = sel.len();
    let mut kept = vec![0u32; n];
    let mut k = 0usize;
    let any_null = nulls.any();
    match sel {
        SelRef::Identity(_) => {
            for i in 0..n {
                let x = value(i);
                if x.is_nan() {
                    return Fused::Bail;
                }
                kept[k] = i as u32;
                k += ((!any_null || !nulls.is_null(i)) && keep(x)) as usize;
            }
        }
        SelRef::Rows(rows) => {
            for &r in *rows {
                let i = r as usize;
                let x = value(i);
                if x.is_nan() {
                    return Fused::Bail;
                }
                kept[k] = r;
                k += ((!any_null || !nulls.is_null(i)) && keep(x)) as usize;
            }
        }
    }
    kept.truncate(k);
    Fused::Kept(kept)
}

/// Mixed-class twin of [`float_loop`] for float values against an
/// integer literal. The generic lane reads a cell only when it is
/// non-null, so here the null drop precedes the NaN bail: a NaN parked
/// in a null slot must *not* bail, even though the homogeneous float
/// lane's pre-scan would.
#[inline(always)]
fn mixed_loop(
    sel: &SelRef<'_>,
    nulls: &impl NullTest,
    value: &impl Fn(usize) -> f64,
    keep: &impl Fn(f64) -> bool,
) -> Fused {
    let n = sel.len();
    let mut kept = vec![0u32; n];
    let mut k = 0usize;
    let any_null = nulls.any();
    match sel {
        SelRef::Identity(_) => {
            for i in 0..n {
                if any_null && nulls.is_null(i) {
                    continue;
                }
                let x = value(i);
                if x.is_nan() {
                    return Fused::Bail;
                }
                kept[k] = i as u32;
                k += keep(x) as usize;
            }
        }
        SelRef::Rows(rows) => {
            for &r in *rows {
                let i = r as usize;
                if any_null && nulls.is_null(i) {
                    continue;
                }
                let x = value(i);
                if x.is_nan() {
                    return Fused::Bail;
                }
                kept[k] = r;
                k += keep(x) as usize;
            }
        }
    }
    kept.truncate(k);
    Fused::Kept(kept)
}

/// Integer twin of [`float_loop`]; integer compares cannot bail, and
/// mixed int-vs-float-literal lanes reuse it (a non-NaN literal cannot
/// bail either, and null rows' discarded compares are harmless).
#[inline(always)]
fn int_loop(
    sel: &SelRef<'_>,
    nulls: &impl NullTest,
    value: &impl Fn(usize) -> i64,
    keep: &impl Fn(i64) -> bool,
) -> Fused {
    let n = sel.len();
    let mut kept = vec![0u32; n];
    let mut k = 0usize;
    let any_null = nulls.any();
    match sel {
        SelRef::Identity(_) => {
            for i in 0..n {
                kept[k] = i as u32;
                k += ((!any_null || !nulls.is_null(i)) && keep(value(i))) as usize;
            }
        }
        SelRef::Rows(rows) => {
            for &r in *rows {
                let i = r as usize;
                kept[k] = r;
                k += ((!any_null || !nulls.is_null(i)) && keep(value(i))) as usize;
            }
        }
    }
    kept.truncate(k);
    Fused::Kept(kept)
}

/// A selection that may still be the implicit identity (`0..n`),
/// letting the first fused conjunct of a scan skip materializing —
/// and then re-reading — the full index vector.
enum SelRef<'a> {
    Identity(usize),
    Rows(&'a [u32]),
}

impl SelRef<'_> {
    #[inline]
    fn len(&self) -> usize {
        match self {
            SelRef::Identity(n) => *n,
            SelRef::Rows(rows) => rows.len(),
        }
    }
}

// ---------------------------------------------------------------------
// Views: which rows of which relations a kernel evaluates over.
// ---------------------------------------------------------------------

/// A batch of joined rows: per relation, a selection vector of row ids
/// (`None` for relations not in scope of the current phase, e.g. other
/// relations during a pushed-down scan filter).
struct View<'a> {
    tables: &'a [Arc<ColumnarTable>],
    rows: Vec<Option<&'a [u32]>>,
    len: usize,
    /// Whether every in-scope selection is ascending and unique (true
    /// for scan-phase selections; false after a join, whose rowid
    /// columns may repeat rows). Only when this holds does full length
    /// imply the identity selection, unlocking memcpy-style gathers.
    ascending: bool,
}

impl<'a> View<'a> {
    fn single(tables: &'a [Arc<ColumnarTable>], n: usize, rel: usize, sel: &'a [u32]) -> Self {
        let mut rows = vec![None; n];
        rows[rel] = Some(sel);
        View {
            tables,
            rows,
            len: sel.len(),
            ascending: true,
        }
    }

    fn all(tables: &'a [Arc<ColumnarTable>], rowids: &'a [Vec<u32>]) -> Self {
        let len = rowids.first().map_or(0, Vec::len);
        View {
            tables,
            rows: rowids.iter().map(|c| Some(c.as_slice())).collect(),
            len,
            // A join can emit a base row any number of times; only the
            // single-relation passthrough keeps the scan's ordering.
            ascending: rowids.len() == 1,
        }
    }

    #[inline]
    fn col(&self, id: ColId) -> &'a Column {
        &self.tables[id.rel].columns[id.col]
    }

    /// Row id (into the base table) of batch row `i` for `id`'s relation.
    #[inline]
    fn rid(&self, id: ColId, i: usize) -> usize {
        self.rows[id.rel].expect("kernel touched an out-of-scope relation")[i] as usize
    }

    /// The whole selection vector for `id`'s relation (hot gathers hoist
    /// this out of their per-row loops).
    #[inline]
    fn sel(&self, id: ColId) -> &'a [u32] {
        self.rows[id.rel].expect("kernel touched an out-of-scope relation")
    }

    /// Whether `sel` is the identity selection over a table of
    /// `table_len` rows: ascending + unique + full length. Gathers may
    /// then read slots directly (or memcpy) instead of indirecting.
    #[inline]
    fn identity(&self, sel: &[u32], table_len: usize) -> bool {
        self.ascending && sel.len() == table_len
    }

    /// The sub-view over batch rows `lo..hi` (a morsel): same relations,
    /// each in-scope selection sliced to the range. Ascending carries
    /// over (a sub-slice of an ascending unique selection stays so);
    /// identity never holds for a proper sub-range, so gathers take the
    /// indirect path and read the same values the full view would.
    fn slice(&self, lo: usize, hi: usize) -> View<'a> {
        View {
            tables: self.tables,
            rows: self.rows.iter().map(|r| r.map(|s| &s[lo..hi])).collect(),
            len: hi - lo,
            ascending: self.ascending,
        }
    }
}

/// Per-selection null flags; an all-valid column memsets instead of
/// probing the bitmap row by row, and an identity selection (row i =
/// slot i) expands the bitmap word at a time. `identity` must be
/// established by the caller via [`View::identity`].
fn gather_nulls(mask: &NullMask, sel: &[u32], identity: bool) -> Vec<bool> {
    if !mask.any() {
        vec![false; sel.len()]
    } else if identity {
        let mut out = vec![false; sel.len()];
        mask.or_into(&mut out);
        out
    } else {
        sel.iter().map(|&r| mask.is_null(r as usize)).collect()
    }
}

/// A resolved column: relation index (FROM/JOIN order) and column index
/// in the relation's original (unpruned) layout.
#[derive(Clone, Copy, PartialEq, Eq)]
struct ColId {
    rel: usize,
    col: usize,
}

/// Kernel compiler context: resolution against the statement scope plus
/// the columnar images that decide each column's runtime class.
struct Cx<'a> {
    scope: &'a Scope,
    tables: &'a [Arc<ColumnarTable>],
}

impl Cx<'_> {
    fn resolve(&self, c: &ColumnRef) -> Option<ColId> {
        let flat = self.scope.resolve(c).ok()?;
        let rel = self.scope.bindings.iter().rposition(|b| b.offset <= flat)?;
        Some(ColId {
            rel,
            col: flat - self.scope.bindings[rel].offset,
        })
    }

    fn data(&self, id: ColId) -> &ColumnData {
        &self.tables[id.rel].columns[id.col].data
    }
}

// ---------------------------------------------------------------------
// Kernels. Every `eval` returns `Option`: `None` = bail to the row path.
// ---------------------------------------------------------------------

/// Numeric expression kernel.
enum NumK {
    IntCol(ColId),
    FloatCol(ColId),
    IntLit(i64),
    FloatLit(f64),
    NullLit,
    Neg(Box<NumK>),
    Arith {
        l: Box<NumK>,
        op: BinaryOp,
        r: Box<NumK>,
    },
}

/// Static class of a numeric kernel's output.
#[derive(Clone, Copy, PartialEq)]
enum NumTy {
    Int,
    Float,
    Null,
}

/// A numeric batch: typed data plus per-row null flags.
enum NumOut {
    Int(Vec<i64>, Vec<bool>),
    Float(Vec<f64>, Vec<bool>),
    AllNull,
}

impl NumK {
    /// The constant cell of a literal kernel, letting comparisons skip
    /// broadcasting the literal side into a full batch.
    #[inline]
    fn as_lit(&self) -> Option<NumCell> {
        match self {
            NumK::IntLit(k) => Some(NumCell::I(*k)),
            NumK::FloatLit(f) => Some(NumCell::F(*f)),
            _ => None,
        }
    }

    fn ty(&self) -> NumTy {
        match self {
            NumK::IntCol(_) | NumK::IntLit(_) => NumTy::Int,
            NumK::FloatCol(_) | NumK::FloatLit(_) => NumTy::Float,
            NumK::NullLit => NumTy::Null,
            NumK::Neg(e) => e.ty(),
            NumK::Arith { l, r, .. } => match (l.ty(), r.ty()) {
                (NumTy::Null, _) | (_, NumTy::Null) => NumTy::Null,
                (NumTy::Int, NumTy::Int) => NumTy::Int,
                _ => NumTy::Float,
            },
        }
    }

    fn eval(&self, v: &View) -> Option<NumOut> {
        let n = v.len;
        Some(match self {
            NumK::IntCol(id) => {
                let col = v.col(*id);
                let ColumnData::Int(data) = &col.data else {
                    return None;
                };
                let sel = v.sel(*id);
                let ident = v.identity(sel, data.len());
                let out = if ident {
                    data.clone()
                } else {
                    sel.iter().map(|&r| data[r as usize]).collect()
                };
                NumOut::Int(out, gather_nulls(&col.nulls, sel, ident))
            }
            NumK::FloatCol(id) => {
                let col = v.col(*id);
                let ColumnData::Float(data) = &col.data else {
                    return None;
                };
                let sel = v.sel(*id);
                let ident = v.identity(sel, data.len());
                let out = if ident {
                    data.clone()
                } else {
                    sel.iter().map(|&r| data[r as usize]).collect()
                };
                NumOut::Float(out, gather_nulls(&col.nulls, sel, ident))
            }
            NumK::IntLit(k) => NumOut::Int(vec![*k; n], vec![false; n]),
            NumK::FloatLit(f) => NumOut::Float(vec![*f; n], vec![false; n]),
            NumK::NullLit => NumOut::AllNull,
            NumK::Neg(e) => match e.eval(v)? {
                NumOut::AllNull => NumOut::AllNull,
                NumOut::Int(mut data, nulls) => {
                    for (d, &null) in data.iter_mut().zip(&nulls) {
                        if !null {
                            *d = d.checked_neg()?;
                        }
                    }
                    NumOut::Int(data, nulls)
                }
                NumOut::Float(mut data, nulls) => {
                    for d in &mut data {
                        *d = -*d;
                    }
                    NumOut::Float(data, nulls)
                }
            },
            NumK::Arith { l, op, r } => {
                // The hot filter shape `float_col ⊕ float_col` (q3's
                // color cut `u - r`) fuses gather and arithmetic into
                // one pass: no intermediate operand batches. Float
                // Add/Sub/Mul cannot error, so computing through null
                // slots (finite placeholders) is mask-safe.
                if let (NumK::FloatCol(ia), NumK::FloatCol(ib)) = (&**l, &**r) {
                    if matches!(op, BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul) {
                        let (ca, cb) = (v.col(*ia), v.col(*ib));
                        if let (ColumnData::Float(da), ColumnData::Float(db)) = (&ca.data, &cb.data)
                        {
                            let (sa, sb) = (v.sel(*ia), v.sel(*ib));
                            // Identity selections drop the index
                            // indirection so the loop vectorizes.
                            let identity = v.identity(sa, da.len()) && v.identity(sb, db.len());
                            let nulls = if !ca.nulls.any() && !cb.nulls.any() {
                                vec![false; n]
                            } else if identity {
                                let mut out = vec![false; n];
                                ca.nulls.or_into(&mut out);
                                cb.nulls.or_into(&mut out);
                                out
                            } else {
                                (0..n)
                                    .map(|i| {
                                        ca.nulls.is_null(sa[i] as usize)
                                            | cb.nulls.is_null(sb[i] as usize)
                                    })
                                    .collect()
                            };
                            let zip = || da.iter().zip(db.iter());
                            let gat = |i: usize| -> (f64, f64) {
                                (da[sa[i] as usize], db[sb[i] as usize])
                            };
                            let data: Vec<f64> = match (op, identity) {
                                (BinaryOp::Add, true) => zip().map(|(&a, &b)| a + b).collect(),
                                (BinaryOp::Sub, true) => zip().map(|(&a, &b)| a - b).collect(),
                                (_, true) => zip().map(|(&a, &b)| a * b).collect(),
                                (BinaryOp::Add, false) => (0..n)
                                    .map(|i| {
                                        let (a, b) = gat(i);
                                        a + b
                                    })
                                    .collect(),
                                (BinaryOp::Sub, false) => (0..n)
                                    .map(|i| {
                                        let (a, b) = gat(i);
                                        a - b
                                    })
                                    .collect(),
                                (_, false) => (0..n)
                                    .map(|i| {
                                        let (a, b) = gat(i);
                                        a * b
                                    })
                                    .collect(),
                            };
                            return Some(NumOut::Float(data, nulls));
                        }
                    }
                }
                // Both operands are evaluated even when one is statically
                // NULL: the row path evaluates both before its null
                // check, so an error hiding in either side must force a
                // bail, not be skipped.
                let a = l.eval(v)?;
                let b = r.eval(v)?;
                match (a, b) {
                    (NumOut::AllNull, _) | (_, NumOut::AllNull) => NumOut::AllNull,
                    (NumOut::Int(x, xn), NumOut::Int(y, yn)) => {
                        let mut out = Vec::with_capacity(n);
                        let mut nulls = Vec::with_capacity(n);
                        for i in 0..n {
                            if xn[i] || yn[i] {
                                out.push(0);
                                nulls.push(true);
                                continue;
                            }
                            let (a, b) = (x[i], y[i]);
                            let r = match op {
                                BinaryOp::Add => a.checked_add(b)?,
                                BinaryOp::Sub => a.checked_sub(b)?,
                                BinaryOp::Mul => a.checked_mul(b)?,
                                BinaryOp::Div => {
                                    if b == 0 {
                                        // Division by zero is NULL, not
                                        // an error.
                                        out.push(0);
                                        nulls.push(true);
                                        continue;
                                    }
                                    a.checked_div(b)?
                                }
                                _ => return None,
                            };
                            out.push(r);
                            nulls.push(false);
                        }
                        NumOut::Int(out, nulls)
                    }
                    (a, b) => {
                        // Mixed or float: both sides as f64, like the row
                        // path's `as_f64` promotion. Add/Sub/Mul compute
                        // straight through null slots (placeholders are
                        // finite 0.0s, and masked results are never
                        // read), so the loops stay branch-free.
                        let (x, xn) = a.into_f64();
                        let (y, yn) = b.into_f64();
                        let zip = || x.iter().zip(&y);
                        let mut nulls: Vec<bool> =
                            xn.iter().zip(&yn).map(|(&p, &q)| p | q).collect();
                        let out: Vec<f64> = match op {
                            BinaryOp::Add => zip().map(|(&a, &b)| a + b).collect(),
                            BinaryOp::Sub => zip().map(|(&a, &b)| a - b).collect(),
                            BinaryOp::Mul => zip().map(|(&a, &b)| a * b).collect(),
                            BinaryOp::Div => {
                                // Division by zero is NULL, not an error.
                                let mut out = Vec::with_capacity(n);
                                for i in 0..n {
                                    if nulls[i] || y[i] == 0.0 {
                                        nulls[i] = true;
                                        out.push(0.0);
                                    } else {
                                        out.push(x[i] / y[i]);
                                    }
                                }
                                out
                            }
                            _ => return None,
                        };
                        NumOut::Float(out, nulls)
                    }
                }
            }
        })
    }
}

/// One non-null cell of a numeric batch.
#[derive(Clone, Copy)]
enum NumCell {
    I(i64),
    F(f64),
}

impl NumOut {
    #[inline]
    fn cell(&self, i: usize) -> Option<NumCell> {
        match self {
            NumOut::Int(d, n) => (!n[i]).then(|| NumCell::I(d[i])),
            NumOut::Float(d, n) => (!n[i]).then(|| NumCell::F(d[i])),
            NumOut::AllNull => None,
        }
    }

    fn into_f64(self) -> (Vec<f64>, Vec<bool>) {
        match self {
            NumOut::Int(d, n) => (d.into_iter().map(|v| v as f64).collect(), n),
            NumOut::Float(d, n) => (d, n),
            NumOut::AllNull => unreachable!("AllNull handled before promotion"),
        }
    }
}

/// Ordering of two non-null numeric cells under `Value::compare`:
/// `None` exactly when a NaN is involved (the caller decides whether
/// that is a NULL, as in BETWEEN, or a row-path error, as in `<`).
#[inline]
fn cmp_cells(a: NumCell, b: NumCell) -> Option<Ordering> {
    match (a, b) {
        (NumCell::I(x), NumCell::I(y)) => Some(x.cmp(&y)),
        (NumCell::I(x), NumCell::F(y)) => (!y.is_nan()).then(|| cmp_int_f64(x, y)),
        (NumCell::F(x), NumCell::I(y)) => (!x.is_nan()).then(|| cmp_int_f64(y, x).reverse()),
        (NumCell::F(x), NumCell::F(y)) => x.partial_cmp(&y),
    }
}

/// `lit op x` rewritten as `x op' lit` so the swapped-literal lane can
/// share the unswapped loops.
fn mirror(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other,
    }
}

/// Branch-free tristate compare of one float batch against per-row
/// right-hand values produced by `rhs(i)`. Callers have already ruled
/// out NaN, so `total_cmp`-free primitive compares are exact.
macro_rules! cmp_lane {
    ($d:expr, $nulls:expr, $op:expr, $rhs:expr) => {{
        let (d, nulls) = ($d, $nulls);
        let tri = |b: bool, nl: bool| if nl { -1 } else { b as i8 };
        match $op {
            BinaryOp::Eq => (0..d.len())
                .map(|i| tri(d[i] == $rhs(i), nulls[i]))
                .collect(),
            BinaryOp::NotEq => (0..d.len())
                .map(|i| tri(d[i] != $rhs(i), nulls[i]))
                .collect(),
            BinaryOp::Lt => (0..d.len())
                .map(|i| tri(d[i] < $rhs(i), nulls[i]))
                .collect(),
            BinaryOp::LtEq => (0..d.len())
                .map(|i| tri(d[i] <= $rhs(i), nulls[i]))
                .collect(),
            BinaryOp::Gt => (0..d.len())
                .map(|i| tri(d[i] > $rhs(i), nulls[i]))
                .collect(),
            BinaryOp::GtEq => (0..d.len())
                .map(|i| tri(d[i] >= $rhs(i), nulls[i]))
                .collect(),
            _ => unreachable!("comparison kernels only carry comparison ops"),
        }
    }};
}

/// Batch vs. one literal cell. `swapped` means the literal was the left
/// operand. Same bail rule as [`cmp_cells`]: a NaN reaching an ordered
/// comparison is a row-path decision — the NaN pre-scan may over-bail
/// on a NaN hiding in a null slot, which is safe (the row path decides).
fn cmp_num_lit(a: &NumOut, op: BinaryOp, lit: NumCell, swapped: bool, n: usize) -> Option<Vec<i8>> {
    let op = if swapped { mirror(op) } else { op };
    Some(match (a, lit) {
        (NumOut::AllNull, _) => vec![-1; n],
        // Homogeneous fast lanes: NaN handling hoisted out of the loop,
        // per-row work is a primitive compare and a null select.
        (NumOut::Int(d, nulls), NumCell::I(y)) => cmp_lane!(d, nulls, op, |_i| y),
        (NumOut::Float(d, nulls), NumCell::F(y)) => {
            if y.is_nan() || d.iter().any(|v| v.is_nan()) {
                return None;
            }
            cmp_lane!(d, nulls, op, |_i| y)
        }
        // Mixed classes: per-row exact compare; `op` is already
        // mirrored, so x-vs-lit ordering is correct for both operand
        // orders.
        _ => {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(match a.cell(i) {
                    Some(x) => tri_of(cmp_cells(x, lit)?, op),
                    None => -1,
                });
            }
            out
        }
    })
}

/// Batch vs. batch comparison with typed fast lanes for the homogeneous
/// cases and the generic cell loop for mixed ones.
fn cmp_num_outs(a: &NumOut, op: BinaryOp, b: &NumOut, n: usize) -> Option<Vec<i8>> {
    Some(match (a, b) {
        (NumOut::AllNull, _) | (_, NumOut::AllNull) => vec![-1; n],
        (NumOut::Int(x, xn), NumOut::Int(y, yn)) => {
            let nulls: Vec<bool> = xn.iter().zip(yn).map(|(&p, &q)| p | q).collect();
            cmp_lane!(x, &nulls, op, |i: usize| y[i])
        }
        (NumOut::Float(x, xn), NumOut::Float(y, yn)) => {
            if x.iter().any(|v| v.is_nan()) || y.iter().any(|v| v.is_nan()) {
                return None;
            }
            let nulls: Vec<bool> = xn.iter().zip(yn).map(|(&p, &q)| p | q).collect();
            cmp_lane!(x, &nulls, op, |i: usize| y[i])
        }
        _ => {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(match (a.cell(i), b.cell(i)) {
                    (Some(x), Some(y)) => tri_of(cmp_cells(x, y)?, op),
                    _ => -1,
                });
            }
            out
        }
    })
}

#[inline]
fn tri_of(ord: Ordering, op: BinaryOp) -> i8 {
    let b = match op {
        BinaryOp::Eq => ord.is_eq(),
        BinaryOp::NotEq => !ord.is_eq(),
        BinaryOp::Lt => ord.is_lt(),
        BinaryOp::LtEq => ord.is_le(),
        BinaryOp::Gt => ord.is_gt(),
        BinaryOp::GtEq => ord.is_ge(),
        _ => unreachable!("comparison kernels only carry comparison ops"),
    };
    b as i8
}

/// Text expression kernel: a dictionary-encoded column, a literal, or
/// a statically-NULL value.
enum TextK {
    Col(ColId),
    Lit(String),
    Null,
}

impl TextK {
    fn dict<'a>(&self, v: &View<'a>, id: ColId) -> Option<(&'a DictColumn, &'a Column)> {
        let col = v.col(id);
        match &col.data {
            ColumnData::Text(d) => Some((d, col)),
            _ => None,
        }
    }
}

/// Boolean (tristate) expression kernel.
enum BoolK {
    Const(i8),
    Col(ColId),
    CmpNum {
        l: NumK,
        op: BinaryOp,
        r: NumK,
    },
    CmpText {
        l: TextK,
        op: BinaryOp,
        r: TextK,
    },
    CmpBool {
        l: Box<BoolK>,
        op: BinaryOp,
        r: Box<BoolK>,
    },
    BetweenNum {
        v: NumK,
        lo: NumK,
        hi: NumK,
        negated: bool,
    },
    BetweenText {
        v: TextK,
        lo: TextK,
        hi: TextK,
        negated: bool,
    },
    InList {
        v: Box<ValK>,
        items: Vec<Value>,
        negated: bool,
    },
    LikeDict {
        col: ColId,
        pattern: String,
        negated: bool,
    },
    IsNull {
        v: Box<AnyK>,
        negated: bool,
    },
    Not(Box<BoolK>),
    Logic {
        l: Box<BoolK>,
        op: BinaryOp,
        r: Box<BoolK>,
    },
}

impl BoolK {
    fn eval(&self, v: &View) -> Option<Vec<i8>> {
        let n = v.len;
        Some(match self {
            BoolK::Const(t) => vec![*t; n],
            BoolK::Col(id) => {
                let col = v.col(*id);
                let ColumnData::Bool(data) = &col.data else {
                    return None;
                };
                (0..n)
                    .map(|i| {
                        let r = v.rid(*id, i);
                        if col.nulls.is_null(r) {
                            -1
                        } else {
                            data[r] as i8
                        }
                    })
                    .collect()
            }
            BoolK::CmpNum { l, op, r } => match (l.as_lit(), r.as_lit()) {
                (None, Some(lit)) => cmp_num_lit(&l.eval(v)?, *op, lit, false, n)?,
                (Some(lit), None) => cmp_num_lit(&r.eval(v)?, *op, lit, true, n)?,
                _ => cmp_num_outs(&l.eval(v)?, *op, &r.eval(v)?, n)?,
            },
            BoolK::CmpText { l, op, r } => self.eval_cmp_text(v, l, *op, r)?,
            BoolK::CmpBool { l, op, r } => {
                let a = l.eval(v)?;
                let b = r.eval(v)?;
                a.iter()
                    .zip(&b)
                    .map(|(&x, &y)| {
                        if x < 0 || y < 0 {
                            -1
                        } else {
                            tri_of((x == 1).cmp(&(y == 1)), *op)
                        }
                    })
                    .collect()
            }
            BoolK::BetweenNum {
                v: e,
                lo,
                hi,
                negated,
            } => {
                let a = e.eval(v)?;
                let l = lo.eval(v)?;
                let h = hi.eval(v)?;
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    // `compare` semantics: NULL or NaN → unknown bound.
                    let ge = match (a.cell(i), l.cell(i)) {
                        (Some(x), Some(y)) => cmp_cells(x, y).map(Ordering::is_ge),
                        _ => None,
                    };
                    let le = match (a.cell(i), h.cell(i)) {
                        (Some(x), Some(y)) => cmp_cells(x, y).map(Ordering::is_le),
                        _ => None,
                    };
                    out.push(between_tri(ge, le, *negated));
                }
                out
            }
            BoolK::BetweenText {
                v: e,
                lo,
                hi,
                negated,
            } => {
                let a = TextBatch::gather(e, v)?;
                let l = TextBatch::gather(lo, v)?;
                let h = TextBatch::gather(hi, v)?;
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    let ge = match (a.get(v, i), l.get(v, i)) {
                        (Some(x), Some(y)) => Some(x.cmp(y).is_ge()),
                        _ => None,
                    };
                    let le = match (a.get(v, i), h.get(v, i)) {
                        (Some(x), Some(y)) => Some(x.cmp(y).is_le()),
                        _ => None,
                    };
                    out.push(between_tri(ge, le, *negated));
                }
                out
            }
            BoolK::InList {
                v: e,
                items,
                negated,
            } => {
                let vals = e.materialize(v, &[])?;
                vals.iter()
                    .map(|val| {
                        // Mirror of the row path's IN loop: `sql_eq` per
                        // item in order, first match wins, any unknown
                        // comparison remembered as NULL.
                        let mut saw_null = val.is_null();
                        let mut found = false;
                        for item in items {
                            match val.sql_eq(item) {
                                Some(true) => {
                                    found = true;
                                    break;
                                }
                                Some(false) => {}
                                None => saw_null = true,
                            }
                        }
                        if found {
                            !*negated as i8
                        } else if saw_null {
                            -1
                        } else {
                            *negated as i8
                        }
                    })
                    .collect()
            }
            BoolK::LikeDict {
                col,
                pattern,
                negated,
            } => {
                let c = v.col(*col);
                let ColumnData::Text(d) = &c.data else {
                    return None;
                };
                // One match per distinct string, not per row.
                let lut: Vec<i8> = d
                    .values
                    .iter()
                    .map(|s| (like_match(s, pattern) != *negated) as i8)
                    .collect();
                if sb_obs::enabled() {
                    note_dict_lut(lut.len(), n);
                }
                (0..n)
                    .map(|i| {
                        let r = v.rid(*col, i);
                        if c.nulls.is_null(r) {
                            -1
                        } else {
                            lut[d.codes[r] as usize]
                        }
                    })
                    .collect()
            }
            BoolK::IsNull { v: e, negated } => {
                let nulls = e.nulls(v)?;
                nulls
                    .into_iter()
                    .map(|is_null| (is_null != *negated) as i8)
                    .collect()
            }
            BoolK::Not(e) => e
                .eval(v)?
                .into_iter()
                .map(|t| if t < 0 { -1 } else { 1 - t })
                .collect(),
            BoolK::Logic { l, op, r } => {
                // Eager on both sides: if either side would have errored
                // past a row-path short circuit, the kernel bails and the
                // row path re-decides (including whether to error).
                let a = l.eval(v)?;
                let b = r.eval(v)?;
                a.iter()
                    .zip(&b)
                    .map(|(&x, &y)| opt_tri(combine_logical(*op, tri_opt(x), tri_opt(y))))
                    .collect()
            }
        })
    }

    fn eval_cmp_text(&self, v: &View, l: &TextK, op: BinaryOp, r: &TextK) -> Option<Vec<i8>> {
        let n = v.len;
        Some(match (l, r) {
            (TextK::Null, _) | (_, TextK::Null) => vec![-1; n],
            (TextK::Lit(a), TextK::Lit(b)) => vec![tri_of(a.as_str().cmp(b.as_str()), op); n],
            (TextK::Col(id), TextK::Lit(s)) => {
                let (d, c) = l.dict(v, *id)?;
                let lut: Vec<i8> = d
                    .values
                    .iter()
                    .map(|val| tri_of(val.as_str().cmp(s.as_str()), op))
                    .collect();
                if sb_obs::enabled() {
                    note_dict_lut(lut.len(), n);
                }
                (0..n)
                    .map(|i| {
                        let r = v.rid(*id, i);
                        if c.nulls.is_null(r) {
                            -1
                        } else {
                            lut[d.codes[r] as usize]
                        }
                    })
                    .collect()
            }
            (TextK::Lit(s), TextK::Col(id)) => {
                let (d, c) = r.dict(v, *id)?;
                let lut: Vec<i8> = d
                    .values
                    .iter()
                    .map(|val| tri_of(s.as_str().cmp(val.as_str()), op))
                    .collect();
                if sb_obs::enabled() {
                    note_dict_lut(lut.len(), n);
                }
                (0..n)
                    .map(|i| {
                        let r = v.rid(*id, i);
                        if c.nulls.is_null(r) {
                            -1
                        } else {
                            lut[d.codes[r] as usize]
                        }
                    })
                    .collect()
            }
            (TextK::Col(a), TextK::Col(b)) => {
                let (da, ca) = l.dict(v, *a)?;
                let (db, cb) = r.dict(v, *b)?;
                (0..n)
                    .map(|i| {
                        let (ra, rb) = (v.rid(*a, i), v.rid(*b, i));
                        if ca.nulls.is_null(ra) || cb.nulls.is_null(rb) {
                            -1
                        } else {
                            let x = &da.values[da.codes[ra] as usize];
                            let y = &db.values[db.codes[rb] as usize];
                            tri_of(x.as_str().cmp(y.as_str()), op)
                        }
                    })
                    .collect()
            }
        })
    }
}

/// Mirror of the row path's BETWEEN combination: a definite "out of
/// range" on either bound decides FALSE even when the other bound is
/// unknown.
#[inline]
fn between_tri(ge: Option<bool>, le: Option<bool>, negated: bool) -> i8 {
    let within = match (ge, le) {
        (Some(a), Some(b)) => Some(a && b),
        (Some(false), _) | (_, Some(false)) => Some(false),
        _ => None,
    };
    match within {
        Some(w) => (w != negated) as i8,
        None => -1,
    }
}

#[inline]
fn tri_opt(t: i8) -> Option<bool> {
    match t {
        1 => Some(true),
        0 => Some(false),
        _ => None,
    }
}

#[inline]
fn opt_tri(o: Option<bool>) -> i8 {
    match o {
        Some(true) => 1,
        Some(false) => 0,
        None => -1,
    }
}

/// A gathered text batch side for ordered text kernels.
enum TextBatch<'k> {
    Col(ColId),
    Lit(&'k str),
    Null,
}

impl<'k> TextBatch<'k> {
    fn gather(k: &'k TextK, v: &View) -> Option<Self> {
        Some(match k {
            TextK::Col(id) => {
                match v.col(*id).data {
                    ColumnData::Text(_) => {}
                    _ => return None,
                }
                TextBatch::Col(*id)
            }
            TextK::Lit(s) => TextBatch::Lit(s),
            TextK::Null => TextBatch::Null,
        })
    }

    fn get<'a>(&'a self, v: &View<'a>, i: usize) -> Option<&'a str> {
        match self {
            TextBatch::Col(id) => {
                let col = v.col(*id);
                let r = v.rid(*id, i);
                if col.nulls.is_null(r) {
                    return None;
                }
                let ColumnData::Text(d) = &col.data else {
                    unreachable!("checked at gather");
                };
                Some(&d.values[d.codes[r] as usize])
            }
            TextBatch::Lit(s) => Some(s),
            TextBatch::Null => None,
        }
    }
}

/// Any-class kernel used where only null-ness matters (`IS NULL`).
/// Evaluation still runs the full kernel so data-dependent errors the
/// row path would surface (e.g. an overflow inside the tested
/// expression) force a bail.
enum AnyK {
    Num(NumK),
    Text(TextK),
    Tri(BoolK),
}

impl AnyK {
    fn nulls(&self, v: &View) -> Option<Vec<bool>> {
        let n = v.len;
        Some(match self {
            AnyK::Num(k) => match k.eval(v)? {
                NumOut::Int(_, nulls) | NumOut::Float(_, nulls) => nulls,
                NumOut::AllNull => vec![true; n],
            },
            AnyK::Text(TextK::Col(id)) => {
                let col = v.col(*id);
                (0..n).map(|i| col.nulls.is_null(v.rid(*id, i))).collect()
            }
            AnyK::Text(TextK::Lit(_)) => vec![false; n],
            AnyK::Text(TextK::Null) => vec![true; n],
            AnyK::Tri(b) => b.eval(v)?.into_iter().map(|t| t < 0).collect(),
        })
    }
}

/// Value-producing kernel: projections, IN subjects, aggregate
/// arguments, ORDER BY keys. `OutCol(i)` reads already-projected output
/// column `i` (the ORDER BY alias fallback).
enum ValK {
    Num(NumK),
    Text(TextK),
    Tri(BoolK),
    OutCol(usize),
}

impl ValK {
    /// Materialize one `Value` per batch row. `projected` carries the
    /// projected output columns (column-major) for `OutCol`.
    fn materialize(&self, v: &View, projected: &[Vec<Value>]) -> Option<Vec<Value>> {
        let n = v.len;
        Some(match self {
            ValK::Num(k) => match k.eval(v)? {
                NumOut::Int(d, nulls) => d
                    .into_iter()
                    .zip(nulls)
                    .map(|(x, null)| if null { Value::Null } else { Value::Int(x) })
                    .collect(),
                NumOut::Float(d, nulls) => d
                    .into_iter()
                    .zip(nulls)
                    .map(|(x, null)| if null { Value::Null } else { Value::Float(x) })
                    .collect(),
                NumOut::AllNull => vec![Value::Null; n],
            },
            ValK::Text(TextK::Col(id)) => {
                let col = v.col(*id);
                let ColumnData::Text(d) = &col.data else {
                    return None;
                };
                (0..n)
                    .map(|i| {
                        let r = v.rid(*id, i);
                        if col.nulls.is_null(r) {
                            Value::Null
                        } else {
                            Value::Text(d.values[d.codes[r] as usize].clone())
                        }
                    })
                    .collect()
            }
            ValK::Text(TextK::Lit(s)) => vec![Value::Text(s.clone()); n],
            ValK::Text(TextK::Null) => vec![Value::Null; n],
            ValK::Tri(b) => b
                .eval(v)?
                .into_iter()
                .map(|t| match t {
                    1 => Value::Bool(true),
                    0 => Value::Bool(false),
                    _ => Value::Null,
                })
                .collect(),
            ValK::OutCol(i) => {
                let col = projected.get(*i)?;
                col.clone()
            }
        })
    }
}

// ---------------------------------------------------------------------
// Kernel compilation.
// ---------------------------------------------------------------------

impl Cx<'_> {
    fn compile_num(&self, e: &Expr) -> Option<NumK> {
        Some(match e {
            Expr::Column(c) => {
                let id = self.resolve(c)?;
                match self.data(id) {
                    ColumnData::Int(_) => NumK::IntCol(id),
                    ColumnData::Float(_) => NumK::FloatCol(id),
                    ColumnData::AllNull => NumK::NullLit,
                    _ => return None,
                }
            }
            Expr::Literal(Literal::Int(i)) => NumK::IntLit(*i),
            Expr::Literal(Literal::Float(f)) => NumK::FloatLit(*f),
            Expr::Literal(Literal::Null) => NumK::NullLit,
            Expr::Unary {
                op: UnaryOp::Neg,
                expr,
            } => NumK::Neg(Box::new(self.compile_num(expr)?)),
            Expr::Binary { left, op, right } if op.is_arithmetic() => NumK::Arith {
                l: Box::new(self.compile_num(left)?),
                op: *op,
                r: Box::new(self.compile_num(right)?),
            },
            _ => return None,
        })
    }

    fn compile_text(&self, e: &Expr) -> Option<TextK> {
        Some(match e {
            Expr::Column(c) => {
                let id = self.resolve(c)?;
                match self.data(id) {
                    ColumnData::Text(_) => TextK::Col(id),
                    ColumnData::AllNull => TextK::Null,
                    _ => return None,
                }
            }
            Expr::Literal(Literal::Str(s)) => TextK::Lit(s.clone()),
            Expr::Literal(Literal::Null) => TextK::Null,
            _ => return None,
        })
    }

    fn compile_bool(&self, e: &Expr) -> Option<BoolK> {
        Some(match e {
            Expr::Column(c) => {
                let id = self.resolve(c)?;
                match self.data(id) {
                    ColumnData::Bool(_) => BoolK::Col(id),
                    ColumnData::AllNull => BoolK::Const(-1),
                    _ => return None,
                }
            }
            Expr::Literal(Literal::Bool(b)) => BoolK::Const(*b as i8),
            Expr::Literal(Literal::Null) => BoolK::Const(-1),
            Expr::Unary {
                op: UnaryOp::Not,
                expr,
            } => BoolK::Not(Box::new(self.compile_bool(expr)?)),
            Expr::Binary { left, op, right } => match op {
                BinaryOp::And | BinaryOp::Or => BoolK::Logic {
                    l: Box::new(self.compile_bool(left)?),
                    op: *op,
                    r: Box::new(self.compile_bool(right)?),
                },
                op if op.is_comparison() => self.compile_cmp(left, *op, right)?,
                _ => return None,
            },
            Expr::Between {
                expr,
                negated,
                low,
                high,
            } => {
                // Same-class triples only: a cross-class BETWEEN can
                // still decide FALSE through the other bound in the row
                // path, which a typed kernel cannot reproduce — bail.
                if let (Some(v), Some(lo), Some(hi)) = (
                    self.compile_num(expr),
                    self.compile_num(low),
                    self.compile_num(high),
                ) {
                    BoolK::BetweenNum {
                        v,
                        lo,
                        hi,
                        negated: *negated,
                    }
                } else if let (Some(v), Some(lo), Some(hi)) = (
                    self.compile_text(expr),
                    self.compile_text(low),
                    self.compile_text(high),
                ) {
                    BoolK::BetweenText {
                        v,
                        lo,
                        hi,
                        negated: *negated,
                    }
                } else {
                    return None;
                }
            }
            Expr::InList {
                expr,
                negated,
                list,
            } => {
                let items: Vec<Value> = list
                    .iter()
                    .map(|item| match item {
                        Expr::Literal(l) => Some(literal_value(l)),
                        _ => None,
                    })
                    .collect::<Option<_>>()?;
                BoolK::InList {
                    v: Box::new(self.compile_val(expr)?),
                    items,
                    negated: *negated,
                }
            }
            Expr::Like {
                expr,
                negated,
                pattern,
            } => {
                let t = self.compile_text(expr)?;
                match pattern.as_ref() {
                    Expr::Literal(Literal::Str(p)) => match t {
                        TextK::Col(id) => BoolK::LikeDict {
                            col: id,
                            pattern: p.clone(),
                            negated: *negated,
                        },
                        TextK::Lit(s) => BoolK::Const((like_match(&s, p) != *negated) as i8),
                        TextK::Null => BoolK::Const(-1),
                    },
                    // NULL pattern: NULL for every row (the subject is a
                    // text column or literal, which cannot error first).
                    Expr::Literal(Literal::Null) => BoolK::Const(-1),
                    // Non-text pattern errors in the row path unless the
                    // subject is NULL.
                    Expr::Literal(_) => match t {
                        TextK::Null => BoolK::Const(-1),
                        _ => return None,
                    },
                    _ => return None,
                }
            }
            Expr::IsNull { expr, negated } => BoolK::IsNull {
                v: Box::new(self.compile_any(expr)?),
                negated: *negated,
            },
            _ => return None,
        })
    }

    fn compile_cmp(&self, l: &Expr, op: BinaryOp, r: &Expr) -> Option<BoolK> {
        if let (Some(a), Some(b)) = (self.compile_num(l), self.compile_num(r)) {
            return Some(BoolK::CmpNum { l: a, op, r: b });
        }
        if let (Some(a), Some(b)) = (self.compile_text(l), self.compile_text(r)) {
            return Some(BoolK::CmpText { l: a, op, r: b });
        }
        if let (Some(a), Some(b)) = (self.compile_bool(l), self.compile_bool(r)) {
            return Some(BoolK::CmpBool {
                l: Box::new(a),
                op,
                r: Box::new(b),
            });
        }
        None
    }

    fn compile_val(&self, e: &Expr) -> Option<ValK> {
        if let Some(k) = self.compile_num(e) {
            return Some(ValK::Num(k));
        }
        if let Some(k) = self.compile_text(e) {
            return Some(ValK::Text(k));
        }
        self.compile_bool(e).map(ValK::Tri)
    }

    fn compile_any(&self, e: &Expr) -> Option<AnyK> {
        if let Some(k) = self.compile_num(e) {
            return Some(AnyK::Num(k));
        }
        if let Some(k) = self.compile_text(e) {
            return Some(AnyK::Text(k));
        }
        self.compile_bool(e).map(AnyK::Tri)
    }

    /// ORDER BY key compiler, mirroring the row path's alias fallback:
    /// only a *bare* column that fails resolution with `UnknownColumn`
    /// may fall back to a projection alias; the matching item's **flat
    /// output column** at the item's index is used, exactly like
    /// `OrderProg::Projected`.
    fn compile_order_key(&self, e: &Expr, select: &Select) -> Option<ValK> {
        if let Expr::Column(c) = e {
            if c.table.is_none() {
                match self.scope.resolve(c) {
                    Err(EngineError::UnknownColumn(_)) => {
                        for (i, item) in select.projections.iter().enumerate() {
                            if let SelectItem::Expr { alias: Some(a), .. } = item {
                                if a.eq_ignore_ascii_case(&c.column) {
                                    return Some(ValK::OutCol(i));
                                }
                            }
                        }
                        return None; // row path errors
                    }
                    Err(_) => return None,
                    Ok(_) => {}
                }
            }
        }
        self.compile_val(e)
    }
}

// ---------------------------------------------------------------------
// Joins.
// ---------------------------------------------------------------------

/// Join hash key under SQL equality — the column-vector mirror of the
/// row executor's `join_key`: NULL and NaN never match, integral floats
/// unify with ints.
#[derive(PartialEq, Eq, Hash)]
enum JKey<'a> {
    Int(i64),
    Float(u64),
    Text(&'a str),
    Bool(bool),
}

fn col_join_key<'a>(col: &'a Column, rid: usize) -> Option<JKey<'a>> {
    const TWO_63: f64 = 9_223_372_036_854_775_808.0; // 2^63, exact as f64
    if col.nulls.is_null(rid) {
        return None;
    }
    match &col.data {
        ColumnData::Int(d) => Some(JKey::Int(d[rid])),
        ColumnData::Float(d) => {
            let f = d[rid];
            if f.is_nan() {
                None
            } else if f.fract() == 0.0 && (-TWO_63..TWO_63).contains(&f) {
                Some(JKey::Int(f as i64))
            } else {
                Some(JKey::Float(f.to_bits()))
            }
        }
        ColumnData::Bool(d) => Some(JKey::Bool(d[rid])),
        ColumnData::Text(d) => Some(JKey::Text(&d.values[d.codes[rid] as usize])),
        ColumnData::AllNull | ColumnData::Mixed => None,
    }
}

/// One hash-join step: probe column already in the accumulated output,
/// build column on the incoming relation.
struct JoinStep {
    new_rel: usize,
    probe: ColId,
    build_col: usize,
}

/// Morsel-parallel Int×Int hash-join build: per-morsel hash tables over
/// contiguous slices of the (ascending) build selection, merged in
/// morsel order. Each key's row-id list becomes the concatenation of
/// its ascending per-morsel runs, morsel by morsel — exactly the serial
/// build-scan order — so probe emission order is unchanged. Local map
/// iteration order during the merge is irrelevant: a key's rows arrive
/// from one local map at a time, in morsel order.
fn build_int_index_morsels(
    par: ParConfig,
    build_sel: &[u32],
    bd: &[i64],
    nulls: &NullMask,
    prof_op: Option<&sb_obs::OpStats>,
) -> HashMap<i64, Vec<u32>, FxBuild> {
    let n = build_sel.len();
    let bn = nulls.any();
    let (parts, stats) = rayon::morsel_map(par.morsels(n), par.workers, |m| {
        let (lo, hi) = par.bounds(m, n);
        let mut local: HashMap<i64, Vec<u32>, FxBuild> =
            HashMap::with_capacity_and_hasher(hi - lo, FxBuild::default());
        for &rid in &build_sel[lo..hi] {
            if bn && nulls.is_null(rid as usize) {
                continue;
            }
            local.entry(bd[rid as usize]).or_default().push(rid);
        }
        local
    });
    let merges: usize = parts.iter().map(HashMap::len).sum();
    let mut index: HashMap<i64, Vec<u32>, FxBuild> =
        HashMap::with_capacity_and_hasher(n, FxBuild::default());
    for local in parts {
        for (k, mut v) in local {
            match index.entry(k) {
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().append(&mut v),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(v);
                }
            }
        }
    }
    if sb_obs::enabled() {
        note_parallel(stats, merges);
    }
    if let Some(op) = prof_op {
        op.parallel(stats.morsels as u64, stats.steals as u64);
    }
    index
}

/// Morsel-parallel hash-join probe: each morsel probes a contiguous
/// range of the accumulated output rows and collects its matches
/// locally; concatenating per-morsel outputs in morsel order reproduces
/// the serial probe's emission order.
fn probe_int_morsels(
    par: ParConfig,
    index: &HashMap<i64, Vec<u32>, FxBuild>,
    acc: &[Vec<u32>],
    probe_pos: usize,
    pd: &[i64],
    nulls: &NullMask,
    prof_op: Option<&sb_obs::OpStats>,
) -> Vec<Vec<u32>> {
    let acc_len = acc[0].len();
    let pn = nulls.any();
    let (parts, stats) = rayon::morsel_map(par.morsels(acc_len), par.workers, |m| {
        let (lo, hi) = par.bounds(m, acc_len);
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); acc.len() + 1];
        for i in lo..hi {
            let prid = acc[probe_pos][i] as usize;
            if pn && nulls.is_null(prid) {
                continue;
            }
            let Some(matches) = index.get(&pd[prid]) else {
                continue;
            };
            for &rid in matches {
                for (c, col) in acc.iter().enumerate() {
                    out[c].push(col[i]);
                }
                out[acc.len()].push(rid);
            }
        }
        out
    });
    let merges = parts.len();
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); acc.len() + 1];
    for mut part in parts {
        for (c, col) in part.iter_mut().enumerate() {
            out[c].append(col);
        }
    }
    if sb_obs::enabled() {
        note_parallel(stats, merges);
    }
    if let Some(op) = prof_op {
        op.parallel(stats.morsels as u64, stats.steals as u64);
    }
    out
}

/// Execute all joins, returning one row-id column per relation (in
/// original FROM/JOIN order), rows in exactly the order the row-path
/// pipeline would emit.
/// A dense CSR join index over a compact integer key range: bucket
/// `key - min` holds the build-side row ids in build-scan order, so a
/// probe emits matches in exactly the order the hash index would.
struct DenseIntIndex {
    min: i64,
    /// `starts[b]..starts[b + 1]` bounds bucket `b` in `rids`.
    starts: Vec<u32>,
    rids: Vec<u32>,
}

impl DenseIntIndex {
    #[inline]
    fn get(&self, key: i64) -> &[u32] {
        // A negative or overflowing offset wraps to a huge u64 and
        // fails the range check — one compare covers all misses.
        match key.checked_sub(self.min) {
            Some(off) if (off as u64) < (self.starts.len() - 1) as u64 => {
                let b = off as usize;
                &self.rids[self.starts[b] as usize..self.starts[b + 1] as usize]
            }
            _ => &[],
        }
    }
}

/// Counting-sort the filtered build keys into [`DenseIntIndex`] CSR
/// buckets when their range is compact. "Compact" weighs the one cost
/// dense adds — zeroing `range + 1` bucket bounds — against the
/// hashing it removes, which scales with build keys *and* probes; a
/// sparse key space (e.g. random 63-bit ids) returns `None` and keeps
/// the hash index.
fn build_dense_int_index(
    build_sel: &[u32],
    bd: &[i64],
    nulls: &NullMask,
    probes: usize,
) -> Option<DenseIntIndex> {
    let bn = nulls.any();
    let mut min = i64::MAX;
    let mut max = i64::MIN;
    let mut keys = 0usize;
    for &rid in build_sel {
        if bn && nulls.is_null(rid as usize) {
            continue;
        }
        let v = bd[rid as usize];
        min = min.min(v);
        max = max.max(v);
        keys += 1;
    }
    if keys == 0 {
        return None;
    }
    let range = max as i128 - min as i128 + 1;
    if range > (32 * keys + 16 * probes).clamp(4096, 1 << 22) as i128 {
        return None;
    }
    let range = range as usize;
    let mut starts = vec![0u32; range + 1];
    for &rid in build_sel {
        if bn && nulls.is_null(rid as usize) {
            continue;
        }
        starts[(bd[rid as usize] - min) as usize + 1] += 1;
    }
    for b in 0..range {
        starts[b + 1] += starts[b];
    }
    let mut cursor: Vec<u32> = starts[..range].to_vec();
    let mut rids = vec![0u32; keys];
    for &rid in build_sel {
        if bn && nulls.is_null(rid as usize) {
            continue;
        }
        let b = (bd[rid as usize] - min) as usize;
        rids[cursor[b] as usize] = rid;
        cursor[b] += 1;
    }
    Some(DenseIntIndex { min, starts, rids })
}

fn join_all(cx: &Cx<'_>, input: &BatchInput<'_, '_>, sels: Vec<Vec<u32>>) -> Option<Vec<Vec<u32>>> {
    let n = sels.len();
    if n == 1 {
        return Some(sels);
    }

    let reordered = input.planned.is_some_and(|p| p.reordered);
    let (order, steps) = if reordered {
        let p = input.planned.expect("reordered implies planned");
        let mut steps = Vec::with_capacity(p.steps.len());
        for step in &p.steps {
            let key = step.key?;
            steps.push(JoinStep {
                new_rel: step.rel,
                probe: ColId {
                    rel: key.left_rel,
                    col: key.left_col,
                },
                build_col: key.right_col,
            });
        }
        (p.order.clone(), steps)
    } else {
        // Source order: extract each join's equi-key, requiring one side
        // in the accumulated scope and the other on the new relation —
        // anything else is a nested-loop join in the row path, whose
        // per-pair predicate evaluation can error.
        let mut steps = Vec::with_capacity(input.select.joins.len());
        for (j, join) in input.select.joins.iter().enumerate() {
            let new_rel = j + 1;
            let Some(Expr::Binary {
                left,
                op: BinaryOp::Eq,
                right,
            }) = &join.constraint
            else {
                return None;
            };
            let (Expr::Column(a), Expr::Column(b)) = (left.as_ref(), right.as_ref()) else {
                return None;
            };
            let (a, b) = (cx.resolve(a)?, cx.resolve(b)?);
            let (probe, build) = if a.rel < new_rel && b.rel == new_rel {
                (a, b)
            } else if b.rel < new_rel && a.rel == new_rel {
                (b, a)
            } else {
                return None;
            };
            steps.push(JoinStep {
                new_rel,
                probe,
                build_col: build.col,
            });
        }
        ((0..n).collect(), steps)
    };

    // Accumulated output: one row-id column per joined relation.
    let mut acc_rels: Vec<usize> = vec![order[0]];
    let mut acc: Vec<Vec<u32>> = vec![sels[order[0]].clone()];
    for (si, step) in steps.iter().enumerate() {
        let prof_op = input.bp.as_ref().and_then(|b| b.join(si));
        let prof_t0 = crate::exec::prof_clock(&input.bp);
        let build_tbl = &cx.tables[step.new_rel];
        let build_col = build_tbl.columns.get(step.build_col)?;
        let probe_col = cx.tables[step.probe.rel].columns.get(step.probe.col)?;
        if matches!(build_col.data, ColumnData::Mixed)
            || matches!(probe_col.data, ColumnData::Mixed)
        {
            return None;
        }
        // The probe relation must already be joined.
        let probe_pos = acc_rels.iter().position(|&r| r == step.probe.rel)?;

        // Build on the incoming relation's filtered rows, then probe
        // the accumulated output in order; matches append in build-scan
        // order — exactly the row pipeline's emission order.
        let build_sel = &sels[step.new_rel];
        let acc_len = acc[0].len();
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); acc.len() + 1];
        if let (ColumnData::Int(bd), ColumnData::Int(pd)) = (&build_col.data, &probe_col.data) {
            // Typed fast path: Int×Int keys hash the raw i64 with no
            // per-row JKey construction. Int columns never unify with
            // float keys, so equality semantics are unchanged.
            let par = input.par;
            let pn = probe_col.nulls.any();
            let serial = !par.active(build_sel.len()) && !par.active(acc_len);
            let dense = if serial {
                build_dense_int_index(build_sel, bd, &build_col.nulls, acc_len)
            } else {
                None
            };
            if let Some(dense) = dense {
                // Dense CSR probe: subtract + two array loads per probe,
                // no hashing. Buckets hold build row ids in build-scan
                // order, so emission order matches the hash index's.
                for i in 0..acc_len {
                    let prid = acc[probe_pos][i] as usize;
                    if pn && probe_col.nulls.is_null(prid) {
                        continue;
                    }
                    for &rid in dense.get(pd[prid]) {
                        for (c, col) in acc.iter().enumerate() {
                            out[c].push(col[i]);
                        }
                        out[acc.len()].push(rid);
                    }
                }
            } else {
                let index = if par.active(build_sel.len()) {
                    build_int_index_morsels(par, build_sel, bd, &build_col.nulls, prof_op)
                } else {
                    let mut index: HashMap<i64, Vec<u32>, FxBuild> =
                        HashMap::with_capacity_and_hasher(build_sel.len(), FxBuild::default());
                    let bn = build_col.nulls.any();
                    for &rid in build_sel {
                        if bn && build_col.nulls.is_null(rid as usize) {
                            continue;
                        }
                        index.entry(bd[rid as usize]).or_default().push(rid);
                    }
                    index
                };
                if par.active(acc_len) {
                    out = probe_int_morsels(
                        par,
                        &index,
                        &acc,
                        probe_pos,
                        pd,
                        &probe_col.nulls,
                        prof_op,
                    );
                } else {
                    for i in 0..acc_len {
                        let prid = acc[probe_pos][i] as usize;
                        if pn && probe_col.nulls.is_null(prid) {
                            continue;
                        }
                        let Some(matches) = index.get(&pd[prid]) else {
                            continue;
                        };
                        for &rid in matches {
                            for (c, col) in acc.iter().enumerate() {
                                out[c].push(col[i]);
                            }
                            out[acc.len()].push(rid);
                        }
                    }
                }
            }
        } else {
            let mut index: HashMap<JKey, Vec<u32>, FxBuild> =
                HashMap::with_capacity_and_hasher(build_sel.len(), FxBuild::default());
            for &rid in build_sel {
                if let Some(k) = col_join_key(build_col, rid as usize) {
                    index.entry(k).or_default().push(rid);
                }
            }
            for i in 0..acc_len {
                let Some(k) = col_join_key(probe_col, acc[probe_pos][i] as usize) else {
                    continue;
                };
                let Some(matches) = index.get(&k) else {
                    continue;
                };
                for &rid in matches {
                    for (c, col) in acc.iter().enumerate() {
                        out[c].push(col[i]);
                    }
                    out[acc.len()].push(rid);
                }
            }
        }
        if sb_obs::enabled() {
            note_join(build_sel.len(), acc_len, out[0].len());
        }
        if let Some(op) = prof_op {
            op.rows((acc_len + build_sel.len()) as u64, out[0].len() as u64);
            op.build_probe(build_sel.len() as u64, acc_len as u64);
            op.link((si == 0).then_some(order[0]), step.new_rel);
            crate::exec::prof_elapsed(prof_t0, Some(op));
        }
        acc = out;
        acc_rels.push(step.new_rel);
    }

    // Back to original relation order.
    let mut by_rel: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (pos, &rel) in acc_rels.iter().enumerate() {
        by_rel[rel] = std::mem::take(&mut acc[pos]);
    }

    if reordered {
        // Restore source-order emission: selection vectors are ascending,
        // so sorting by the row-id tuple in source-relation order equals
        // the row path's sort by scan-position tags. Surviving tuples are
        // unique, so an unstable sort is exact.
        let len = by_rel[0].len();
        let mut idx: Vec<usize> = (0..len).collect();
        idx.sort_unstable_by(|&x, &y| {
            for col in &by_rel {
                match col[x].cmp(&col[y]) {
                    Ordering::Equal => continue,
                    other => return other,
                }
            }
            Ordering::Equal
        });
        for col in &mut by_rel {
            *col = idx.iter().map(|&i| col[i]).collect();
        }
    }
    Some(by_rel)
}

// ---------------------------------------------------------------------
// Plain (non-aggregate) output.
// ---------------------------------------------------------------------

fn plain(cx: &Cx<'_>, input: &BatchInput<'_, '_>, view: &View<'_>) -> Option<Projected> {
    let select = input.select;
    let mut columns = Vec::new();
    for item in &select.projections {
        match item {
            SelectItem::Wildcard => columns.extend(cx.scope.all_columns()),
            other => columns.push(crate::exec::projection_name(other)),
        }
    }

    // Projections, column-major.
    let mut proj_cols: Vec<Vec<Value>> = Vec::with_capacity(columns.len());
    for item in &select.projections {
        match item {
            SelectItem::Wildcard => {
                for (rel, binding) in cx.scope.bindings.iter().enumerate() {
                    for col in 0..binding.columns.len() {
                        let id = ColId { rel, col };
                        if matches!(cx.data(id), ColumnData::Mixed) {
                            return None;
                        }
                        let gathered = (0..view.len)
                            .map(|i| view.col(id).value_at(view.rid(id, i)))
                            .collect();
                        proj_cols.push(gathered);
                    }
                }
            }
            SelectItem::Expr { expr, .. } => {
                let k = cx.compile_val(expr)?;
                proj_cols.push(k.materialize(view, &[])?);
            }
        }
    }

    // ORDER BY keys (may read projected output columns via the alias
    // fallback).
    let mut key_cols: Vec<Vec<Value>> = Vec::with_capacity(input.order_by.len());
    for item in input.order_by {
        let k = cx.compile_order_key(&item.expr, select)?;
        key_cols.push(k.materialize(view, &proj_cols)?);
    }

    Some(transpose(columns, proj_cols, key_cols, view.len))
}

/// Column-major kernel output to the executor's row-major `Projected`.
fn transpose(
    columns: Vec<String>,
    proj_cols: Vec<Vec<Value>>,
    key_cols: Vec<Vec<Value>>,
    len: usize,
) -> Projected {
    let mut out_rows: Vec<Vec<Value>> = (0..len)
        .map(|_| Vec::with_capacity(proj_cols.len()))
        .collect();
    for col in proj_cols {
        for (row, v) in out_rows.iter_mut().zip(col) {
            row.push(v);
        }
    }
    let mut keys: Vec<Vec<Value>> = (0..len)
        .map(|_| Vec::with_capacity(key_cols.len()))
        .collect();
    for col in key_cols {
        for (row, v) in keys.iter_mut().zip(col) {
            row.push(v);
        }
    }
    (columns, out_rows, keys)
}

// ---------------------------------------------------------------------
// Grouped (aggregate) output.
// ---------------------------------------------------------------------

/// An aggregate call lowered onto the batch: fast typed accumulators
/// where the argument class is statically known, the generic
/// materialize-and-reduce otherwise.
enum AggK {
    CountStar,
    CountAny(AnyK),
    SumInt(NumK),
    SumFloat(NumK),
    AvgNum(NumK),
    MinMaxInt(NumK, bool),
    MinMaxFloat(NumK, bool),
    Generic {
        arg: ValK,
        func: AggFunc,
        distinct: bool,
    },
}

/// A group-context expression: aggregates by registry index, scalars
/// evaluated on each group's first row, combinations at `Value` level
/// exactly like the row path's grouped evaluator.
enum GK {
    Agg(usize),
    Scalar(ValK),
    Binary {
        l: Box<GK>,
        op: BinaryOp,
        r: Box<GK>,
    },
    Unary {
        op: UnaryOp,
        e: Box<GK>,
    },
}

impl Cx<'_> {
    fn compile_gk(&self, e: &Expr, aggs: &mut Vec<AggK>) -> Option<GK> {
        Some(match e {
            Expr::Agg {
                func,
                distinct,
                arg,
            } => {
                let k = self.compile_agg(*func, *distinct, arg)?;
                aggs.push(k);
                GK::Agg(aggs.len() - 1)
            }
            Expr::Binary { left, op, right } => GK::Binary {
                l: Box::new(self.compile_gk(left, aggs)?),
                op: *op,
                r: Box::new(self.compile_gk(right, aggs)?),
            },
            Expr::Unary { op, expr } => GK::Unary {
                op: *op,
                e: Box::new(self.compile_gk(expr, aggs)?),
            },
            other => GK::Scalar(self.compile_val(other)?),
        })
    }

    fn compile_agg(&self, func: AggFunc, distinct: bool, arg: &AggArg) -> Option<AggK> {
        // COUNT(*) counts rows regardless of DISTINCT, like the row path.
        if matches!((func, arg), (AggFunc::Count, AggArg::Star)) {
            return Some(AggK::CountStar);
        }
        let AggArg::Expr(e) = arg else {
            return None; // row path: `f(*)` is only valid for COUNT
        };
        if distinct {
            return Some(AggK::Generic {
                arg: self.compile_val(e)?,
                func,
                distinct: true,
            });
        }
        if func == AggFunc::Count {
            return Some(AggK::CountAny(self.compile_any(e)?));
        }
        if let Some(k) = self.compile_num(e) {
            return Some(match (func, k.ty()) {
                (_, NumTy::Null) => AggK::Generic {
                    arg: ValK::Num(k),
                    func,
                    distinct: false,
                },
                (AggFunc::Sum, NumTy::Int) => AggK::SumInt(k),
                (AggFunc::Sum, NumTy::Float) => AggK::SumFloat(k),
                (AggFunc::Avg, _) => AggK::AvgNum(k),
                (AggFunc::Min, NumTy::Int) => AggK::MinMaxInt(k, false),
                (AggFunc::Max, NumTy::Int) => AggK::MinMaxInt(k, true),
                (AggFunc::Min, NumTy::Float) => AggK::MinMaxFloat(k, false),
                (AggFunc::Max, NumTy::Float) => AggK::MinMaxFloat(k, true),
                (AggFunc::Count, _) => unreachable!("handled above"),
            });
        }
        Some(AggK::Generic {
            arg: self.compile_val(e)?,
            func,
            distinct: false,
        })
    }
}

/// Group assignment: gid per batch row (first-occurrence order) plus the
/// first batch-row index of each group.
fn group_ids(cx: &Cx<'_>, view: &View<'_>, keys: &[ColId]) -> Option<(Vec<u32>, Vec<u32>)> {
    let n = view.len;
    let mut gids = Vec::with_capacity(n);
    let mut reps: Vec<u32> = Vec::new();
    if let [id] = keys {
        let col = view.col(*id);
        match &col.data {
            ColumnData::Text(d) => {
                // Dictionary fast path: one slot per code, plus NULL.
                let mut lut = vec![u32::MAX; d.values.len()];
                let mut null_gid = u32::MAX;
                let sel = view.sel(*id);
                let any_null = col.nulls.any();
                for (i, &r) in sel.iter().enumerate() {
                    let r = r as usize;
                    let slot = if any_null && col.nulls.is_null(r) {
                        &mut null_gid
                    } else {
                        &mut lut[d.codes[r] as usize]
                    };
                    if *slot == u32::MAX {
                        *slot = reps.len() as u32;
                        reps.push(i as u32);
                    }
                    gids.push(*slot);
                }
                if sb_obs::enabled() {
                    note_dict_lut(lut.len(), n);
                }
            }
            ColumnData::Int(d) => {
                let mut map: HashMap<i64, u32, FxBuild> = HashMap::default();
                let mut null_gid = u32::MAX;
                for i in 0..n {
                    let r = view.rid(*id, i);
                    let gid = if col.nulls.is_null(r) {
                        if null_gid == u32::MAX {
                            null_gid = reps.len() as u32;
                            reps.push(i as u32);
                        }
                        null_gid
                    } else {
                        *map.entry(d[r]).or_insert_with(|| {
                            reps.push(i as u32);
                            (reps.len() - 1) as u32
                        })
                    };
                    gids.push(gid);
                }
            }
            ColumnData::Float(d) => {
                // Canonical-key relation: micro-rounded bits, NaN
                // collapsed — identical partitions to the row path's
                // hashed `Vec<Value>` keys.
                let mut map: HashMap<u64, u32, FxBuild> = HashMap::default();
                let mut null_gid = u32::MAX;
                for i in 0..n {
                    let r = view.rid(*id, i);
                    let gid = if col.nulls.is_null(r) {
                        if null_gid == u32::MAX {
                            null_gid = reps.len() as u32;
                            reps.push(i as u32);
                        }
                        null_gid
                    } else {
                        *map.entry(canon_num(d[r]).to_bits()).or_insert_with(|| {
                            reps.push(i as u32);
                            (reps.len() - 1) as u32
                        })
                    };
                    gids.push(gid);
                }
            }
            ColumnData::Bool(d) => {
                let mut lut = [u32::MAX; 3];
                for i in 0..n {
                    let r = view.rid(*id, i);
                    let slot = if col.nulls.is_null(r) {
                        2
                    } else {
                        d[r] as usize
                    };
                    if lut[slot] == u32::MAX {
                        lut[slot] = reps.len() as u32;
                        reps.push(i as u32);
                    }
                    gids.push(lut[slot]);
                }
            }
            ColumnData::AllNull => {
                for i in 0..n {
                    if reps.is_empty() {
                        reps.push(i as u32);
                    }
                    gids.push(0);
                }
            }
            ColumnData::Mixed => return None,
        }
        let _ = cx;
        return Some((gids, reps));
    }

    // Multi-column keys: hashed `Vec<Value>` keys under the canonical
    // relation, same as the row path.
    let key_cols: Vec<Vec<Value>> = keys
        .iter()
        .map(|id| {
            if matches!(cx.data(*id), ColumnData::Mixed) {
                return None;
            }
            Some(
                (0..n)
                    .map(|i| view.col(*id).value_at(view.rid(*id, i)))
                    .collect(),
            )
        })
        .collect::<Option<_>>()?;
    let mut index = KeyIndex::default();
    let mut group_keys: Vec<Vec<Value>> = Vec::new();
    for i in 0..n {
        let buf: Vec<Value> = key_cols.iter().map(|c| c[i].clone()).collect();
        let h = key::hash_values(&buf);
        let gid = match index.insert(h, group_keys.len() as u32, |t| {
            key::values_key_eq(&group_keys[t as usize], &buf)
        }) {
            Some(existing) => existing,
            None => {
                group_keys.push(buf);
                reps.push(i as u32);
                (group_keys.len() - 1) as u32
            }
        };
        gids.push(gid);
    }
    Some((gids, reps))
}

/// Morsel-parallel single-key group assignment for dictionary-text and
/// integer keys. Each morsel groups its contiguous row range locally in
/// first-seen order; the local tables then merge **in morsel order** —
/// the first morsel to introduce a key wins the global slot, and within
/// a morsel keys arrive in local first-seen order — so global group ids
/// and representatives reproduce the serial first-seen row order
/// exactly. Per-row local ids translate through the merge table and
/// concatenate in morsel order.
///
/// `None` means the key kind has no parallel kernel; the caller falls
/// back to the serial [`group_ids`], not to the row path.
fn group_ids_morsels(view: &View<'_>, id: ColId, par: ParConfig) -> Option<(Vec<u32>, Vec<u32>)> {
    let n = view.len;
    let col = view.col(id);
    let rows = view.sel(id);
    match &col.data {
        ColumnData::Text(d) => {
            let nv = d.values.len();
            // Dictionary codes index a per-morsel LUT directly; slot
            // `nv` is the NULL group.
            let (parts, stats) = rayon::morsel_map(par.morsels(n), par.workers, |m| {
                let (lo, hi) = par.bounds(m, n);
                let mut lut = vec![u32::MAX; nv + 1];
                let mut gids = Vec::with_capacity(hi - lo);
                let mut order: Vec<(u32, u32)> = Vec::new();
                for (i, &r) in rows[lo..hi].iter().enumerate() {
                    let r = r as usize;
                    let slot = if col.nulls.is_null(r) {
                        nv
                    } else {
                        d.codes[r] as usize
                    };
                    if lut[slot] == u32::MAX {
                        lut[slot] = order.len() as u32;
                        order.push((slot as u32, (lo + i) as u32));
                    }
                    gids.push(lut[slot]);
                }
                (gids, order)
            });
            let mut lut = vec![u32::MAX; nv + 1];
            let mut reps: Vec<u32> = Vec::new();
            let mut gids = Vec::with_capacity(n);
            let merges: usize = parts.iter().map(|(_, order)| order.len()).sum();
            for (local_gids, order) in &parts {
                let mut tr = Vec::with_capacity(order.len());
                for &(slot, first) in order {
                    let slot = slot as usize;
                    if lut[slot] == u32::MAX {
                        lut[slot] = reps.len() as u32;
                        reps.push(first);
                    }
                    tr.push(lut[slot]);
                }
                gids.extend(local_gids.iter().map(|&lg| tr[lg as usize]));
            }
            if sb_obs::enabled() {
                note_dict_lut(nv, n);
                note_parallel(stats, merges);
            }
            Some((gids, reps))
        }
        ColumnData::Int(d) => {
            let (parts, stats) = rayon::morsel_map(par.morsels(n), par.workers, |m| {
                let (lo, hi) = par.bounds(m, n);
                let mut map: HashMap<i64, u32, FxBuild> = HashMap::default();
                let mut null_gid = u32::MAX;
                let mut gids = Vec::with_capacity(hi - lo);
                let mut order: Vec<(Option<i64>, u32)> = Vec::new();
                for (i, &r) in rows[lo..hi].iter().enumerate() {
                    let r = r as usize;
                    let gid = if col.nulls.is_null(r) {
                        if null_gid == u32::MAX {
                            null_gid = order.len() as u32;
                            order.push((None, (lo + i) as u32));
                        }
                        null_gid
                    } else {
                        *map.entry(d[r]).or_insert_with(|| {
                            order.push((Some(d[r]), (lo + i) as u32));
                            (order.len() - 1) as u32
                        })
                    };
                    gids.push(gid);
                }
                (gids, order)
            });
            let mut map: HashMap<i64, u32, FxBuild> = HashMap::default();
            let mut null_gid = u32::MAX;
            let mut reps: Vec<u32> = Vec::new();
            let mut gids = Vec::with_capacity(n);
            let merges: usize = parts.iter().map(|(_, order)| order.len()).sum();
            for (local_gids, order) in &parts {
                let mut tr = Vec::with_capacity(order.len());
                for &(key, first) in order {
                    let gid = match key {
                        None => {
                            if null_gid == u32::MAX {
                                null_gid = reps.len() as u32;
                                reps.push(first);
                            }
                            null_gid
                        }
                        Some(k) => *map.entry(k).or_insert_with(|| {
                            reps.push(first);
                            (reps.len() - 1) as u32
                        }),
                    };
                    tr.push(gid);
                }
                gids.extend(local_gids.iter().map(|&lg| tr[lg as usize]));
            }
            if sb_obs::enabled() {
                note_parallel(stats, merges);
            }
            Some((gids, reps))
        }
        _ => None,
    }
}

/// Whether an aggregate's thread-local partials merge into exactly the
/// serial result: counts add, min/max fold associatively (with the same
/// NaN bail set — a NaN shares a comparison with another value iff its
/// group holds two or more values, regardless of partitioning), and int
/// sums carry 128-bit prefix extremes so the merged bail decision
/// equals the serial running `checked_add` (see [`accumulate_morsels`]).
/// Float sums and averages are order-sensitive and accumulate serially.
fn agg_mergeable(agg: &AggK) -> bool {
    matches!(
        agg,
        AggK::CountStar
            | AggK::CountAny(_)
            | AggK::SumInt(_)
            | AggK::MinMaxInt(..)
            | AggK::MinMaxFloat(..)
    )
}

/// One aggregate's thread-local partial state over a morsel.
enum AggPart {
    Counts(Vec<i64>),
    /// Per group: running total plus the maximum and minimum **prefix
    /// sum** reached inside the morsel (128-bit, overflow-free for any
    /// feasible row count). Merging morsels `a` then `b` shifts `b`'s
    /// prefix extremes by `a`'s total, so the merged extremes are those
    /// of the concatenated row sequence — and the serial path bails iff
    /// some prefix leaves the i64 range, which is exactly the merged
    /// condition.
    SumInt {
        total: Vec<i128>,
        maxp: Vec<i128>,
        minp: Vec<i128>,
        has: Vec<bool>,
    },
    BestInt(Vec<Option<i64>>),
    BestFloat(Vec<Option<f64>>),
}

/// Morsel-parallel aggregation: every aggregate accumulates into
/// thread-local per-group tables over its morsel's sub-view, and the
/// per-morsel tables merge in morsel order. The caller guarantees every
/// aggregate satisfies [`agg_mergeable`]; group ids are global (see
/// [`group_ids_morsels`]), so the merge is a per-group fold with no
/// key matching.
fn accumulate_morsels(
    aggs: &[AggK],
    view: &View<'_>,
    gids: &[u32],
    n_groups: usize,
    par: ParConfig,
) -> Option<Vec<Vec<Value>>> {
    let n = view.len;
    let (parts, stats) = rayon::morsel_map(par.morsels(n), par.workers, |m| {
        let (lo, hi) = par.bounds(m, n);
        let sub = view.slice(lo, hi);
        let g = &gids[lo..hi];
        let mut out = Vec::with_capacity(aggs.len());
        for agg in aggs {
            out.push(match agg {
                AggK::CountStar => {
                    let mut counts = vec![0i64; n_groups];
                    for &gid in g {
                        counts[gid as usize] += 1;
                    }
                    AggPart::Counts(counts)
                }
                AggK::CountAny(k) => {
                    let nulls = k.nulls(&sub)?;
                    let mut counts = vec![0i64; n_groups];
                    for (&gid, null) in g.iter().zip(nulls) {
                        if !null {
                            counts[gid as usize] += 1;
                        }
                    }
                    AggPart::Counts(counts)
                }
                AggK::SumInt(k) => {
                    let NumOut::Int(data, nulls) = k.eval(&sub)? else {
                        return None;
                    };
                    let mut total = vec![0i128; n_groups];
                    let mut maxp = vec![i128::MIN; n_groups];
                    let mut minp = vec![i128::MAX; n_groups];
                    let mut has = vec![false; n_groups];
                    for i in 0..data.len() {
                        if nulls[i] {
                            continue;
                        }
                        let gi = g[i] as usize;
                        total[gi] += data[i] as i128;
                        maxp[gi] = maxp[gi].max(total[gi]);
                        minp[gi] = minp[gi].min(total[gi]);
                        has[gi] = true;
                    }
                    AggPart::SumInt {
                        total,
                        maxp,
                        minp,
                        has,
                    }
                }
                AggK::MinMaxInt(k, max) => {
                    let NumOut::Int(data, nulls) = k.eval(&sub)? else {
                        return None;
                    };
                    let mut best: Vec<Option<i64>> = vec![None; n_groups];
                    for i in 0..data.len() {
                        if nulls[i] {
                            continue;
                        }
                        let slot = &mut best[g[i] as usize];
                        let take = match *slot {
                            None => true,
                            Some(b) => {
                                if *max {
                                    data[i] > b
                                } else {
                                    data[i] < b
                                }
                            }
                        };
                        if take {
                            *slot = Some(data[i]);
                        }
                    }
                    AggPart::BestInt(best)
                }
                AggK::MinMaxFloat(k, max) => {
                    let NumOut::Float(data, nulls) = k.eval(&sub)? else {
                        return None;
                    };
                    let mut best: Vec<Option<f64>> = vec![None; n_groups];
                    for i in 0..data.len() {
                        if nulls[i] {
                            continue;
                        }
                        let slot = &mut best[g[i] as usize];
                        let take = match *slot {
                            None => true,
                            // Same NaN bail as the serial accumulator;
                            // a group whose sole value is NaN never
                            // compares, here or there.
                            Some(b) => match data[i].partial_cmp(&b)? {
                                Ordering::Less => !*max,
                                Ordering::Greater => *max,
                                Ordering::Equal => false,
                            },
                        };
                        if take {
                            *slot = Some(data[i]);
                        }
                    }
                    AggPart::BestFloat(best)
                }
                // Caller guarantees `agg_mergeable`.
                AggK::SumFloat(_) | AggK::AvgNum(_) | AggK::Generic { .. } => return None,
            });
        }
        Some(out)
    });
    let parts: Vec<Vec<AggPart>> = parts.into_iter().collect::<Option<_>>()?;
    if sb_obs::enabled() {
        note_parallel(stats, parts.len() * aggs.len());
    }

    // Merge per-morsel tables in morsel order, then finish each
    // aggregate exactly as the serial accumulator would.
    let mut results = Vec::with_capacity(aggs.len());
    for (a, agg) in aggs.iter().enumerate() {
        results.push(match agg {
            AggK::CountStar | AggK::CountAny(_) => {
                let mut counts = vec![0i64; n_groups];
                for part in &parts {
                    let AggPart::Counts(local) = &part[a] else {
                        return None;
                    };
                    for (c, l) in counts.iter_mut().zip(local) {
                        *c += l;
                    }
                }
                counts.into_iter().map(Value::Int).collect()
            }
            AggK::SumInt(_) => {
                let mut total = vec![0i128; n_groups];
                let mut maxp = vec![i128::MIN; n_groups];
                let mut minp = vec![i128::MAX; n_groups];
                let mut has = vec![false; n_groups];
                for part in &parts {
                    let AggPart::SumInt {
                        total: lt,
                        maxp: lmax,
                        minp: lmin,
                        has: lhas,
                    } = &part[a]
                    else {
                        return None;
                    };
                    for gi in 0..n_groups {
                        if !lhas[gi] {
                            continue;
                        }
                        if has[gi] {
                            maxp[gi] = maxp[gi].max(total[gi] + lmax[gi]);
                            minp[gi] = minp[gi].min(total[gi] + lmin[gi]);
                            total[gi] += lt[gi];
                        } else {
                            total[gi] = lt[gi];
                            maxp[gi] = lmax[gi];
                            minp[gi] = lmin[gi];
                            has[gi] = true;
                        }
                    }
                }
                // The serial running `checked_add` bails iff some prefix
                // sum leaves i64; reproduce that bail decision exactly.
                let mut acc = Vec::with_capacity(n_groups);
                for gi in 0..n_groups {
                    if has[gi] && (maxp[gi] > i64::MAX as i128 || minp[gi] < i64::MIN as i128) {
                        return None;
                    }
                    acc.push(total[gi] as i64);
                }
                finish_nullable(acc, has, Value::Int)
            }
            AggK::MinMaxInt(_, max) => {
                let mut best: Vec<Option<i64>> = vec![None; n_groups];
                for part in &parts {
                    let AggPart::BestInt(local) = &part[a] else {
                        return None;
                    };
                    for (slot, l) in best.iter_mut().zip(local) {
                        let Some(lv) = *l else { continue };
                        let take = match *slot {
                            None => true,
                            Some(b) => {
                                if *max {
                                    lv > b
                                } else {
                                    lv < b
                                }
                            }
                        };
                        if take {
                            *slot = Some(lv);
                        }
                    }
                }
                best.into_iter()
                    .map(|b| b.map_or(Value::Null, Value::Int))
                    .collect()
            }
            AggK::MinMaxFloat(_, max) => {
                let mut best: Vec<Option<f64>> = vec![None; n_groups];
                for part in &parts {
                    let AggPart::BestFloat(local) = &part[a] else {
                        return None;
                    };
                    for (slot, l) in best.iter_mut().zip(local) {
                        let Some(lv) = *l else { continue };
                        let take = match *slot {
                            None => true,
                            Some(b) => match lv.partial_cmp(&b)? {
                                Ordering::Less => !*max,
                                Ordering::Greater => *max,
                                Ordering::Equal => false,
                            },
                        };
                        if take {
                            *slot = Some(lv);
                        }
                    }
                }
                best.into_iter()
                    .map(|b| b.map_or(Value::Null, Value::Float))
                    .collect()
            }
            AggK::SumFloat(_) | AggK::AvgNum(_) | AggK::Generic { .. } => return None,
        });
    }
    Some(results)
}

/// Run every registered aggregate over the grouped batch.
fn accumulate(
    aggs: &[AggK],
    view: &View<'_>,
    gids: &[u32],
    n_groups: usize,
) -> Option<Vec<Vec<Value>>> {
    let mut results = Vec::with_capacity(aggs.len());
    for agg in aggs {
        results.push(match agg {
            AggK::CountStar => {
                let mut counts = vec![0i64; n_groups];
                for &g in gids {
                    counts[g as usize] += 1;
                }
                counts.into_iter().map(Value::Int).collect()
            }
            AggK::CountAny(k) => {
                let nulls = k.nulls(view)?;
                let mut counts = vec![0i64; n_groups];
                for (&g, null) in gids.iter().zip(nulls) {
                    if !null {
                        counts[g as usize] += 1;
                    }
                }
                counts.into_iter().map(Value::Int).collect()
            }
            AggK::SumInt(k) => {
                let NumOut::Int(data, nulls) = k.eval(view)? else {
                    return None;
                };
                let mut acc = vec![0i64; n_groups];
                let mut has = vec![false; n_groups];
                for i in 0..data.len() {
                    if nulls[i] {
                        continue;
                    }
                    let g = gids[i] as usize;
                    // Same running checked sum, in the same row order,
                    // as `finish_aggregate` — an overflow bails where
                    // the row path errors.
                    acc[g] = acc[g].checked_add(data[i])?;
                    has[g] = true;
                }
                finish_nullable(acc, has, Value::Int)
            }
            AggK::SumFloat(k) => {
                let mut acc = vec![0.0f64; n_groups];
                let mut has = vec![false; n_groups];
                if let Some((d, sel, nulls)) = float_col_direct(k, view) {
                    // Bare-column lane: accumulate straight off the
                    // column data, skipping the NumOut gather (or, on
                    // an identity selection, whole-column clone).
                    let any_null = nulls.any();
                    for (i, &r) in sel.iter().enumerate() {
                        let r = r as usize;
                        if any_null && nulls.is_null(r) {
                            continue;
                        }
                        let g = gids[i] as usize;
                        acc[g] += d[r];
                        has[g] = true;
                    }
                } else {
                    let NumOut::Float(data, nulls) = k.eval(view)? else {
                        return None;
                    };
                    for i in 0..data.len() {
                        if nulls[i] {
                            continue;
                        }
                        let g = gids[i] as usize;
                        acc[g] += data[i];
                        has[g] = true;
                    }
                }
                finish_nullable(acc, has, Value::Float)
            }
            AggK::AvgNum(k) => {
                let mut acc = vec![0.0f64; n_groups];
                let mut cnt = vec![0usize; n_groups];
                if let Some((d, sel, nulls)) = float_col_direct(k, view) {
                    let any_null = nulls.any();
                    for (i, &r) in sel.iter().enumerate() {
                        let r = r as usize;
                        if any_null && nulls.is_null(r) {
                            continue;
                        }
                        let g = gids[i] as usize;
                        acc[g] += d[r];
                        cnt[g] += 1;
                    }
                } else {
                    let (data, nulls) = match k.eval(view)? {
                        NumOut::AllNull => return None, // statically Generic
                        other => other.into_f64(),
                    };
                    for i in 0..data.len() {
                        if nulls[i] {
                            continue;
                        }
                        let g = gids[i] as usize;
                        acc[g] += data[i];
                        cnt[g] += 1;
                    }
                }
                acc.into_iter()
                    .zip(cnt)
                    .map(|(s, c)| {
                        if c == 0 {
                            Value::Null
                        } else {
                            Value::Float(s / c as f64)
                        }
                    })
                    .collect()
            }
            AggK::MinMaxInt(k, max) => {
                let NumOut::Int(data, nulls) = k.eval(view)? else {
                    return None;
                };
                let mut best: Vec<Option<i64>> = vec![None; n_groups];
                for i in 0..data.len() {
                    if nulls[i] {
                        continue;
                    }
                    let slot = &mut best[gids[i] as usize];
                    let take = match *slot {
                        None => true,
                        Some(b) => {
                            if *max {
                                data[i] > b
                            } else {
                                data[i] < b
                            }
                        }
                    };
                    if take {
                        *slot = Some(data[i]);
                    }
                }
                best.into_iter()
                    .map(|b| b.map_or(Value::Null, Value::Int))
                    .collect()
            }
            AggK::MinMaxFloat(k, max) => {
                let NumOut::Float(data, nulls) = k.eval(view)? else {
                    return None;
                };
                let mut best: Vec<Option<f64>> = vec![None; n_groups];
                for i in 0..data.len() {
                    if nulls[i] {
                        continue;
                    }
                    let slot = &mut best[gids[i] as usize];
                    let take = match *slot {
                        None => true,
                        // NaN cannot be ordered: the row path errors
                        // ("MIN/MAX over mixed types"), so bail.
                        Some(b) => match data[i].partial_cmp(&b)? {
                            Ordering::Less => !*max,
                            Ordering::Greater => *max,
                            Ordering::Equal => false,
                        },
                    };
                    if take {
                        *slot = Some(data[i]);
                    }
                }
                best.into_iter()
                    .map(|b| b.map_or(Value::Null, Value::Float))
                    .collect()
            }
            AggK::Generic {
                arg,
                func,
                distinct,
            } => {
                let vals = arg.materialize(view, &[])?;
                let mut buckets: Vec<Vec<Value>> = vec![Vec::new(); n_groups];
                for (v, &g) in vals.into_iter().zip(gids) {
                    if !v.is_null() {
                        buckets[g as usize].push(v);
                    }
                }
                let mut out = Vec::with_capacity(n_groups);
                for mut bucket in buckets {
                    if *distinct {
                        key::dedup_values(&mut bucket);
                    }
                    out.push(crate::exec::finish_aggregate(*func, bucket).ok()?);
                }
                out
            }
        });
    }
    Some(results)
}

/// The bare-float-column case of a numeric aggregate argument: the
/// column data, the view's selection for its relation and its null
/// mask, for accumulate lanes that read rows in place instead of
/// materializing a gathered `NumOut`. The gathered batch would hold
/// `d[sel[i]]` with `nulls.is_null(sel[i])` — iterating `sel` directly
/// visits the same values in the same order.
fn float_col_direct<'v>(k: &NumK, view: &View<'v>) -> Option<(&'v [f64], &'v [u32], &'v NullMask)> {
    let NumK::FloatCol(id) = k else {
        return None;
    };
    let col = view.col(*id);
    let ColumnData::Float(d) = &col.data else {
        return None;
    };
    Some((d, view.sel(*id), &col.nulls))
}

fn finish_nullable<T>(acc: Vec<T>, has: Vec<bool>, wrap: impl Fn(T) -> Value) -> Vec<Value> {
    acc.into_iter()
        .zip(has)
        .map(|(v, h)| if h { wrap(v) } else { Value::Null })
        .collect()
}

/// Evaluate a group-context expression to one value per group,
/// combining at the `Value` level exactly like the row path's grouped
/// evaluator (including its AND/OR truth short-circuit over already
/// computed operands).
fn eval_gk(
    gk: &GK,
    agg_results: &[Vec<Value>],
    scalars: &ScalarGroups<'_, '_>,
    n_groups: usize,
) -> Option<Vec<Value>> {
    Some(match gk {
        GK::Agg(i) => agg_results[*i].clone(),
        GK::Scalar(k) => scalars.eval(k)?,
        GK::Binary { l, op, r } => {
            let lv = eval_gk(l, agg_results, scalars, n_groups)?;
            let rv = eval_gk(r, agg_results, scalars, n_groups)?;
            let mut out = Vec::with_capacity(n_groups);
            for (a, b) in lv.into_iter().zip(rv) {
                out.push(match op {
                    BinaryOp::And | BinaryOp::Or => {
                        let lt = truth_ref(&a).ok()?;
                        match (op, lt) {
                            (BinaryOp::And, Some(false)) => Value::Bool(false),
                            (BinaryOp::Or, Some(true)) => Value::Bool(true),
                            _ => {
                                let rt = truth_ref(&b).ok()?;
                                match combine_logical(*op, lt, rt) {
                                    Some(v) => Value::Bool(v),
                                    None => Value::Null,
                                }
                            }
                        }
                    }
                    op if op.is_arithmetic() => arith(*op, &a, &b).ok()?,
                    op => apply_cmp(*op, &a, &b).ok()?,
                });
            }
            out
        }
        GK::Unary { op, e } => {
            let v = eval_gk(e, agg_results, scalars, n_groups)?;
            let mut out = Vec::with_capacity(n_groups);
            for val in v {
                out.push(apply_unary(*op, val).ok()?);
            }
            out
        }
    })
}

/// Scalar evaluation over group representatives (each group's first
/// row). For the empty implicit group there is no representative and
/// every scalar is NULL.
struct ScalarGroups<'a, 'v> {
    view: &'a View<'v>,
    reps_rowids: Vec<Vec<u32>>,
    empty_implicit: bool,
}

impl ScalarGroups<'_, '_> {
    fn eval(&self, k: &ValK) -> Option<Vec<Value>> {
        if self.empty_implicit {
            return Some(vec![Value::Null]);
        }
        let reps_view = View::all(self.view.tables, &self.reps_rowids);
        k.materialize(&reps_view, &[])
    }
}

fn grouped(cx: &Cx<'_>, input: &BatchInput<'_, '_>, view: &View<'_>) -> Option<Projected> {
    let select = input.select;
    let prof_op = input.bp.as_ref().and_then(|b| b.fixed(FixedOp::Aggregate));
    let prof_t0 = crate::exec::prof_clock(&input.bp);

    // Output columns; a wildcard is an error the row path must report.
    let mut columns = Vec::new();
    for item in &select.projections {
        match item {
            SelectItem::Wildcard => return None,
            other => columns.push(crate::exec::projection_name(other)),
        }
    }

    // Group assignment.
    let (gids, reps, empty_implicit) = if select.group_by.is_empty() {
        // Single implicit group, even over zero rows.
        let reps: Vec<u32> = if view.len == 0 { Vec::new() } else { vec![0] };
        (vec![0u32; view.len], reps, view.len == 0)
    } else {
        let keys: Vec<ColId> = select
            .group_by
            .iter()
            .map(|g| match g {
                Expr::Column(c) => cx.resolve(c),
                _ => None,
            })
            .collect::<Option<_>>()?;
        // Morsel-parallel grouping handles single dictionary-text and
        // integer keys; other key shapes fall back to the serial
        // `group_ids` (not to the row path) and stay byte-identical by
        // construction.
        let (gids, reps) = match keys.as_slice() {
            [id] if input.par.active(view.len) => match group_ids_morsels(view, *id, input.par) {
                Some(pair) => pair,
                None => group_ids(cx, view, &keys)?,
            },
            _ => group_ids(cx, view, &keys)?,
        };
        (gids, reps, false)
    };
    let n_groups = if select.group_by.is_empty() {
        1
    } else {
        reps.len()
    };
    if sb_obs::enabled() {
        note_groups(n_groups);
    }

    // Compile HAVING / projections / ORDER BY keys, registering
    // aggregate calls.
    let mut aggs: Vec<AggK> = Vec::new();
    let having = match &select.having {
        Some(h) => Some(cx.compile_gk(h, &mut aggs)?),
        None => None,
    };
    let projs: Vec<GK> = select
        .projections
        .iter()
        .map(|item| match item {
            SelectItem::Expr { expr, .. } => cx.compile_gk(expr, &mut aggs),
            SelectItem::Wildcard => None,
        })
        .collect::<Option<_>>()?;
    // Grouped ORDER BY keys have no alias fallback in the row path.
    let order_ks: Vec<GK> = input
        .order_by
        .iter()
        .map(|o| cx.compile_gk(&o.expr, &mut aggs))
        .collect::<Option<_>>()?;

    // Thread-local accumulator tables merge deterministically only for
    // order-insensitive aggregates (counts, exact-overflow-tracked int
    // sums, min/max); float sums and averages are accumulated in row
    // order — float addition is not associative, and a different
    // partial-sum tree would change result bytes.
    let agg_results = if input.par.active(view.len) && aggs.iter().all(agg_mergeable) {
        accumulate_morsels(&aggs, view, &gids, n_groups, input.par)?
    } else {
        accumulate(&aggs, view, &gids, n_groups)?
    };
    let scalars = ScalarGroups {
        view,
        reps_rowids: view
            .rows
            .iter()
            .map(|rows| {
                let rows = rows.expect("joined view has every relation");
                reps.iter().map(|&i| rows[i as usize]).collect()
            })
            .collect(),
        empty_implicit,
    };

    // HAVING: the row path evaluates it for every group (and only
    // evaluates projections for survivors — a subset of what we compute,
    // so extra evaluation can only cause a bail, never new output).
    let keep: Vec<bool> = match &having {
        Some(h) => eval_gk(h, &agg_results, &scalars, n_groups)?
            .into_iter()
            .map(|v| truth_ref(&v).map(|t| t.unwrap_or(false)))
            .collect::<Result<_, _>>()
            .ok()?,
        None => vec![true; n_groups],
    };

    let proj_groups: Vec<Vec<Value>> = projs
        .iter()
        .map(|gk| eval_gk(gk, &agg_results, &scalars, n_groups))
        .collect::<Option<_>>()?;
    let key_groups: Vec<Vec<Value>> = order_ks
        .iter()
        .map(|gk| eval_gk(gk, &agg_results, &scalars, n_groups))
        .collect::<Option<_>>()?;

    let mut out_rows = Vec::new();
    let mut keys = Vec::new();
    for g in 0..n_groups {
        if !keep[g] {
            continue;
        }
        out_rows.push(proj_groups.iter().map(|col| col[g].clone()).collect());
        keys.push(key_groups.iter().map(|col| col[g].clone()).collect());
    }
    if let Some(op) = prof_op {
        op.rows(view.len as u64, out_rows.len() as u64);
        op.groups(n_groups as u64);
        crate::exec::prof_elapsed(prof_t0, Some(op));
    }
    Some((columns, out_rows, keys))
}

// ---------------------------------------------------------------------
// Observability sinks (cold, called only under SB_OBS=1).
// ---------------------------------------------------------------------

#[cold]
#[inline(never)]
fn note_outcome(ok: bool) {
    sb_obs::count(
        if ok {
            "engine.columnar.selects"
        } else {
            "engine.columnar.fallbacks"
        },
        1,
    );
}

#[cold]
#[inline(never)]
fn note_scan(scanned: usize, kept: usize) {
    // Same totals the row-path scans would report, so scan counters stay
    // comparable across engines.
    sb_obs::count("engine.scan.rows", scanned as u64);
    sb_obs::count("engine.scan.rows_pruned_pushdown", (scanned - kept) as u64);
}

#[cold]
#[inline(never)]
fn note_filter(rows_in: usize, rows_out: usize) {
    sb_obs::count("engine.columnar.filter.batches", 1);
    sb_obs::count("engine.columnar.filter.rows_in", rows_in as u64);
    sb_obs::count("engine.columnar.filter.rows_out", rows_out as u64);
}

#[cold]
#[inline(never)]
fn note_join(build: usize, probe: usize, output: usize) {
    sb_obs::count("engine.columnar.join.hash", 1);
    sb_obs::count("engine.columnar.join.build_rows", build as u64);
    sb_obs::count("engine.columnar.join.probe_rows", probe as u64);
    sb_obs::count("engine.columnar.join.output_rows", output as u64);
}

#[cold]
#[inline(never)]
fn note_groups(created: usize) {
    sb_obs::count("engine.columnar.agg.groups", created as u64);
}

#[cold]
#[inline(never)]
fn note_dict_lut(entries: usize, probes: usize) {
    sb_obs::count("engine.columnar.dict.lut_entries", entries as u64);
    sb_obs::count("engine.columnar.dict.lut_probes", probes as u64);
}

/// One morsel-parallel operator dispatch. `morsels` depends only on row
/// count and morsel size (thread-count-independent); `steals` is a
/// scheduling observation and varies run to run; `merges` counts the
/// per-morsel partial states folded into the global result.
#[cold]
#[inline(never)]
fn note_parallel(stats: rayon::MorselStats, merges: usize) {
    sb_obs::count("engine.parallel.ops", 1);
    sb_obs::count("engine.parallel.morsels", stats.morsels as u64);
    sb_obs::count("engine.parallel.steals", stats.steals as u64);
    sb_obs::count("engine.parallel.merges", merges as u64);
}
