//! Vectorized batch execution over columnar storage.
//!
//! [`try_select`] runs one planned `SELECT` batch-at-a-time against the
//! lazily built [`crate::column::ColumnarTable`] images: predicate
//! kernels produce selection vectors over typed column vectors, hash
//! joins probe column slices directly, and aggregation runs as
//! per-group accumulators — `Value`s are materialized only at result
//! boundaries.
//!
//! ## The one correctness rule
//!
//! The batch path may give up at **any** point — at compile time (a
//! shape or column kind outside the kernel set) or mid-execution (an
//! arithmetic overflow, a NaN reaching an ordered comparison, anything
//! the row engine would report as an error) — by returning `None`. The
//! caller then silently re-runs the statement on the row path, which is
//! the sole authority on errors. The batch path therefore never
//! *returns* an error; it either produces output byte-identical to the
//! row path's success, or it bails. Bailing is always safe; the only
//! hazard would be succeeding with different bytes, which the kernels
//! below avoid by mirroring row-path semantics exactly:
//!
//! - Three-valued logic is carried as `i8` tristates (`1`/`0`/`-1` for
//!   TRUE/FALSE/NULL); `AND`/`OR` combine via the same
//!   [`combine_logical`] the row engine uses. Both operands of a
//!   logical or arithmetic node are evaluated eagerly — where the row
//!   path would have short-circuited past an error, the batch path
//!   bails and lets the row path decide.
//! - Conjuncts are applied progressively: conjunct *k* is evaluated
//!   only over rows that survived conjuncts *1..k-1*, matching the
//!   row-at-a-time early exit, so a data-dependent error fires for
//!   exactly the same evaluation set.
//! - Join keys reproduce the row path's `sql_eq` hash keys (ints and
//!   integral floats unify; NULL and NaN never match), and reordered
//!   plans restore source row order the same way the row executor does.
//! - Grouping keys use the canonical-key relation ([`canon_num`]
//!   rounding, NaN collapsing) so float keys land in the same groups.
//!
//! Counters (under `SB_OBS=1`): the batch path emits the same
//! `engine.scan.rows` / `engine.scan.rows_pruned_pushdown` totals the
//! row scans would, plus `engine.columnar.*` operator counters — batch
//! counts, selection-vector density, dictionary LUT sizes — surfaced in
//! `profile_run` reports.

use std::collections::HashMap;
use std::sync::Arc;

use sb_sql::{
    AggArg, AggFunc, BinaryOp, ColumnRef, Expr, Literal, OrderItem, Select, SelectItem, UnaryOp,
};

use crate::column::{Column, ColumnData, ColumnarTable, DictColumn, NullMask};
use crate::database::Table;
use crate::error::EngineError;
use crate::eval::{
    apply_cmp, apply_unary, arith, combine_logical, like_match, literal_value, truth_ref, Scope,
};
use crate::exec::{is_aggregate_query, Projected, Relation};
use crate::key::{self, FxBuild, KeyIndex};
use crate::value::{canon_num, cmp_int_f64, Value};
use std::cmp::Ordering;

/// Everything the batch executor needs from the planned statement.
pub(crate) struct BatchInput<'a, 'q> {
    pub(crate) select: &'q Select,
    pub(crate) order_by: &'q [OrderItem],
    /// Full statement scope (all relations, original columns).
    pub(crate) scope: &'a Scope,
    pub(crate) relations: &'a [Relation<'a>],
    /// Pushed-down conjuncts per relation, planner order.
    pub(crate) pushed: &'a [Vec<&'q Expr>],
    /// Residual filter conjuncts over the joined row.
    pub(crate) residual: &'a [&'q Expr],
    pub(crate) planned: Option<&'a sb_opt::PlannedSelect<'q>>,
    /// Whether the executor is forced to nested-loop joins (the batch
    /// path only implements hash joins, and must not silently hash-join
    /// a query whose row path would error inside a nested-loop
    /// predicate).
    pub(crate) nested_loop: bool,
}

/// Attempt batch execution. `None` means "fall back to the row path" —
/// never an error.
pub(crate) fn try_select(input: &BatchInput<'_, '_>) -> Option<Projected> {
    let out = run(input);
    if sb_obs::enabled() {
        note_outcome(out.is_some());
    }
    out
}

fn run(input: &BatchInput<'_, '_>) -> Option<Projected> {
    if input.nested_loop && !input.select.joins.is_empty() {
        return None;
    }
    // Base tables with clean columnar images only.
    let tables: Vec<Arc<ColumnarTable>> = input
        .relations
        .iter()
        .map(|r| match &r.source {
            crate::exec::RelSource::Base(t) => Table::columnar(t),
            crate::exec::RelSource::Derived(_) => None,
        })
        .collect::<Option<_>>()?;
    let cx = Cx {
        scope: input.scope,
        tables: &tables,
    };

    // Compile pushed and residual conjuncts up front: any resolution or
    // typing problem bails before touching data, leaving error behavior
    // (including "zero rows swallow residual errors") to the row path.
    let pushed: Vec<Vec<BoolK>> = input
        .pushed
        .iter()
        .map(|conjs| conjs.iter().map(|c| cx.compile_bool(c)).collect())
        .collect::<Option<_>>()?;
    let residual: Vec<BoolK> = input
        .residual
        .iter()
        .map(|c| cx.compile_bool(c))
        .collect::<Option<_>>()?;

    // Per-relation scans: progressive selection vectors, conjunct k
    // evaluated only over survivors of conjuncts 1..k-1.
    let mut sels: Vec<Vec<u32>> = Vec::with_capacity(tables.len());
    for (rel, conjs) in pushed.iter().enumerate() {
        let scanned = tables[rel].len;
        let mut sel: Vec<u32> = (0..scanned as u32).collect();
        for conj in conjs {
            let view = View::single(&tables, input.relations.len(), rel, &sel);
            let tri = conj.eval(&view)?;
            let before = sel.len();
            // Branch-free compaction: always write, advance the cursor
            // only on a keep — no data-dependent branch to mispredict.
            let mut kept = vec![0u32; before];
            let mut k = 0usize;
            for (i, &r) in sel.iter().enumerate() {
                kept[k] = r;
                k += (tri[i] == 1) as usize;
            }
            kept.truncate(k);
            if sb_obs::enabled() {
                note_filter(before, kept.len());
            }
            sel = kept;
        }
        if sb_obs::enabled() {
            note_scan(scanned, sel.len());
        }
        sels.push(sel);
    }

    // Joins: hash only, source or planner order.
    let mut rowids = join_all(&cx, input, sels)?;

    // Residual filter over the joined view.
    for conj in &residual {
        let view = View::all(&tables, &rowids);
        let tri = conj.eval(&view)?;
        let before = view.len;
        let mut keep_idx = vec![0usize; before];
        let mut k = 0usize;
        for (i, &t) in tri.iter().enumerate() {
            keep_idx[k] = i;
            k += (t == 1) as usize;
        }
        keep_idx.truncate(k);
        if sb_obs::enabled() {
            note_filter(before, keep_idx.len());
        }
        for col in &mut rowids {
            *col = keep_idx.iter().map(|&i| col[i]).collect();
        }
    }

    let view = View::all(&tables, &rowids);
    if is_aggregate_query(input.select, input.order_by) {
        grouped(&cx, input, &view)
    } else {
        plain(&cx, input, &view)
    }
}

// ---------------------------------------------------------------------
// Views: which rows of which relations a kernel evaluates over.
// ---------------------------------------------------------------------

/// A batch of joined rows: per relation, a selection vector of row ids
/// (`None` for relations not in scope of the current phase, e.g. other
/// relations during a pushed-down scan filter).
struct View<'a> {
    tables: &'a [Arc<ColumnarTable>],
    rows: Vec<Option<&'a [u32]>>,
    len: usize,
    /// Whether every in-scope selection is ascending and unique (true
    /// for scan-phase selections; false after a join, whose rowid
    /// columns may repeat rows). Only when this holds does full length
    /// imply the identity selection, unlocking memcpy-style gathers.
    ascending: bool,
}

impl<'a> View<'a> {
    fn single(tables: &'a [Arc<ColumnarTable>], n: usize, rel: usize, sel: &'a [u32]) -> Self {
        let mut rows = vec![None; n];
        rows[rel] = Some(sel);
        View {
            tables,
            rows,
            len: sel.len(),
            ascending: true,
        }
    }

    fn all(tables: &'a [Arc<ColumnarTable>], rowids: &'a [Vec<u32>]) -> Self {
        let len = rowids.first().map_or(0, Vec::len);
        View {
            tables,
            rows: rowids.iter().map(|c| Some(c.as_slice())).collect(),
            len,
            // A join can emit a base row any number of times; only the
            // single-relation passthrough keeps the scan's ordering.
            ascending: rowids.len() == 1,
        }
    }

    #[inline]
    fn col(&self, id: ColId) -> &'a Column {
        &self.tables[id.rel].columns[id.col]
    }

    /// Row id (into the base table) of batch row `i` for `id`'s relation.
    #[inline]
    fn rid(&self, id: ColId, i: usize) -> usize {
        self.rows[id.rel].expect("kernel touched an out-of-scope relation")[i] as usize
    }

    /// The whole selection vector for `id`'s relation (hot gathers hoist
    /// this out of their per-row loops).
    #[inline]
    fn sel(&self, id: ColId) -> &'a [u32] {
        self.rows[id.rel].expect("kernel touched an out-of-scope relation")
    }

    /// Whether `sel` is the identity selection over a table of
    /// `table_len` rows: ascending + unique + full length. Gathers may
    /// then read slots directly (or memcpy) instead of indirecting.
    #[inline]
    fn identity(&self, sel: &[u32], table_len: usize) -> bool {
        self.ascending && sel.len() == table_len
    }
}

/// Per-selection null flags; an all-valid column memsets instead of
/// probing the bitmap row by row, and an identity selection (row i =
/// slot i) expands the bitmap word at a time. `identity` must be
/// established by the caller via [`View::identity`].
fn gather_nulls(mask: &NullMask, sel: &[u32], identity: bool) -> Vec<bool> {
    if !mask.any() {
        vec![false; sel.len()]
    } else if identity {
        let mut out = vec![false; sel.len()];
        mask.or_into(&mut out);
        out
    } else {
        sel.iter().map(|&r| mask.is_null(r as usize)).collect()
    }
}

/// A resolved column: relation index (FROM/JOIN order) and column index
/// in the relation's original (unpruned) layout.
#[derive(Clone, Copy, PartialEq, Eq)]
struct ColId {
    rel: usize,
    col: usize,
}

/// Kernel compiler context: resolution against the statement scope plus
/// the columnar images that decide each column's runtime class.
struct Cx<'a> {
    scope: &'a Scope,
    tables: &'a [Arc<ColumnarTable>],
}

impl Cx<'_> {
    fn resolve(&self, c: &ColumnRef) -> Option<ColId> {
        let flat = self.scope.resolve(c).ok()?;
        let rel = self.scope.bindings.iter().rposition(|b| b.offset <= flat)?;
        Some(ColId {
            rel,
            col: flat - self.scope.bindings[rel].offset,
        })
    }

    fn data(&self, id: ColId) -> &ColumnData {
        &self.tables[id.rel].columns[id.col].data
    }
}

// ---------------------------------------------------------------------
// Kernels. Every `eval` returns `Option`: `None` = bail to the row path.
// ---------------------------------------------------------------------

/// Numeric expression kernel.
enum NumK {
    IntCol(ColId),
    FloatCol(ColId),
    IntLit(i64),
    FloatLit(f64),
    NullLit,
    Neg(Box<NumK>),
    Arith {
        l: Box<NumK>,
        op: BinaryOp,
        r: Box<NumK>,
    },
}

/// Static class of a numeric kernel's output.
#[derive(Clone, Copy, PartialEq)]
enum NumTy {
    Int,
    Float,
    Null,
}

/// A numeric batch: typed data plus per-row null flags.
enum NumOut {
    Int(Vec<i64>, Vec<bool>),
    Float(Vec<f64>, Vec<bool>),
    AllNull,
}

impl NumK {
    /// The constant cell of a literal kernel, letting comparisons skip
    /// broadcasting the literal side into a full batch.
    #[inline]
    fn as_lit(&self) -> Option<NumCell> {
        match self {
            NumK::IntLit(k) => Some(NumCell::I(*k)),
            NumK::FloatLit(f) => Some(NumCell::F(*f)),
            _ => None,
        }
    }

    fn ty(&self) -> NumTy {
        match self {
            NumK::IntCol(_) | NumK::IntLit(_) => NumTy::Int,
            NumK::FloatCol(_) | NumK::FloatLit(_) => NumTy::Float,
            NumK::NullLit => NumTy::Null,
            NumK::Neg(e) => e.ty(),
            NumK::Arith { l, r, .. } => match (l.ty(), r.ty()) {
                (NumTy::Null, _) | (_, NumTy::Null) => NumTy::Null,
                (NumTy::Int, NumTy::Int) => NumTy::Int,
                _ => NumTy::Float,
            },
        }
    }

    fn eval(&self, v: &View) -> Option<NumOut> {
        let n = v.len;
        Some(match self {
            NumK::IntCol(id) => {
                let col = v.col(*id);
                let ColumnData::Int(data) = &col.data else {
                    return None;
                };
                let sel = v.sel(*id);
                let ident = v.identity(sel, data.len());
                let out = if ident {
                    data.clone()
                } else {
                    sel.iter().map(|&r| data[r as usize]).collect()
                };
                NumOut::Int(out, gather_nulls(&col.nulls, sel, ident))
            }
            NumK::FloatCol(id) => {
                let col = v.col(*id);
                let ColumnData::Float(data) = &col.data else {
                    return None;
                };
                let sel = v.sel(*id);
                let ident = v.identity(sel, data.len());
                let out = if ident {
                    data.clone()
                } else {
                    sel.iter().map(|&r| data[r as usize]).collect()
                };
                NumOut::Float(out, gather_nulls(&col.nulls, sel, ident))
            }
            NumK::IntLit(k) => NumOut::Int(vec![*k; n], vec![false; n]),
            NumK::FloatLit(f) => NumOut::Float(vec![*f; n], vec![false; n]),
            NumK::NullLit => NumOut::AllNull,
            NumK::Neg(e) => match e.eval(v)? {
                NumOut::AllNull => NumOut::AllNull,
                NumOut::Int(mut data, nulls) => {
                    for (d, &null) in data.iter_mut().zip(&nulls) {
                        if !null {
                            *d = d.checked_neg()?;
                        }
                    }
                    NumOut::Int(data, nulls)
                }
                NumOut::Float(mut data, nulls) => {
                    for d in &mut data {
                        *d = -*d;
                    }
                    NumOut::Float(data, nulls)
                }
            },
            NumK::Arith { l, op, r } => {
                // The hot filter shape `float_col ⊕ float_col` (q3's
                // color cut `u - r`) fuses gather and arithmetic into
                // one pass: no intermediate operand batches. Float
                // Add/Sub/Mul cannot error, so computing through null
                // slots (finite placeholders) is mask-safe.
                if let (NumK::FloatCol(ia), NumK::FloatCol(ib)) = (&**l, &**r) {
                    if matches!(op, BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul) {
                        let (ca, cb) = (v.col(*ia), v.col(*ib));
                        if let (ColumnData::Float(da), ColumnData::Float(db)) = (&ca.data, &cb.data)
                        {
                            let (sa, sb) = (v.sel(*ia), v.sel(*ib));
                            // Identity selections drop the index
                            // indirection so the loop vectorizes.
                            let identity = v.identity(sa, da.len()) && v.identity(sb, db.len());
                            let nulls = if !ca.nulls.any() && !cb.nulls.any() {
                                vec![false; n]
                            } else if identity {
                                let mut out = vec![false; n];
                                ca.nulls.or_into(&mut out);
                                cb.nulls.or_into(&mut out);
                                out
                            } else {
                                (0..n)
                                    .map(|i| {
                                        ca.nulls.is_null(sa[i] as usize)
                                            | cb.nulls.is_null(sb[i] as usize)
                                    })
                                    .collect()
                            };
                            let zip = || da.iter().zip(db.iter());
                            let gat = |i: usize| -> (f64, f64) {
                                (da[sa[i] as usize], db[sb[i] as usize])
                            };
                            let data: Vec<f64> = match (op, identity) {
                                (BinaryOp::Add, true) => zip().map(|(&a, &b)| a + b).collect(),
                                (BinaryOp::Sub, true) => zip().map(|(&a, &b)| a - b).collect(),
                                (_, true) => zip().map(|(&a, &b)| a * b).collect(),
                                (BinaryOp::Add, false) => (0..n)
                                    .map(|i| {
                                        let (a, b) = gat(i);
                                        a + b
                                    })
                                    .collect(),
                                (BinaryOp::Sub, false) => (0..n)
                                    .map(|i| {
                                        let (a, b) = gat(i);
                                        a - b
                                    })
                                    .collect(),
                                (_, false) => (0..n)
                                    .map(|i| {
                                        let (a, b) = gat(i);
                                        a * b
                                    })
                                    .collect(),
                            };
                            return Some(NumOut::Float(data, nulls));
                        }
                    }
                }
                // Both operands are evaluated even when one is statically
                // NULL: the row path evaluates both before its null
                // check, so an error hiding in either side must force a
                // bail, not be skipped.
                let a = l.eval(v)?;
                let b = r.eval(v)?;
                match (a, b) {
                    (NumOut::AllNull, _) | (_, NumOut::AllNull) => NumOut::AllNull,
                    (NumOut::Int(x, xn), NumOut::Int(y, yn)) => {
                        let mut out = Vec::with_capacity(n);
                        let mut nulls = Vec::with_capacity(n);
                        for i in 0..n {
                            if xn[i] || yn[i] {
                                out.push(0);
                                nulls.push(true);
                                continue;
                            }
                            let (a, b) = (x[i], y[i]);
                            let r = match op {
                                BinaryOp::Add => a.checked_add(b)?,
                                BinaryOp::Sub => a.checked_sub(b)?,
                                BinaryOp::Mul => a.checked_mul(b)?,
                                BinaryOp::Div => {
                                    if b == 0 {
                                        // Division by zero is NULL, not
                                        // an error.
                                        out.push(0);
                                        nulls.push(true);
                                        continue;
                                    }
                                    a.checked_div(b)?
                                }
                                _ => return None,
                            };
                            out.push(r);
                            nulls.push(false);
                        }
                        NumOut::Int(out, nulls)
                    }
                    (a, b) => {
                        // Mixed or float: both sides as f64, like the row
                        // path's `as_f64` promotion. Add/Sub/Mul compute
                        // straight through null slots (placeholders are
                        // finite 0.0s, and masked results are never
                        // read), so the loops stay branch-free.
                        let (x, xn) = a.into_f64();
                        let (y, yn) = b.into_f64();
                        let zip = || x.iter().zip(&y);
                        let mut nulls: Vec<bool> =
                            xn.iter().zip(&yn).map(|(&p, &q)| p | q).collect();
                        let out: Vec<f64> = match op {
                            BinaryOp::Add => zip().map(|(&a, &b)| a + b).collect(),
                            BinaryOp::Sub => zip().map(|(&a, &b)| a - b).collect(),
                            BinaryOp::Mul => zip().map(|(&a, &b)| a * b).collect(),
                            BinaryOp::Div => {
                                // Division by zero is NULL, not an error.
                                let mut out = Vec::with_capacity(n);
                                for i in 0..n {
                                    if nulls[i] || y[i] == 0.0 {
                                        nulls[i] = true;
                                        out.push(0.0);
                                    } else {
                                        out.push(x[i] / y[i]);
                                    }
                                }
                                out
                            }
                            _ => return None,
                        };
                        NumOut::Float(out, nulls)
                    }
                }
            }
        })
    }
}

/// One non-null cell of a numeric batch.
#[derive(Clone, Copy)]
enum NumCell {
    I(i64),
    F(f64),
}

impl NumOut {
    #[inline]
    fn cell(&self, i: usize) -> Option<NumCell> {
        match self {
            NumOut::Int(d, n) => (!n[i]).then(|| NumCell::I(d[i])),
            NumOut::Float(d, n) => (!n[i]).then(|| NumCell::F(d[i])),
            NumOut::AllNull => None,
        }
    }

    fn into_f64(self) -> (Vec<f64>, Vec<bool>) {
        match self {
            NumOut::Int(d, n) => (d.into_iter().map(|v| v as f64).collect(), n),
            NumOut::Float(d, n) => (d, n),
            NumOut::AllNull => unreachable!("AllNull handled before promotion"),
        }
    }
}

/// Ordering of two non-null numeric cells under `Value::compare`:
/// `None` exactly when a NaN is involved (the caller decides whether
/// that is a NULL, as in BETWEEN, or a row-path error, as in `<`).
#[inline]
fn cmp_cells(a: NumCell, b: NumCell) -> Option<Ordering> {
    match (a, b) {
        (NumCell::I(x), NumCell::I(y)) => Some(x.cmp(&y)),
        (NumCell::I(x), NumCell::F(y)) => (!y.is_nan()).then(|| cmp_int_f64(x, y)),
        (NumCell::F(x), NumCell::I(y)) => (!x.is_nan()).then(|| cmp_int_f64(y, x).reverse()),
        (NumCell::F(x), NumCell::F(y)) => x.partial_cmp(&y),
    }
}

/// `lit op x` rewritten as `x op' lit` so the swapped-literal lane can
/// share the unswapped loops.
fn mirror(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other,
    }
}

/// Branch-free tristate compare of one float batch against per-row
/// right-hand values produced by `rhs(i)`. Callers have already ruled
/// out NaN, so `total_cmp`-free primitive compares are exact.
macro_rules! cmp_lane {
    ($d:expr, $nulls:expr, $op:expr, $rhs:expr) => {{
        let (d, nulls) = ($d, $nulls);
        let tri = |b: bool, nl: bool| if nl { -1 } else { b as i8 };
        match $op {
            BinaryOp::Eq => (0..d.len())
                .map(|i| tri(d[i] == $rhs(i), nulls[i]))
                .collect(),
            BinaryOp::NotEq => (0..d.len())
                .map(|i| tri(d[i] != $rhs(i), nulls[i]))
                .collect(),
            BinaryOp::Lt => (0..d.len())
                .map(|i| tri(d[i] < $rhs(i), nulls[i]))
                .collect(),
            BinaryOp::LtEq => (0..d.len())
                .map(|i| tri(d[i] <= $rhs(i), nulls[i]))
                .collect(),
            BinaryOp::Gt => (0..d.len())
                .map(|i| tri(d[i] > $rhs(i), nulls[i]))
                .collect(),
            BinaryOp::GtEq => (0..d.len())
                .map(|i| tri(d[i] >= $rhs(i), nulls[i]))
                .collect(),
            _ => unreachable!("comparison kernels only carry comparison ops"),
        }
    }};
}

/// Batch vs. one literal cell. `swapped` means the literal was the left
/// operand. Same bail rule as [`cmp_cells`]: a NaN reaching an ordered
/// comparison is a row-path decision — the NaN pre-scan may over-bail
/// on a NaN hiding in a null slot, which is safe (the row path decides).
fn cmp_num_lit(a: &NumOut, op: BinaryOp, lit: NumCell, swapped: bool, n: usize) -> Option<Vec<i8>> {
    let op = if swapped { mirror(op) } else { op };
    Some(match (a, lit) {
        (NumOut::AllNull, _) => vec![-1; n],
        // Homogeneous fast lanes: NaN handling hoisted out of the loop,
        // per-row work is a primitive compare and a null select.
        (NumOut::Int(d, nulls), NumCell::I(y)) => cmp_lane!(d, nulls, op, |_i| y),
        (NumOut::Float(d, nulls), NumCell::F(y)) => {
            if y.is_nan() || d.iter().any(|v| v.is_nan()) {
                return None;
            }
            cmp_lane!(d, nulls, op, |_i| y)
        }
        // Mixed classes: per-row exact compare; `op` is already
        // mirrored, so x-vs-lit ordering is correct for both operand
        // orders.
        _ => {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(match a.cell(i) {
                    Some(x) => tri_of(cmp_cells(x, lit)?, op),
                    None => -1,
                });
            }
            out
        }
    })
}

/// Batch vs. batch comparison with typed fast lanes for the homogeneous
/// cases and the generic cell loop for mixed ones.
fn cmp_num_outs(a: &NumOut, op: BinaryOp, b: &NumOut, n: usize) -> Option<Vec<i8>> {
    Some(match (a, b) {
        (NumOut::AllNull, _) | (_, NumOut::AllNull) => vec![-1; n],
        (NumOut::Int(x, xn), NumOut::Int(y, yn)) => {
            let nulls: Vec<bool> = xn.iter().zip(yn).map(|(&p, &q)| p | q).collect();
            cmp_lane!(x, &nulls, op, |i: usize| y[i])
        }
        (NumOut::Float(x, xn), NumOut::Float(y, yn)) => {
            if x.iter().any(|v| v.is_nan()) || y.iter().any(|v| v.is_nan()) {
                return None;
            }
            let nulls: Vec<bool> = xn.iter().zip(yn).map(|(&p, &q)| p | q).collect();
            cmp_lane!(x, &nulls, op, |i: usize| y[i])
        }
        _ => {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(match (a.cell(i), b.cell(i)) {
                    (Some(x), Some(y)) => tri_of(cmp_cells(x, y)?, op),
                    _ => -1,
                });
            }
            out
        }
    })
}

#[inline]
fn tri_of(ord: Ordering, op: BinaryOp) -> i8 {
    let b = match op {
        BinaryOp::Eq => ord.is_eq(),
        BinaryOp::NotEq => !ord.is_eq(),
        BinaryOp::Lt => ord.is_lt(),
        BinaryOp::LtEq => ord.is_le(),
        BinaryOp::Gt => ord.is_gt(),
        BinaryOp::GtEq => ord.is_ge(),
        _ => unreachable!("comparison kernels only carry comparison ops"),
    };
    b as i8
}

/// Text expression kernel: a dictionary-encoded column, a literal, or
/// a statically-NULL value.
enum TextK {
    Col(ColId),
    Lit(String),
    Null,
}

impl TextK {
    fn dict<'a>(&self, v: &View<'a>, id: ColId) -> Option<(&'a DictColumn, &'a Column)> {
        let col = v.col(id);
        match &col.data {
            ColumnData::Text(d) => Some((d, col)),
            _ => None,
        }
    }
}

/// Boolean (tristate) expression kernel.
enum BoolK {
    Const(i8),
    Col(ColId),
    CmpNum {
        l: NumK,
        op: BinaryOp,
        r: NumK,
    },
    CmpText {
        l: TextK,
        op: BinaryOp,
        r: TextK,
    },
    CmpBool {
        l: Box<BoolK>,
        op: BinaryOp,
        r: Box<BoolK>,
    },
    BetweenNum {
        v: NumK,
        lo: NumK,
        hi: NumK,
        negated: bool,
    },
    BetweenText {
        v: TextK,
        lo: TextK,
        hi: TextK,
        negated: bool,
    },
    InList {
        v: Box<ValK>,
        items: Vec<Value>,
        negated: bool,
    },
    LikeDict {
        col: ColId,
        pattern: String,
        negated: bool,
    },
    IsNull {
        v: Box<AnyK>,
        negated: bool,
    },
    Not(Box<BoolK>),
    Logic {
        l: Box<BoolK>,
        op: BinaryOp,
        r: Box<BoolK>,
    },
}

impl BoolK {
    fn eval(&self, v: &View) -> Option<Vec<i8>> {
        let n = v.len;
        Some(match self {
            BoolK::Const(t) => vec![*t; n],
            BoolK::Col(id) => {
                let col = v.col(*id);
                let ColumnData::Bool(data) = &col.data else {
                    return None;
                };
                (0..n)
                    .map(|i| {
                        let r = v.rid(*id, i);
                        if col.nulls.is_null(r) {
                            -1
                        } else {
                            data[r] as i8
                        }
                    })
                    .collect()
            }
            BoolK::CmpNum { l, op, r } => match (l.as_lit(), r.as_lit()) {
                (None, Some(lit)) => cmp_num_lit(&l.eval(v)?, *op, lit, false, n)?,
                (Some(lit), None) => cmp_num_lit(&r.eval(v)?, *op, lit, true, n)?,
                _ => cmp_num_outs(&l.eval(v)?, *op, &r.eval(v)?, n)?,
            },
            BoolK::CmpText { l, op, r } => self.eval_cmp_text(v, l, *op, r)?,
            BoolK::CmpBool { l, op, r } => {
                let a = l.eval(v)?;
                let b = r.eval(v)?;
                a.iter()
                    .zip(&b)
                    .map(|(&x, &y)| {
                        if x < 0 || y < 0 {
                            -1
                        } else {
                            tri_of((x == 1).cmp(&(y == 1)), *op)
                        }
                    })
                    .collect()
            }
            BoolK::BetweenNum {
                v: e,
                lo,
                hi,
                negated,
            } => {
                let a = e.eval(v)?;
                let l = lo.eval(v)?;
                let h = hi.eval(v)?;
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    // `compare` semantics: NULL or NaN → unknown bound.
                    let ge = match (a.cell(i), l.cell(i)) {
                        (Some(x), Some(y)) => cmp_cells(x, y).map(Ordering::is_ge),
                        _ => None,
                    };
                    let le = match (a.cell(i), h.cell(i)) {
                        (Some(x), Some(y)) => cmp_cells(x, y).map(Ordering::is_le),
                        _ => None,
                    };
                    out.push(between_tri(ge, le, *negated));
                }
                out
            }
            BoolK::BetweenText {
                v: e,
                lo,
                hi,
                negated,
            } => {
                let a = TextBatch::gather(e, v)?;
                let l = TextBatch::gather(lo, v)?;
                let h = TextBatch::gather(hi, v)?;
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    let ge = match (a.get(v, i), l.get(v, i)) {
                        (Some(x), Some(y)) => Some(x.cmp(y).is_ge()),
                        _ => None,
                    };
                    let le = match (a.get(v, i), h.get(v, i)) {
                        (Some(x), Some(y)) => Some(x.cmp(y).is_le()),
                        _ => None,
                    };
                    out.push(between_tri(ge, le, *negated));
                }
                out
            }
            BoolK::InList {
                v: e,
                items,
                negated,
            } => {
                let vals = e.materialize(v, &[])?;
                vals.iter()
                    .map(|val| {
                        // Mirror of the row path's IN loop: `sql_eq` per
                        // item in order, first match wins, any unknown
                        // comparison remembered as NULL.
                        let mut saw_null = val.is_null();
                        let mut found = false;
                        for item in items {
                            match val.sql_eq(item) {
                                Some(true) => {
                                    found = true;
                                    break;
                                }
                                Some(false) => {}
                                None => saw_null = true,
                            }
                        }
                        if found {
                            !*negated as i8
                        } else if saw_null {
                            -1
                        } else {
                            *negated as i8
                        }
                    })
                    .collect()
            }
            BoolK::LikeDict {
                col,
                pattern,
                negated,
            } => {
                let c = v.col(*col);
                let ColumnData::Text(d) = &c.data else {
                    return None;
                };
                // One match per distinct string, not per row.
                let lut: Vec<i8> = d
                    .values
                    .iter()
                    .map(|s| (like_match(s, pattern) != *negated) as i8)
                    .collect();
                if sb_obs::enabled() {
                    note_dict_lut(lut.len(), n);
                }
                (0..n)
                    .map(|i| {
                        let r = v.rid(*col, i);
                        if c.nulls.is_null(r) {
                            -1
                        } else {
                            lut[d.codes[r] as usize]
                        }
                    })
                    .collect()
            }
            BoolK::IsNull { v: e, negated } => {
                let nulls = e.nulls(v)?;
                nulls
                    .into_iter()
                    .map(|is_null| (is_null != *negated) as i8)
                    .collect()
            }
            BoolK::Not(e) => e
                .eval(v)?
                .into_iter()
                .map(|t| if t < 0 { -1 } else { 1 - t })
                .collect(),
            BoolK::Logic { l, op, r } => {
                // Eager on both sides: if either side would have errored
                // past a row-path short circuit, the kernel bails and the
                // row path re-decides (including whether to error).
                let a = l.eval(v)?;
                let b = r.eval(v)?;
                a.iter()
                    .zip(&b)
                    .map(|(&x, &y)| opt_tri(combine_logical(*op, tri_opt(x), tri_opt(y))))
                    .collect()
            }
        })
    }

    fn eval_cmp_text(&self, v: &View, l: &TextK, op: BinaryOp, r: &TextK) -> Option<Vec<i8>> {
        let n = v.len;
        Some(match (l, r) {
            (TextK::Null, _) | (_, TextK::Null) => vec![-1; n],
            (TextK::Lit(a), TextK::Lit(b)) => vec![tri_of(a.as_str().cmp(b.as_str()), op); n],
            (TextK::Col(id), TextK::Lit(s)) => {
                let (d, c) = l.dict(v, *id)?;
                let lut: Vec<i8> = d
                    .values
                    .iter()
                    .map(|val| tri_of(val.as_str().cmp(s.as_str()), op))
                    .collect();
                if sb_obs::enabled() {
                    note_dict_lut(lut.len(), n);
                }
                (0..n)
                    .map(|i| {
                        let r = v.rid(*id, i);
                        if c.nulls.is_null(r) {
                            -1
                        } else {
                            lut[d.codes[r] as usize]
                        }
                    })
                    .collect()
            }
            (TextK::Lit(s), TextK::Col(id)) => {
                let (d, c) = r.dict(v, *id)?;
                let lut: Vec<i8> = d
                    .values
                    .iter()
                    .map(|val| tri_of(s.as_str().cmp(val.as_str()), op))
                    .collect();
                if sb_obs::enabled() {
                    note_dict_lut(lut.len(), n);
                }
                (0..n)
                    .map(|i| {
                        let r = v.rid(*id, i);
                        if c.nulls.is_null(r) {
                            -1
                        } else {
                            lut[d.codes[r] as usize]
                        }
                    })
                    .collect()
            }
            (TextK::Col(a), TextK::Col(b)) => {
                let (da, ca) = l.dict(v, *a)?;
                let (db, cb) = r.dict(v, *b)?;
                (0..n)
                    .map(|i| {
                        let (ra, rb) = (v.rid(*a, i), v.rid(*b, i));
                        if ca.nulls.is_null(ra) || cb.nulls.is_null(rb) {
                            -1
                        } else {
                            let x = &da.values[da.codes[ra] as usize];
                            let y = &db.values[db.codes[rb] as usize];
                            tri_of(x.as_str().cmp(y.as_str()), op)
                        }
                    })
                    .collect()
            }
        })
    }
}

/// Mirror of the row path's BETWEEN combination: a definite "out of
/// range" on either bound decides FALSE even when the other bound is
/// unknown.
#[inline]
fn between_tri(ge: Option<bool>, le: Option<bool>, negated: bool) -> i8 {
    let within = match (ge, le) {
        (Some(a), Some(b)) => Some(a && b),
        (Some(false), _) | (_, Some(false)) => Some(false),
        _ => None,
    };
    match within {
        Some(w) => (w != negated) as i8,
        None => -1,
    }
}

#[inline]
fn tri_opt(t: i8) -> Option<bool> {
    match t {
        1 => Some(true),
        0 => Some(false),
        _ => None,
    }
}

#[inline]
fn opt_tri(o: Option<bool>) -> i8 {
    match o {
        Some(true) => 1,
        Some(false) => 0,
        None => -1,
    }
}

/// A gathered text batch side for ordered text kernels.
enum TextBatch<'k> {
    Col(ColId),
    Lit(&'k str),
    Null,
}

impl<'k> TextBatch<'k> {
    fn gather(k: &'k TextK, v: &View) -> Option<Self> {
        Some(match k {
            TextK::Col(id) => {
                match v.col(*id).data {
                    ColumnData::Text(_) => {}
                    _ => return None,
                }
                TextBatch::Col(*id)
            }
            TextK::Lit(s) => TextBatch::Lit(s),
            TextK::Null => TextBatch::Null,
        })
    }

    fn get<'a>(&'a self, v: &View<'a>, i: usize) -> Option<&'a str> {
        match self {
            TextBatch::Col(id) => {
                let col = v.col(*id);
                let r = v.rid(*id, i);
                if col.nulls.is_null(r) {
                    return None;
                }
                let ColumnData::Text(d) = &col.data else {
                    unreachable!("checked at gather");
                };
                Some(&d.values[d.codes[r] as usize])
            }
            TextBatch::Lit(s) => Some(s),
            TextBatch::Null => None,
        }
    }
}

/// Any-class kernel used where only null-ness matters (`IS NULL`).
/// Evaluation still runs the full kernel so data-dependent errors the
/// row path would surface (e.g. an overflow inside the tested
/// expression) force a bail.
enum AnyK {
    Num(NumK),
    Text(TextK),
    Tri(BoolK),
}

impl AnyK {
    fn nulls(&self, v: &View) -> Option<Vec<bool>> {
        let n = v.len;
        Some(match self {
            AnyK::Num(k) => match k.eval(v)? {
                NumOut::Int(_, nulls) | NumOut::Float(_, nulls) => nulls,
                NumOut::AllNull => vec![true; n],
            },
            AnyK::Text(TextK::Col(id)) => {
                let col = v.col(*id);
                (0..n).map(|i| col.nulls.is_null(v.rid(*id, i))).collect()
            }
            AnyK::Text(TextK::Lit(_)) => vec![false; n],
            AnyK::Text(TextK::Null) => vec![true; n],
            AnyK::Tri(b) => b.eval(v)?.into_iter().map(|t| t < 0).collect(),
        })
    }
}

/// Value-producing kernel: projections, IN subjects, aggregate
/// arguments, ORDER BY keys. `OutCol(i)` reads already-projected output
/// column `i` (the ORDER BY alias fallback).
enum ValK {
    Num(NumK),
    Text(TextK),
    Tri(BoolK),
    OutCol(usize),
}

impl ValK {
    /// Materialize one `Value` per batch row. `projected` carries the
    /// projected output columns (column-major) for `OutCol`.
    fn materialize(&self, v: &View, projected: &[Vec<Value>]) -> Option<Vec<Value>> {
        let n = v.len;
        Some(match self {
            ValK::Num(k) => match k.eval(v)? {
                NumOut::Int(d, nulls) => d
                    .into_iter()
                    .zip(nulls)
                    .map(|(x, null)| if null { Value::Null } else { Value::Int(x) })
                    .collect(),
                NumOut::Float(d, nulls) => d
                    .into_iter()
                    .zip(nulls)
                    .map(|(x, null)| if null { Value::Null } else { Value::Float(x) })
                    .collect(),
                NumOut::AllNull => vec![Value::Null; n],
            },
            ValK::Text(TextK::Col(id)) => {
                let col = v.col(*id);
                let ColumnData::Text(d) = &col.data else {
                    return None;
                };
                (0..n)
                    .map(|i| {
                        let r = v.rid(*id, i);
                        if col.nulls.is_null(r) {
                            Value::Null
                        } else {
                            Value::Text(d.values[d.codes[r] as usize].clone())
                        }
                    })
                    .collect()
            }
            ValK::Text(TextK::Lit(s)) => vec![Value::Text(s.clone()); n],
            ValK::Text(TextK::Null) => vec![Value::Null; n],
            ValK::Tri(b) => b
                .eval(v)?
                .into_iter()
                .map(|t| match t {
                    1 => Value::Bool(true),
                    0 => Value::Bool(false),
                    _ => Value::Null,
                })
                .collect(),
            ValK::OutCol(i) => {
                let col = projected.get(*i)?;
                col.clone()
            }
        })
    }
}

// ---------------------------------------------------------------------
// Kernel compilation.
// ---------------------------------------------------------------------

impl Cx<'_> {
    fn compile_num(&self, e: &Expr) -> Option<NumK> {
        Some(match e {
            Expr::Column(c) => {
                let id = self.resolve(c)?;
                match self.data(id) {
                    ColumnData::Int(_) => NumK::IntCol(id),
                    ColumnData::Float(_) => NumK::FloatCol(id),
                    ColumnData::AllNull => NumK::NullLit,
                    _ => return None,
                }
            }
            Expr::Literal(Literal::Int(i)) => NumK::IntLit(*i),
            Expr::Literal(Literal::Float(f)) => NumK::FloatLit(*f),
            Expr::Literal(Literal::Null) => NumK::NullLit,
            Expr::Unary {
                op: UnaryOp::Neg,
                expr,
            } => NumK::Neg(Box::new(self.compile_num(expr)?)),
            Expr::Binary { left, op, right } if op.is_arithmetic() => NumK::Arith {
                l: Box::new(self.compile_num(left)?),
                op: *op,
                r: Box::new(self.compile_num(right)?),
            },
            _ => return None,
        })
    }

    fn compile_text(&self, e: &Expr) -> Option<TextK> {
        Some(match e {
            Expr::Column(c) => {
                let id = self.resolve(c)?;
                match self.data(id) {
                    ColumnData::Text(_) => TextK::Col(id),
                    ColumnData::AllNull => TextK::Null,
                    _ => return None,
                }
            }
            Expr::Literal(Literal::Str(s)) => TextK::Lit(s.clone()),
            Expr::Literal(Literal::Null) => TextK::Null,
            _ => return None,
        })
    }

    fn compile_bool(&self, e: &Expr) -> Option<BoolK> {
        Some(match e {
            Expr::Column(c) => {
                let id = self.resolve(c)?;
                match self.data(id) {
                    ColumnData::Bool(_) => BoolK::Col(id),
                    ColumnData::AllNull => BoolK::Const(-1),
                    _ => return None,
                }
            }
            Expr::Literal(Literal::Bool(b)) => BoolK::Const(*b as i8),
            Expr::Literal(Literal::Null) => BoolK::Const(-1),
            Expr::Unary {
                op: UnaryOp::Not,
                expr,
            } => BoolK::Not(Box::new(self.compile_bool(expr)?)),
            Expr::Binary { left, op, right } => match op {
                BinaryOp::And | BinaryOp::Or => BoolK::Logic {
                    l: Box::new(self.compile_bool(left)?),
                    op: *op,
                    r: Box::new(self.compile_bool(right)?),
                },
                op if op.is_comparison() => self.compile_cmp(left, *op, right)?,
                _ => return None,
            },
            Expr::Between {
                expr,
                negated,
                low,
                high,
            } => {
                // Same-class triples only: a cross-class BETWEEN can
                // still decide FALSE through the other bound in the row
                // path, which a typed kernel cannot reproduce — bail.
                if let (Some(v), Some(lo), Some(hi)) = (
                    self.compile_num(expr),
                    self.compile_num(low),
                    self.compile_num(high),
                ) {
                    BoolK::BetweenNum {
                        v,
                        lo,
                        hi,
                        negated: *negated,
                    }
                } else if let (Some(v), Some(lo), Some(hi)) = (
                    self.compile_text(expr),
                    self.compile_text(low),
                    self.compile_text(high),
                ) {
                    BoolK::BetweenText {
                        v,
                        lo,
                        hi,
                        negated: *negated,
                    }
                } else {
                    return None;
                }
            }
            Expr::InList {
                expr,
                negated,
                list,
            } => {
                let items: Vec<Value> = list
                    .iter()
                    .map(|item| match item {
                        Expr::Literal(l) => Some(literal_value(l)),
                        _ => None,
                    })
                    .collect::<Option<_>>()?;
                BoolK::InList {
                    v: Box::new(self.compile_val(expr)?),
                    items,
                    negated: *negated,
                }
            }
            Expr::Like {
                expr,
                negated,
                pattern,
            } => {
                let t = self.compile_text(expr)?;
                match pattern.as_ref() {
                    Expr::Literal(Literal::Str(p)) => match t {
                        TextK::Col(id) => BoolK::LikeDict {
                            col: id,
                            pattern: p.clone(),
                            negated: *negated,
                        },
                        TextK::Lit(s) => BoolK::Const((like_match(&s, p) != *negated) as i8),
                        TextK::Null => BoolK::Const(-1),
                    },
                    // NULL pattern: NULL for every row (the subject is a
                    // text column or literal, which cannot error first).
                    Expr::Literal(Literal::Null) => BoolK::Const(-1),
                    // Non-text pattern errors in the row path unless the
                    // subject is NULL.
                    Expr::Literal(_) => match t {
                        TextK::Null => BoolK::Const(-1),
                        _ => return None,
                    },
                    _ => return None,
                }
            }
            Expr::IsNull { expr, negated } => BoolK::IsNull {
                v: Box::new(self.compile_any(expr)?),
                negated: *negated,
            },
            _ => return None,
        })
    }

    fn compile_cmp(&self, l: &Expr, op: BinaryOp, r: &Expr) -> Option<BoolK> {
        if let (Some(a), Some(b)) = (self.compile_num(l), self.compile_num(r)) {
            return Some(BoolK::CmpNum { l: a, op, r: b });
        }
        if let (Some(a), Some(b)) = (self.compile_text(l), self.compile_text(r)) {
            return Some(BoolK::CmpText { l: a, op, r: b });
        }
        if let (Some(a), Some(b)) = (self.compile_bool(l), self.compile_bool(r)) {
            return Some(BoolK::CmpBool {
                l: Box::new(a),
                op,
                r: Box::new(b),
            });
        }
        None
    }

    fn compile_val(&self, e: &Expr) -> Option<ValK> {
        if let Some(k) = self.compile_num(e) {
            return Some(ValK::Num(k));
        }
        if let Some(k) = self.compile_text(e) {
            return Some(ValK::Text(k));
        }
        self.compile_bool(e).map(ValK::Tri)
    }

    fn compile_any(&self, e: &Expr) -> Option<AnyK> {
        if let Some(k) = self.compile_num(e) {
            return Some(AnyK::Num(k));
        }
        if let Some(k) = self.compile_text(e) {
            return Some(AnyK::Text(k));
        }
        self.compile_bool(e).map(AnyK::Tri)
    }

    /// ORDER BY key compiler, mirroring the row path's alias fallback:
    /// only a *bare* column that fails resolution with `UnknownColumn`
    /// may fall back to a projection alias; the matching item's **flat
    /// output column** at the item's index is used, exactly like
    /// `OrderProg::Projected`.
    fn compile_order_key(&self, e: &Expr, select: &Select) -> Option<ValK> {
        if let Expr::Column(c) = e {
            if c.table.is_none() {
                match self.scope.resolve(c) {
                    Err(EngineError::UnknownColumn(_)) => {
                        for (i, item) in select.projections.iter().enumerate() {
                            if let SelectItem::Expr { alias: Some(a), .. } = item {
                                if a.eq_ignore_ascii_case(&c.column) {
                                    return Some(ValK::OutCol(i));
                                }
                            }
                        }
                        return None; // row path errors
                    }
                    Err(_) => return None,
                    Ok(_) => {}
                }
            }
        }
        self.compile_val(e)
    }
}

// ---------------------------------------------------------------------
// Joins.
// ---------------------------------------------------------------------

/// Join hash key under SQL equality — the column-vector mirror of the
/// row executor's `join_key`: NULL and NaN never match, integral floats
/// unify with ints.
#[derive(PartialEq, Eq, Hash)]
enum JKey<'a> {
    Int(i64),
    Float(u64),
    Text(&'a str),
    Bool(bool),
}

fn col_join_key<'a>(col: &'a Column, rid: usize) -> Option<JKey<'a>> {
    const TWO_63: f64 = 9_223_372_036_854_775_808.0; // 2^63, exact as f64
    if col.nulls.is_null(rid) {
        return None;
    }
    match &col.data {
        ColumnData::Int(d) => Some(JKey::Int(d[rid])),
        ColumnData::Float(d) => {
            let f = d[rid];
            if f.is_nan() {
                None
            } else if f.fract() == 0.0 && (-TWO_63..TWO_63).contains(&f) {
                Some(JKey::Int(f as i64))
            } else {
                Some(JKey::Float(f.to_bits()))
            }
        }
        ColumnData::Bool(d) => Some(JKey::Bool(d[rid])),
        ColumnData::Text(d) => Some(JKey::Text(&d.values[d.codes[rid] as usize])),
        ColumnData::AllNull | ColumnData::Mixed => None,
    }
}

/// One hash-join step: probe column already in the accumulated output,
/// build column on the incoming relation.
struct JoinStep {
    new_rel: usize,
    probe: ColId,
    build_col: usize,
}

/// Execute all joins, returning one row-id column per relation (in
/// original FROM/JOIN order), rows in exactly the order the row-path
/// pipeline would emit.
fn join_all(cx: &Cx<'_>, input: &BatchInput<'_, '_>, sels: Vec<Vec<u32>>) -> Option<Vec<Vec<u32>>> {
    let n = sels.len();
    if n == 1 {
        return Some(sels);
    }

    let reordered = input.planned.is_some_and(|p| p.reordered);
    let (order, steps) = if reordered {
        let p = input.planned.expect("reordered implies planned");
        let mut steps = Vec::with_capacity(p.steps.len());
        for step in &p.steps {
            let key = step.key?;
            steps.push(JoinStep {
                new_rel: step.rel,
                probe: ColId {
                    rel: key.left_rel,
                    col: key.left_col,
                },
                build_col: key.right_col,
            });
        }
        (p.order.clone(), steps)
    } else {
        // Source order: extract each join's equi-key, requiring one side
        // in the accumulated scope and the other on the new relation —
        // anything else is a nested-loop join in the row path, whose
        // per-pair predicate evaluation can error.
        let mut steps = Vec::with_capacity(input.select.joins.len());
        for (j, join) in input.select.joins.iter().enumerate() {
            let new_rel = j + 1;
            let Some(Expr::Binary {
                left,
                op: BinaryOp::Eq,
                right,
            }) = &join.constraint
            else {
                return None;
            };
            let (Expr::Column(a), Expr::Column(b)) = (left.as_ref(), right.as_ref()) else {
                return None;
            };
            let (a, b) = (cx.resolve(a)?, cx.resolve(b)?);
            let (probe, build) = if a.rel < new_rel && b.rel == new_rel {
                (a, b)
            } else if b.rel < new_rel && a.rel == new_rel {
                (b, a)
            } else {
                return None;
            };
            steps.push(JoinStep {
                new_rel,
                probe,
                build_col: build.col,
            });
        }
        ((0..n).collect(), steps)
    };

    // Accumulated output: one row-id column per joined relation.
    let mut acc_rels: Vec<usize> = vec![order[0]];
    let mut acc: Vec<Vec<u32>> = vec![sels[order[0]].clone()];
    for step in &steps {
        let build_tbl = &cx.tables[step.new_rel];
        let build_col = build_tbl.columns.get(step.build_col)?;
        let probe_col = cx.tables[step.probe.rel].columns.get(step.probe.col)?;
        if matches!(build_col.data, ColumnData::Mixed)
            || matches!(probe_col.data, ColumnData::Mixed)
        {
            return None;
        }
        // The probe relation must already be joined.
        let probe_pos = acc_rels.iter().position(|&r| r == step.probe.rel)?;

        // Build on the incoming relation's filtered rows, then probe
        // the accumulated output in order; matches append in build-scan
        // order — exactly the row pipeline's emission order.
        let build_sel = &sels[step.new_rel];
        let acc_len = acc[0].len();
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); acc.len() + 1];
        if let (ColumnData::Int(bd), ColumnData::Int(pd)) = (&build_col.data, &probe_col.data) {
            // Typed fast path: Int×Int keys hash the raw i64 with no
            // per-row JKey construction. Int columns never unify with
            // float keys, so equality semantics are unchanged.
            let mut index: HashMap<i64, Vec<u32>, FxBuild> =
                HashMap::with_capacity_and_hasher(build_sel.len(), FxBuild::default());
            let bn = build_col.nulls.any();
            for &rid in build_sel {
                if bn && build_col.nulls.is_null(rid as usize) {
                    continue;
                }
                index.entry(bd[rid as usize]).or_default().push(rid);
            }
            let pn = probe_col.nulls.any();
            for i in 0..acc_len {
                let prid = acc[probe_pos][i] as usize;
                if pn && probe_col.nulls.is_null(prid) {
                    continue;
                }
                let Some(matches) = index.get(&pd[prid]) else {
                    continue;
                };
                for &rid in matches {
                    for (c, col) in acc.iter().enumerate() {
                        out[c].push(col[i]);
                    }
                    out[acc.len()].push(rid);
                }
            }
        } else {
            let mut index: HashMap<JKey, Vec<u32>, FxBuild> =
                HashMap::with_capacity_and_hasher(build_sel.len(), FxBuild::default());
            for &rid in build_sel {
                if let Some(k) = col_join_key(build_col, rid as usize) {
                    index.entry(k).or_default().push(rid);
                }
            }
            for i in 0..acc_len {
                let Some(k) = col_join_key(probe_col, acc[probe_pos][i] as usize) else {
                    continue;
                };
                let Some(matches) = index.get(&k) else {
                    continue;
                };
                for &rid in matches {
                    for (c, col) in acc.iter().enumerate() {
                        out[c].push(col[i]);
                    }
                    out[acc.len()].push(rid);
                }
            }
        }
        if sb_obs::enabled() {
            note_join(build_sel.len(), acc_len, out[0].len());
        }
        acc = out;
        acc_rels.push(step.new_rel);
    }

    // Back to original relation order.
    let mut by_rel: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (pos, &rel) in acc_rels.iter().enumerate() {
        by_rel[rel] = std::mem::take(&mut acc[pos]);
    }

    if reordered {
        // Restore source-order emission: selection vectors are ascending,
        // so sorting by the row-id tuple in source-relation order equals
        // the row path's sort by scan-position tags. Surviving tuples are
        // unique, so an unstable sort is exact.
        let len = by_rel[0].len();
        let mut idx: Vec<usize> = (0..len).collect();
        idx.sort_unstable_by(|&x, &y| {
            for col in &by_rel {
                match col[x].cmp(&col[y]) {
                    Ordering::Equal => continue,
                    other => return other,
                }
            }
            Ordering::Equal
        });
        for col in &mut by_rel {
            *col = idx.iter().map(|&i| col[i]).collect();
        }
    }
    Some(by_rel)
}

// ---------------------------------------------------------------------
// Plain (non-aggregate) output.
// ---------------------------------------------------------------------

fn plain(cx: &Cx<'_>, input: &BatchInput<'_, '_>, view: &View<'_>) -> Option<Projected> {
    let select = input.select;
    let mut columns = Vec::new();
    for item in &select.projections {
        match item {
            SelectItem::Wildcard => columns.extend(cx.scope.all_columns()),
            other => columns.push(crate::exec::projection_name(other)),
        }
    }

    // Projections, column-major.
    let mut proj_cols: Vec<Vec<Value>> = Vec::with_capacity(columns.len());
    for item in &select.projections {
        match item {
            SelectItem::Wildcard => {
                for (rel, binding) in cx.scope.bindings.iter().enumerate() {
                    for col in 0..binding.columns.len() {
                        let id = ColId { rel, col };
                        if matches!(cx.data(id), ColumnData::Mixed) {
                            return None;
                        }
                        let gathered = (0..view.len)
                            .map(|i| view.col(id).value_at(view.rid(id, i)))
                            .collect();
                        proj_cols.push(gathered);
                    }
                }
            }
            SelectItem::Expr { expr, .. } => {
                let k = cx.compile_val(expr)?;
                proj_cols.push(k.materialize(view, &[])?);
            }
        }
    }

    // ORDER BY keys (may read projected output columns via the alias
    // fallback).
    let mut key_cols: Vec<Vec<Value>> = Vec::with_capacity(input.order_by.len());
    for item in input.order_by {
        let k = cx.compile_order_key(&item.expr, select)?;
        key_cols.push(k.materialize(view, &proj_cols)?);
    }

    Some(transpose(columns, proj_cols, key_cols, view.len))
}

/// Column-major kernel output to the executor's row-major `Projected`.
fn transpose(
    columns: Vec<String>,
    proj_cols: Vec<Vec<Value>>,
    key_cols: Vec<Vec<Value>>,
    len: usize,
) -> Projected {
    let mut out_rows: Vec<Vec<Value>> = (0..len)
        .map(|_| Vec::with_capacity(proj_cols.len()))
        .collect();
    for col in proj_cols {
        for (row, v) in out_rows.iter_mut().zip(col) {
            row.push(v);
        }
    }
    let mut keys: Vec<Vec<Value>> = (0..len)
        .map(|_| Vec::with_capacity(key_cols.len()))
        .collect();
    for col in key_cols {
        for (row, v) in keys.iter_mut().zip(col) {
            row.push(v);
        }
    }
    (columns, out_rows, keys)
}

// ---------------------------------------------------------------------
// Grouped (aggregate) output.
// ---------------------------------------------------------------------

/// An aggregate call lowered onto the batch: fast typed accumulators
/// where the argument class is statically known, the generic
/// materialize-and-reduce otherwise.
enum AggK {
    CountStar,
    CountAny(AnyK),
    SumInt(NumK),
    SumFloat(NumK),
    AvgNum(NumK),
    MinMaxInt(NumK, bool),
    MinMaxFloat(NumK, bool),
    Generic {
        arg: ValK,
        func: AggFunc,
        distinct: bool,
    },
}

/// A group-context expression: aggregates by registry index, scalars
/// evaluated on each group's first row, combinations at `Value` level
/// exactly like the row path's grouped evaluator.
enum GK {
    Agg(usize),
    Scalar(ValK),
    Binary {
        l: Box<GK>,
        op: BinaryOp,
        r: Box<GK>,
    },
    Unary {
        op: UnaryOp,
        e: Box<GK>,
    },
}

impl Cx<'_> {
    fn compile_gk(&self, e: &Expr, aggs: &mut Vec<AggK>) -> Option<GK> {
        Some(match e {
            Expr::Agg {
                func,
                distinct,
                arg,
            } => {
                let k = self.compile_agg(*func, *distinct, arg)?;
                aggs.push(k);
                GK::Agg(aggs.len() - 1)
            }
            Expr::Binary { left, op, right } => GK::Binary {
                l: Box::new(self.compile_gk(left, aggs)?),
                op: *op,
                r: Box::new(self.compile_gk(right, aggs)?),
            },
            Expr::Unary { op, expr } => GK::Unary {
                op: *op,
                e: Box::new(self.compile_gk(expr, aggs)?),
            },
            other => GK::Scalar(self.compile_val(other)?),
        })
    }

    fn compile_agg(&self, func: AggFunc, distinct: bool, arg: &AggArg) -> Option<AggK> {
        // COUNT(*) counts rows regardless of DISTINCT, like the row path.
        if matches!((func, arg), (AggFunc::Count, AggArg::Star)) {
            return Some(AggK::CountStar);
        }
        let AggArg::Expr(e) = arg else {
            return None; // row path: `f(*)` is only valid for COUNT
        };
        if distinct {
            return Some(AggK::Generic {
                arg: self.compile_val(e)?,
                func,
                distinct: true,
            });
        }
        if func == AggFunc::Count {
            return Some(AggK::CountAny(self.compile_any(e)?));
        }
        if let Some(k) = self.compile_num(e) {
            return Some(match (func, k.ty()) {
                (_, NumTy::Null) => AggK::Generic {
                    arg: ValK::Num(k),
                    func,
                    distinct: false,
                },
                (AggFunc::Sum, NumTy::Int) => AggK::SumInt(k),
                (AggFunc::Sum, NumTy::Float) => AggK::SumFloat(k),
                (AggFunc::Avg, _) => AggK::AvgNum(k),
                (AggFunc::Min, NumTy::Int) => AggK::MinMaxInt(k, false),
                (AggFunc::Max, NumTy::Int) => AggK::MinMaxInt(k, true),
                (AggFunc::Min, NumTy::Float) => AggK::MinMaxFloat(k, false),
                (AggFunc::Max, NumTy::Float) => AggK::MinMaxFloat(k, true),
                (AggFunc::Count, _) => unreachable!("handled above"),
            });
        }
        Some(AggK::Generic {
            arg: self.compile_val(e)?,
            func,
            distinct: false,
        })
    }
}

/// Group assignment: gid per batch row (first-occurrence order) plus the
/// first batch-row index of each group.
fn group_ids(cx: &Cx<'_>, view: &View<'_>, keys: &[ColId]) -> Option<(Vec<u32>, Vec<u32>)> {
    let n = view.len;
    let mut gids = Vec::with_capacity(n);
    let mut reps: Vec<u32> = Vec::new();
    if let [id] = keys {
        let col = view.col(*id);
        match &col.data {
            ColumnData::Text(d) => {
                // Dictionary fast path: one slot per code, plus NULL.
                let mut lut = vec![u32::MAX; d.values.len()];
                let mut null_gid = u32::MAX;
                for i in 0..n {
                    let r = view.rid(*id, i);
                    let slot = if col.nulls.is_null(r) {
                        &mut null_gid
                    } else {
                        &mut lut[d.codes[r] as usize]
                    };
                    if *slot == u32::MAX {
                        *slot = reps.len() as u32;
                        reps.push(i as u32);
                    }
                    gids.push(*slot);
                }
                if sb_obs::enabled() {
                    note_dict_lut(lut.len(), n);
                }
            }
            ColumnData::Int(d) => {
                let mut map: HashMap<i64, u32, FxBuild> = HashMap::default();
                let mut null_gid = u32::MAX;
                for i in 0..n {
                    let r = view.rid(*id, i);
                    let gid = if col.nulls.is_null(r) {
                        if null_gid == u32::MAX {
                            null_gid = reps.len() as u32;
                            reps.push(i as u32);
                        }
                        null_gid
                    } else {
                        *map.entry(d[r]).or_insert_with(|| {
                            reps.push(i as u32);
                            (reps.len() - 1) as u32
                        })
                    };
                    gids.push(gid);
                }
            }
            ColumnData::Float(d) => {
                // Canonical-key relation: micro-rounded bits, NaN
                // collapsed — identical partitions to the row path's
                // hashed `Vec<Value>` keys.
                let mut map: HashMap<u64, u32, FxBuild> = HashMap::default();
                let mut null_gid = u32::MAX;
                for i in 0..n {
                    let r = view.rid(*id, i);
                    let gid = if col.nulls.is_null(r) {
                        if null_gid == u32::MAX {
                            null_gid = reps.len() as u32;
                            reps.push(i as u32);
                        }
                        null_gid
                    } else {
                        *map.entry(canon_num(d[r]).to_bits()).or_insert_with(|| {
                            reps.push(i as u32);
                            (reps.len() - 1) as u32
                        })
                    };
                    gids.push(gid);
                }
            }
            ColumnData::Bool(d) => {
                let mut lut = [u32::MAX; 3];
                for i in 0..n {
                    let r = view.rid(*id, i);
                    let slot = if col.nulls.is_null(r) {
                        2
                    } else {
                        d[r] as usize
                    };
                    if lut[slot] == u32::MAX {
                        lut[slot] = reps.len() as u32;
                        reps.push(i as u32);
                    }
                    gids.push(lut[slot]);
                }
            }
            ColumnData::AllNull => {
                for i in 0..n {
                    if reps.is_empty() {
                        reps.push(i as u32);
                    }
                    gids.push(0);
                }
            }
            ColumnData::Mixed => return None,
        }
        let _ = cx;
        return Some((gids, reps));
    }

    // Multi-column keys: hashed `Vec<Value>` keys under the canonical
    // relation, same as the row path.
    let key_cols: Vec<Vec<Value>> = keys
        .iter()
        .map(|id| {
            if matches!(cx.data(*id), ColumnData::Mixed) {
                return None;
            }
            Some(
                (0..n)
                    .map(|i| view.col(*id).value_at(view.rid(*id, i)))
                    .collect(),
            )
        })
        .collect::<Option<_>>()?;
    let mut index = KeyIndex::default();
    let mut group_keys: Vec<Vec<Value>> = Vec::new();
    for i in 0..n {
        let buf: Vec<Value> = key_cols.iter().map(|c| c[i].clone()).collect();
        let h = key::hash_values(&buf);
        let gid = match index.insert(h, group_keys.len() as u32, |t| {
            key::values_key_eq(&group_keys[t as usize], &buf)
        }) {
            Some(existing) => existing,
            None => {
                group_keys.push(buf);
                reps.push(i as u32);
                (group_keys.len() - 1) as u32
            }
        };
        gids.push(gid);
    }
    Some((gids, reps))
}

/// Run every registered aggregate over the grouped batch.
fn accumulate(
    aggs: &[AggK],
    view: &View<'_>,
    gids: &[u32],
    n_groups: usize,
) -> Option<Vec<Vec<Value>>> {
    let mut results = Vec::with_capacity(aggs.len());
    for agg in aggs {
        results.push(match agg {
            AggK::CountStar => {
                let mut counts = vec![0i64; n_groups];
                for &g in gids {
                    counts[g as usize] += 1;
                }
                counts.into_iter().map(Value::Int).collect()
            }
            AggK::CountAny(k) => {
                let nulls = k.nulls(view)?;
                let mut counts = vec![0i64; n_groups];
                for (&g, null) in gids.iter().zip(nulls) {
                    if !null {
                        counts[g as usize] += 1;
                    }
                }
                counts.into_iter().map(Value::Int).collect()
            }
            AggK::SumInt(k) => {
                let NumOut::Int(data, nulls) = k.eval(view)? else {
                    return None;
                };
                let mut acc = vec![0i64; n_groups];
                let mut has = vec![false; n_groups];
                for i in 0..data.len() {
                    if nulls[i] {
                        continue;
                    }
                    let g = gids[i] as usize;
                    // Same running checked sum, in the same row order,
                    // as `finish_aggregate` — an overflow bails where
                    // the row path errors.
                    acc[g] = acc[g].checked_add(data[i])?;
                    has[g] = true;
                }
                finish_nullable(acc, has, Value::Int)
            }
            AggK::SumFloat(k) => {
                let NumOut::Float(data, nulls) = k.eval(view)? else {
                    return None;
                };
                let mut acc = vec![0.0f64; n_groups];
                let mut has = vec![false; n_groups];
                for i in 0..data.len() {
                    if nulls[i] {
                        continue;
                    }
                    let g = gids[i] as usize;
                    acc[g] += data[i];
                    has[g] = true;
                }
                finish_nullable(acc, has, Value::Float)
            }
            AggK::AvgNum(k) => {
                let (data, nulls) = match k.eval(view)? {
                    NumOut::AllNull => return None, // statically Generic
                    other => other.into_f64(),
                };
                let mut acc = vec![0.0f64; n_groups];
                let mut cnt = vec![0usize; n_groups];
                for i in 0..data.len() {
                    if nulls[i] {
                        continue;
                    }
                    let g = gids[i] as usize;
                    acc[g] += data[i];
                    cnt[g] += 1;
                }
                acc.into_iter()
                    .zip(cnt)
                    .map(|(s, c)| {
                        if c == 0 {
                            Value::Null
                        } else {
                            Value::Float(s / c as f64)
                        }
                    })
                    .collect()
            }
            AggK::MinMaxInt(k, max) => {
                let NumOut::Int(data, nulls) = k.eval(view)? else {
                    return None;
                };
                let mut best: Vec<Option<i64>> = vec![None; n_groups];
                for i in 0..data.len() {
                    if nulls[i] {
                        continue;
                    }
                    let slot = &mut best[gids[i] as usize];
                    let take = match *slot {
                        None => true,
                        Some(b) => {
                            if *max {
                                data[i] > b
                            } else {
                                data[i] < b
                            }
                        }
                    };
                    if take {
                        *slot = Some(data[i]);
                    }
                }
                best.into_iter()
                    .map(|b| b.map_or(Value::Null, Value::Int))
                    .collect()
            }
            AggK::MinMaxFloat(k, max) => {
                let NumOut::Float(data, nulls) = k.eval(view)? else {
                    return None;
                };
                let mut best: Vec<Option<f64>> = vec![None; n_groups];
                for i in 0..data.len() {
                    if nulls[i] {
                        continue;
                    }
                    let slot = &mut best[gids[i] as usize];
                    let take = match *slot {
                        None => true,
                        // NaN cannot be ordered: the row path errors
                        // ("MIN/MAX over mixed types"), so bail.
                        Some(b) => match data[i].partial_cmp(&b)? {
                            Ordering::Less => !*max,
                            Ordering::Greater => *max,
                            Ordering::Equal => false,
                        },
                    };
                    if take {
                        *slot = Some(data[i]);
                    }
                }
                best.into_iter()
                    .map(|b| b.map_or(Value::Null, Value::Float))
                    .collect()
            }
            AggK::Generic {
                arg,
                func,
                distinct,
            } => {
                let vals = arg.materialize(view, &[])?;
                let mut buckets: Vec<Vec<Value>> = vec![Vec::new(); n_groups];
                for (v, &g) in vals.into_iter().zip(gids) {
                    if !v.is_null() {
                        buckets[g as usize].push(v);
                    }
                }
                let mut out = Vec::with_capacity(n_groups);
                for mut bucket in buckets {
                    if *distinct {
                        key::dedup_values(&mut bucket);
                    }
                    out.push(crate::exec::finish_aggregate(*func, bucket).ok()?);
                }
                out
            }
        });
    }
    Some(results)
}

fn finish_nullable<T>(acc: Vec<T>, has: Vec<bool>, wrap: impl Fn(T) -> Value) -> Vec<Value> {
    acc.into_iter()
        .zip(has)
        .map(|(v, h)| if h { wrap(v) } else { Value::Null })
        .collect()
}

/// Evaluate a group-context expression to one value per group,
/// combining at the `Value` level exactly like the row path's grouped
/// evaluator (including its AND/OR truth short-circuit over already
/// computed operands).
fn eval_gk(
    gk: &GK,
    agg_results: &[Vec<Value>],
    scalars: &ScalarGroups<'_, '_>,
    n_groups: usize,
) -> Option<Vec<Value>> {
    Some(match gk {
        GK::Agg(i) => agg_results[*i].clone(),
        GK::Scalar(k) => scalars.eval(k)?,
        GK::Binary { l, op, r } => {
            let lv = eval_gk(l, agg_results, scalars, n_groups)?;
            let rv = eval_gk(r, agg_results, scalars, n_groups)?;
            let mut out = Vec::with_capacity(n_groups);
            for (a, b) in lv.into_iter().zip(rv) {
                out.push(match op {
                    BinaryOp::And | BinaryOp::Or => {
                        let lt = truth_ref(&a).ok()?;
                        match (op, lt) {
                            (BinaryOp::And, Some(false)) => Value::Bool(false),
                            (BinaryOp::Or, Some(true)) => Value::Bool(true),
                            _ => {
                                let rt = truth_ref(&b).ok()?;
                                match combine_logical(*op, lt, rt) {
                                    Some(v) => Value::Bool(v),
                                    None => Value::Null,
                                }
                            }
                        }
                    }
                    op if op.is_arithmetic() => arith(*op, &a, &b).ok()?,
                    op => apply_cmp(*op, &a, &b).ok()?,
                });
            }
            out
        }
        GK::Unary { op, e } => {
            let v = eval_gk(e, agg_results, scalars, n_groups)?;
            let mut out = Vec::with_capacity(n_groups);
            for val in v {
                out.push(apply_unary(*op, val).ok()?);
            }
            out
        }
    })
}

/// Scalar evaluation over group representatives (each group's first
/// row). For the empty implicit group there is no representative and
/// every scalar is NULL.
struct ScalarGroups<'a, 'v> {
    view: &'a View<'v>,
    reps_rowids: Vec<Vec<u32>>,
    empty_implicit: bool,
}

impl ScalarGroups<'_, '_> {
    fn eval(&self, k: &ValK) -> Option<Vec<Value>> {
        if self.empty_implicit {
            return Some(vec![Value::Null]);
        }
        let reps_view = View::all(self.view.tables, &self.reps_rowids);
        k.materialize(&reps_view, &[])
    }
}

fn grouped(cx: &Cx<'_>, input: &BatchInput<'_, '_>, view: &View<'_>) -> Option<Projected> {
    let select = input.select;

    // Output columns; a wildcard is an error the row path must report.
    let mut columns = Vec::new();
    for item in &select.projections {
        match item {
            SelectItem::Wildcard => return None,
            other => columns.push(crate::exec::projection_name(other)),
        }
    }

    // Group assignment.
    let (gids, reps, empty_implicit) = if select.group_by.is_empty() {
        // Single implicit group, even over zero rows.
        let reps: Vec<u32> = if view.len == 0 { Vec::new() } else { vec![0] };
        (vec![0u32; view.len], reps, view.len == 0)
    } else {
        let keys: Vec<ColId> = select
            .group_by
            .iter()
            .map(|g| match g {
                Expr::Column(c) => cx.resolve(c),
                _ => None,
            })
            .collect::<Option<_>>()?;
        let (gids, reps) = group_ids(cx, view, &keys)?;
        (gids, reps, false)
    };
    let n_groups = if select.group_by.is_empty() {
        1
    } else {
        reps.len()
    };
    if sb_obs::enabled() {
        note_groups(n_groups);
    }

    // Compile HAVING / projections / ORDER BY keys, registering
    // aggregate calls.
    let mut aggs: Vec<AggK> = Vec::new();
    let having = match &select.having {
        Some(h) => Some(cx.compile_gk(h, &mut aggs)?),
        None => None,
    };
    let projs: Vec<GK> = select
        .projections
        .iter()
        .map(|item| match item {
            SelectItem::Expr { expr, .. } => cx.compile_gk(expr, &mut aggs),
            SelectItem::Wildcard => None,
        })
        .collect::<Option<_>>()?;
    // Grouped ORDER BY keys have no alias fallback in the row path.
    let order_ks: Vec<GK> = input
        .order_by
        .iter()
        .map(|o| cx.compile_gk(&o.expr, &mut aggs))
        .collect::<Option<_>>()?;

    let agg_results = accumulate(&aggs, view, &gids, n_groups)?;
    let scalars = ScalarGroups {
        view,
        reps_rowids: view
            .rows
            .iter()
            .map(|rows| {
                let rows = rows.expect("joined view has every relation");
                reps.iter().map(|&i| rows[i as usize]).collect()
            })
            .collect(),
        empty_implicit,
    };

    // HAVING: the row path evaluates it for every group (and only
    // evaluates projections for survivors — a subset of what we compute,
    // so extra evaluation can only cause a bail, never new output).
    let keep: Vec<bool> = match &having {
        Some(h) => eval_gk(h, &agg_results, &scalars, n_groups)?
            .into_iter()
            .map(|v| truth_ref(&v).map(|t| t.unwrap_or(false)))
            .collect::<Result<_, _>>()
            .ok()?,
        None => vec![true; n_groups],
    };

    let proj_groups: Vec<Vec<Value>> = projs
        .iter()
        .map(|gk| eval_gk(gk, &agg_results, &scalars, n_groups))
        .collect::<Option<_>>()?;
    let key_groups: Vec<Vec<Value>> = order_ks
        .iter()
        .map(|gk| eval_gk(gk, &agg_results, &scalars, n_groups))
        .collect::<Option<_>>()?;

    let mut out_rows = Vec::new();
    let mut keys = Vec::new();
    for g in 0..n_groups {
        if !keep[g] {
            continue;
        }
        out_rows.push(proj_groups.iter().map(|col| col[g].clone()).collect());
        keys.push(key_groups.iter().map(|col| col[g].clone()).collect());
    }
    Some((columns, out_rows, keys))
}

// ---------------------------------------------------------------------
// Observability sinks (cold, called only under SB_OBS=1).
// ---------------------------------------------------------------------

#[cold]
#[inline(never)]
fn note_outcome(ok: bool) {
    sb_obs::count(
        if ok {
            "engine.columnar.selects"
        } else {
            "engine.columnar.fallbacks"
        },
        1,
    );
}

#[cold]
#[inline(never)]
fn note_scan(scanned: usize, kept: usize) {
    // Same totals the row-path scans would report, so scan counters stay
    // comparable across engines.
    sb_obs::count("engine.scan.rows", scanned as u64);
    sb_obs::count("engine.scan.rows_pruned_pushdown", (scanned - kept) as u64);
}

#[cold]
#[inline(never)]
fn note_filter(rows_in: usize, rows_out: usize) {
    sb_obs::count("engine.columnar.filter.batches", 1);
    sb_obs::count("engine.columnar.filter.rows_in", rows_in as u64);
    sb_obs::count("engine.columnar.filter.rows_out", rows_out as u64);
}

#[cold]
#[inline(never)]
fn note_join(build: usize, probe: usize, output: usize) {
    sb_obs::count("engine.columnar.join.hash", 1);
    sb_obs::count("engine.columnar.join.build_rows", build as u64);
    sb_obs::count("engine.columnar.join.probe_rows", probe as u64);
    sb_obs::count("engine.columnar.join.output_rows", output as u64);
}

#[cold]
#[inline(never)]
fn note_groups(created: usize) {
    sb_obs::count("engine.columnar.agg.groups", created as u64);
}

#[cold]
#[inline(never)]
fn note_dict_lut(entries: usize, probes: usize) {
    sb_obs::count("engine.columnar.dict.lut_entries", entries as u64);
    sb_obs::count("engine.columnar.dict.lut_probes", probes as u64);
}
