//! The shared schema-linking front end.
//!
//! Linking maps question tokens to schema elements and database values:
//!
//! 1. **Name matching** — a column or table whose (underscore-split) name
//!    appears in the question links directly. This is all a zero-shot
//!    system has on an unseen schema, and it is exactly what breaks on
//!    cryptic scientific schemas: nothing in "redshift larger than 0.5"
//!    matches a column called `z`.
//! 2. **Learned lexicon** — training pairs vote `question token →
//!    (db, table, column)`: tokens of the NL question are associated with
//!    the schema elements of the gold SQL. Domain training data teaches
//!    the system that "redshift" means `specobj.z` — the mechanism by
//!    which seed/synthetic data lifts accuracy in Table 5.
//! 3. **Value index** — frequent values of every text column are indexed
//!    so that quoted or capitalized entities in the question ground to
//!    `(table, column, value)` candidates (ValueNet's "learns from
//!    database information").

use crate::{is_stopword, Pair};
use sb_engine::{profile_database, Database};
use sb_schema::{ColumnType, DataProfile};
use sb_sql::Literal;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A linked schema column with a confidence score.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkedColumn {
    /// Table name.
    pub table: String,
    /// Column name.
    pub column: String,
    /// Link confidence (higher = better).
    pub score: f64,
}

/// The result of linking one question against one database.
#[derive(Debug, Clone, Default)]
pub struct LinkResult {
    /// Tables ranked by evidence.
    pub tables: Vec<(String, f64)>,
    /// Columns ranked by evidence.
    pub columns: Vec<LinkedColumn>,
    /// Grounded values: `(table, column, literal)`.
    pub values: Vec<(String, String, Literal)>,
    /// Bare numbers mentioned in the question, in order.
    pub numbers: Vec<f64>,
}

impl LinkResult {
    /// Best-linked columns of one table, most confident first.
    pub fn columns_of(&self, table: &str) -> Vec<&LinkedColumn> {
        self.columns
            .iter()
            .filter(|c| c.table.eq_ignore_ascii_case(table))
            .collect()
    }

    /// The best table, if any evidence exists.
    pub fn best_table(&self) -> Option<&str> {
        self.tables.first().map(|(t, _)| t.as_str())
    }
}

/// The trainable linker.
#[derive(Debug, Default)]
pub struct Linker {
    /// token → (db, table, column) → votes.
    lexicon: HashMap<String, HashMap<(String, String, String), f64>>,
    /// Cached data profiles per database name (interior mutability so
    /// that linking — a read-only operation conceptually — can run on
    /// `&self`; a `Mutex` rather than `RefCell` so predictions can run
    /// from parallel evaluation workers).
    profiles: Mutex<HashMap<String, Arc<DataProfile>>>,
}

impl Clone for Linker {
    fn clone(&self) -> Self {
        Linker {
            lexicon: self.lexicon.clone(),
            // The profile cache is derived data; a clone starts cold and
            // repopulates on demand.
            profiles: Mutex::new(HashMap::new()),
        }
    }
}

impl Linker {
    /// Create an untrained linker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Learn token→column associations from a training pair. `db` is the
    /// pair's source database.
    pub fn learn(&mut self, pair: &Pair, db: &Database) {
        let Ok(query) = sb_sql::parse(&pair.sql) else {
            return;
        };
        // Resolve column references against the schema: alias-qualified
        // references need the FROM bindings.
        let mut bindings: HashMap<String, String> = HashMap::new();
        for s in query.selects() {
            for tr in s.table_refs() {
                if let sb_sql::TableFactor::Table(name) = &tr.factor {
                    if let Some(b) = tr.binding() {
                        bindings.insert(b.to_ascii_lowercase(), name.to_ascii_lowercase());
                    }
                }
            }
        }
        // Columns referenced in WHERE/HAVING carry more signal about what
        // a content word means than projection columns (which are often
        // just ids), so they get double weight.
        let mut filter_cols: Vec<sb_sql::ColumnRef> = Vec::new();
        for s in query.selects() {
            for pred in s.selection.iter().chain(s.having.iter()) {
                struct C<'a>(&'a mut Vec<sb_sql::ColumnRef>);
                impl<'a> sb_sql::visitor::Visitor for C<'a> {
                    fn visit_expr(&mut self, e: &sb_sql::Expr) {
                        if let sb_sql::Expr::Column(c) = e {
                            self.0.push(c.clone());
                        }
                    }
                }
                sb_sql::visitor::walk_expr(pred, &mut C(&mut filter_cols));
            }
        }
        let resolve = |col: &sb_sql::ColumnRef| -> Option<String> {
            match &col.table {
                Some(q) => bindings.get(&q.to_ascii_lowercase()).cloned(),
                None => db
                    .schema
                    .tables
                    .iter()
                    .find(|t| t.column(&col.column).is_some())
                    .map(|t| t.name.to_ascii_lowercase()),
            }
        };
        let mut elements: Vec<(String, String, f64)> = Vec::new();
        for col in sb_sql::visitor::collect_columns(&query) {
            if let Some(table) = resolve(&col) {
                let in_filter = filter_cols.iter().any(|fc| fc == &col);
                elements.push((
                    table,
                    col.column.to_ascii_lowercase(),
                    if in_filter { 2.0 } else { 1.0 },
                ));
            }
        }
        if elements.is_empty() {
            return;
        }
        let total: f64 = elements.iter().map(|(_, _, w)| w).sum();
        let db_name = pair.db.to_ascii_lowercase();
        // Tokens that appear inside the pair's own SQL literals are value
        // mentions ("… where the alias is 'SAILA'"), not paraphrases of
        // the columns they co-occur with; learning them as column
        // vocabulary turns cell values into bogus realization aliases.
        let mut literal_tokens: std::collections::HashSet<String> =
            std::collections::HashSet::new();
        for lit in sb_sql::visitor::collect_literals(&query) {
            match lit {
                sb_sql::Literal::Str(s) => literal_tokens.extend(sb_embed::tokenize(&s)),
                sb_sql::Literal::Int(v) => {
                    literal_tokens.insert(v.to_string());
                }
                sb_sql::Literal::Float(v) => {
                    literal_tokens.insert(v.to_string());
                }
                _ => {}
            }
        }
        let tokens = sb_embed::tokenize(&pair.nl);
        for token in tokens {
            if is_stopword(&token) || token.len() < 3 || literal_tokens.contains(&token) {
                continue;
            }
            // Tokens that literally name a schema element carry no new
            // information — name matching already covers them. The check
            // must mirror the linker's matching (including singular/plural
            // folding), otherwise "stadium" accumulates junk votes because
            // the table is called "stadiums".
            let names_schema = db.schema.tables.iter().any(|t| {
                name_tokens(&t.name)
                    .iter()
                    .any(|p| p == &token || singular_eq(p, &token))
                    || t.columns.iter().any(|c| {
                        name_tokens(&c.name)
                            .iter()
                            .any(|p| p == &token || singular_eq(p, &token))
                    })
            });
            if names_schema {
                continue;
            }
            let entry = self.lexicon.entry(token).or_default();
            for (table, column, w) in &elements {
                *entry
                    .entry((db_name.clone(), table.clone(), column.clone()))
                    .or_insert(0.0) += w / total;
            }
        }
    }

    /// The learned vocabulary of a database: for every `(table, column)`
    /// with lexicon evidence, the strongest associated question token.
    /// Systems use these as realization aliases ("what the users call
    /// this column"), which is how domain training data teaches
    /// `SmBopSim` to speak the domain's language.
    pub fn learned_aliases(&self, db_name: &str) -> Vec<(String, String, String)> {
        let db_name = db_name.to_ascii_lowercase();
        let mut best: HashMap<(String, String), (String, f64)> = HashMap::new();
        for (token, votes) in &self.lexicon {
            // A token only qualifies as a column's alias when the column
            // holds the majority of the token's vote mass in this
            // database — boilerplate words that co-occur with every
            // column never reach a majority and are rejected wholesale.
            let total: f64 = votes
                .iter()
                .filter(|((vdb, _, _), _)| *vdb == db_name)
                .map(|(_, w)| *w)
                .sum();
            for ((vdb, table, column), w) in votes {
                if *vdb != db_name || *w < 0.9 || *w / total < 0.5 {
                    continue;
                }
                let entry = best
                    .entry((table.clone(), column.clone()))
                    .or_insert_with(|| (token.clone(), *w));
                if *w > entry.1 {
                    *entry = (token.clone(), *w);
                }
            }
        }
        let mut out: Vec<(String, String, String)> = best
            .into_iter()
            .map(|((t, c), (tok, _))| (t, c, tok))
            .collect();
        out.sort();
        out
    }

    /// The (cached) data profile of a database.
    pub fn profile(&self, db: &Database) -> Arc<DataProfile> {
        Arc::clone(
            self.profiles
                .lock()
                .expect("profile cache lock poisoned")
                .entry(db.schema.name.to_ascii_lowercase())
                .or_insert_with(|| Arc::new(profile_database(db))),
        )
    }

    /// Link a question against a target database.
    pub fn link(&self, question: &str, db: &Database) -> LinkResult {
        let profile = self.profile(db);
        let _q_lower = question.to_lowercase();
        let mut tokens = sb_embed::tokenize(question);
        // Compound-name matching: "neighbor mode" should link to a column
        // called `neighbormode`, so adjacent-token concatenations join the
        // token pool.
        let bigrams: Vec<String> = tokens
            .windows(2)
            .map(|w| format!("{}{}", w[0], w[1]))
            .collect();
        tokens.extend(bigrams);
        let db_name = db.schema.name.to_ascii_lowercase();

        let mut table_score: HashMap<String, f64> = HashMap::new();
        let mut col_score: HashMap<(String, String), f64> = HashMap::new();

        // 1. Name matching.
        for t in &db.schema.tables {
            let t_lower = t.name.to_ascii_lowercase();
            for part in name_tokens(&t.name) {
                if part.len() >= 3
                    && tokens
                        .iter()
                        .any(|tok| tok == &part || singular_eq(tok, &part))
                {
                    *table_score.entry(t_lower.clone()).or_insert(0.0) += 1.0;
                }
            }
            for c in &t.columns {
                let parts = name_tokens(&c.name);
                let mut hit = 0usize;
                for part in &parts {
                    if tokens
                        .iter()
                        .any(|tok| tok == part || singular_eq(tok, part))
                    {
                        hit += 1;
                    }
                }
                if hit > 0 {
                    let frac = hit as f64 / parts.len() as f64;
                    if frac >= 0.5 {
                        // A full multi-part match ("stadium id" →
                        // `stadium_id`) is far stronger evidence than a
                        // single generic part ("id" → `id`).
                        let strength = 1.2 * hit as f64 * frac;
                        *col_score
                            .entry((t_lower.clone(), c.name.to_ascii_lowercase()))
                            .or_insert(0.0) += strength;
                        *table_score.entry(t_lower.clone()).or_insert(0.0) += 0.3 * strength;
                    }
                }
            }
        }

        // 2. Learned lexicon votes (scoped to this database), scaled by
        //    each column's *share* of the token's vote mass. A
        //    discriminative token ("redshift" → `specobj.z`) concentrates
        //    its mass on one column and votes at full strength; phrasing
        //    boilerplate that large synthetic training sets attach to
        //    every column ("records", "entries") spreads its mass thin
        //    and contributes almost nothing anywhere.
        for tok in &tokens {
            if let Some(votes) = self.lexicon.get(tok) {
                let total: f64 = votes
                    .iter()
                    .filter(|((vdb, _, _), _)| *vdb == db_name)
                    .map(|(_, w)| *w)
                    .sum();
                if total <= 0.0 {
                    continue;
                }
                for ((vdb, table, column), w) in votes {
                    if *vdb == db_name {
                        let share = w / total;
                        let v = share * w.min(3.0);
                        *col_score
                            .entry((table.clone(), column.clone()))
                            .or_insert(0.0) += 0.8 * v;
                        *table_score.entry(table.clone()).or_insert(0.0) += 0.3 * v;
                    }
                }
            }
        }

        // 3. Value grounding from the content index. Matching is on
        //    whole-token sequences, never raw substrings — otherwise the
        //    value 'REC' grounds inside the word "records".
        let plain_tokens = sb_embed::tokenize(question);
        let contains_token_seq = |needle: &str| -> bool {
            let n: Vec<String> = sb_embed::tokenize(needle);
            if n.is_empty() {
                return false;
            }
            plain_tokens
                .windows(n.len())
                .any(|w| w.iter().zip(&n).all(|(a, b)| a == b))
        };
        let mut values = Vec::new();
        for t in &db.schema.tables {
            for c in &t.columns {
                if c.ty != ColumnType::Text {
                    continue;
                }
                if let Some(p) = profile.column(&t.name, &c.name) {
                    for lit in &p.frequent_values {
                        let inner = lit.trim_matches('\'').to_lowercase();
                        if inner.len() >= 2 && contains_token_seq(&inner) {
                            values.push((
                                t.name.to_ascii_lowercase(),
                                c.name.to_ascii_lowercase(),
                                Literal::Str(lit.trim_matches('\'').to_string()),
                            ));
                            *col_score
                                .entry((t.name.to_ascii_lowercase(), c.name.to_ascii_lowercase()))
                                .or_insert(0.0) += 1.0;
                            *table_score
                                .entry(t.name.to_ascii_lowercase())
                                .or_insert(0.0) += 0.5;
                        }
                    }
                }
            }
        }
        // Prefer longer (more specific) grounded values.
        values.sort_by_key(|v| std::cmp::Reverse(literal_len(&v.2)));
        values.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);

        // 4. Numbers in the question — excluding digits that belong to a
        //    grounded value mention ("city 2" contributes no filter
        //    number).
        let mut numbers = extract_numbers(question);
        for (_, _, v) in &values {
            if let Literal::Str(s) = v {
                for n in extract_numbers(s) {
                    if let Some(pos) = numbers.iter().position(|x| *x == n) {
                        numbers.remove(pos);
                    }
                }
            }
        }

        let mut tables: Vec<(String, f64)> = table_score.into_iter().collect();
        tables.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        let mut columns: Vec<LinkedColumn> = col_score
            .into_iter()
            .map(|((table, column), score)| LinkedColumn {
                table,
                column,
                score,
            })
            .collect();
        columns.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| {
                    (a.table.clone(), a.column.clone()).cmp(&(b.table.clone(), b.column.clone()))
                })
        });

        LinkResult {
            tables,
            columns,
            values,
            numbers,
        }
    }
}

/// Underscore-split lower-case parts of an identifier.
pub(crate) fn name_tokens(name: &str) -> Vec<String> {
    name.to_ascii_lowercase()
        .split('_')
        .filter(|p| !p.is_empty())
        .map(str::to_string)
        .collect()
}

/// Whether all name parts of `column` are mentioned in the question
/// tokens (bigram-concatenations included).
pub fn column_mentioned(question_tokens: &[String], column: &str) -> bool {
    let parts = name_tokens(column);
    if parts.is_empty() {
        return false;
    }
    parts
        .iter()
        .all(|p| question_tokens.iter().any(|t| t == p || singular_eq(t, p)))
}

/// Public alias of [`singular_eq`] for sibling modules.
pub(crate) fn singular_eq_pub(a: &str, b: &str) -> bool {
    singular_eq(a, b)
}

/// Crude singular/plural equivalence ("galaxies"/"galaxy", "pets"/"pet").
pub(crate) fn singular_eq(a: &str, b: &str) -> bool {
    let strip = |s: &str| -> String {
        if let Some(base) = s.strip_suffix("ies") {
            format!("{base}y")
        } else if let Some(base) = s.strip_suffix('s') {
            base.to_string()
        } else {
            s.to_string()
        }
    };
    strip(a) == strip(b)
}

fn literal_len(l: &Literal) -> usize {
    match l {
        Literal::Str(s) => s.len(),
        _ => 0,
    }
}

/// Numbers (ints and decimals) in question order.
pub(crate) fn extract_numbers(text: &str) -> Vec<f64> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() {
            let start = i;
            let mut saw_dot = false;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || (bytes[i] == b'.' && !saw_dot)) {
                if bytes[i] == b'.' {
                    // Only treat as decimal point when followed by digit.
                    if i + 1 >= bytes.len() || !bytes[i + 1].is_ascii_digit() {
                        break;
                    }
                    saw_dot = true;
                }
                i += 1;
            }
            if let Ok(v) = text[start..i].parse::<f64>() {
                out.push(v);
            }
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_engine::Value;
    use sb_schema::{Column, Schema, TableDef};

    fn sdss_db() -> Database {
        let schema = Schema::new("sdss")
            .with_table(TableDef::new(
                "specobj",
                vec![
                    Column::pk("specobjid", ColumnType::Int),
                    Column::new("class", ColumnType::Text),
                    Column::new("z", ColumnType::Float),
                ],
            ))
            .with_table(TableDef::new(
                "neighbors",
                vec![
                    Column::new("objid", ColumnType::Int),
                    Column::new("neighbormode", ColumnType::Int),
                ],
            ));
        let mut db = Database::new(schema);
        db.table_mut("specobj").unwrap().push_rows(vec![
            vec![Value::Int(1), "GALAXY".into(), Value::Float(0.5)],
            vec![Value::Int(2), "STAR".into(), Value::Float(0.0)],
        ]);
        db
    }

    #[test]
    fn name_matching_links_spelled_out_columns() {
        let db = sdss_db();
        let l = Linker::new();
        let r = l.link("find objects with neighbor mode equal to 2", &db);
        assert!(r
            .columns
            .iter()
            .any(|c| c.column == "neighbormode" || (c.table == "neighbors")));
        assert_eq!(r.numbers, vec![2.0]);
    }

    #[test]
    fn value_grounding_finds_content() {
        let db = sdss_db();
        let l = Linker::new();
        let r = l.link("show all GALAXY entries", &db);
        assert!(r.values.iter().any(|(t, c, v)| t == "specobj"
            && c == "class"
            && *v == Literal::Str("GALAXY".into())));
    }

    #[test]
    fn cryptic_column_needs_learning() {
        let db = sdss_db();
        let mut l = Linker::new();
        let before = l.link("galaxies with redshift above 0.5", &db);
        assert!(
            !before.columns.iter().any(|c| c.column == "z"),
            "zero-shot linker cannot know that redshift = z"
        );
        // Train on one domain pair.
        l.learn(
            &Pair::new(
                "What is the redshift of spectroscopic objects?",
                "SELECT s.z FROM specobj AS s",
                "sdss",
            ),
            &db,
        );
        let after = l.link("galaxies with redshift above 0.5", &db);
        assert!(
            after.columns.iter().any(|c| c.column == "z"),
            "learned lexicon must map redshift → specobj.z: {:?}",
            after.columns
        );
    }

    #[test]
    fn lexicon_is_database_scoped() {
        let db = sdss_db();
        let other = Database::new(Schema::new("cordis").with_table(TableDef::new(
            "projects",
            vec![Column::pk("unics_id", ColumnType::Int)],
        )));
        let mut l = Linker::new();
        l.learn(
            &Pair::new("redshift question", "SELECT s.z FROM specobj AS s", "sdss"),
            &db,
        );
        let r = l.link("redshift question", &other);
        assert!(r.columns.is_empty(), "votes must not leak across databases");
    }

    #[test]
    fn number_extraction() {
        assert_eq!(extract_numbers("between 0.5 and 1"), vec![0.5, 1.0]);
        assert_eq!(extract_numbers("top 5 results"), vec![5.0]);
        assert!(extract_numbers("no numbers here.").is_empty());
    }

    #[test]
    fn singular_plural_matching() {
        let db = sdss_db();
        let l = Linker::new();
        let r = l.link("list the neighbors of objects", &db);
        assert!(r.tables.iter().any(|(t, _)| t == "neighbors"));
    }
}
