//! T5-like system: translation-memory seq2seq with unconstrained
//! decoding.
//!
//! A sequence-to-sequence model fine-tuned on NL/SQL pairs behaves, to a
//! first approximation, like a smoothed nearest-neighbour over its
//! training distribution: familiar question shapes decode into the SQL
//! shapes they co-occurred with, with schema tokens copied from the input
//! where attention finds a match. This surrogate makes that explicit:
//!
//! 1. retrieve the nearest training question by embedding;
//! 2. take its SQL and *repair* it token-by-token against the target
//!    schema (identifiers that do not exist in the target schema are
//!    replaced by the linker's best guesses; literals are re-copied from
//!    the question).
//!
//! Decoding is unconstrained — exactly the paper's "T5-Large w/o PICARD"
//! configuration — so cross-schema repairs frequently produce SQL that
//! does not execute, which the evaluation counts as a miss.

use crate::linker::{column_mentioned, Linker};
use crate::{DbCatalog, NlToSql, Pair};
use sb_embed::{embed, Embedding};

/// Retrieval embedding: numbers are structure-irrelevant, so digits are
/// normalized away before embedding (values differ between otherwise
/// identical questions).
fn retrieval_embed(text: &str) -> Embedding {
    let normalized: String = text
        .chars()
        .map(|c| if c.is_ascii_digit() { '#' } else { c })
        .collect();
    embed(&normalized)
}
use sb_engine::Database;
use sb_sql::{Keyword, Lexer, Token};
use std::collections::HashMap;

/// One memorized training example.
#[derive(Debug, Clone)]
struct Memory {
    embedding: Embedding,
    sql: String,
    db: String,
    /// Number of numeric literals in the SQL (retrieval prefers memories
    /// whose value arity matches the question's).
    numeric_literals: usize,
}

fn count_numeric_literals(sql: &str) -> usize {
    sb_sql::parse(sql)
        .map(|q| {
            sb_sql::visitor::collect_literals(&q)
                .iter()
                .filter(|l| matches!(l, sb_sql::Literal::Int(_) | sb_sql::Literal::Float(_)))
                .count()
        })
        .unwrap_or(0)
}

/// The T5-like system.
#[derive(Debug, Clone, Default)]
pub struct T5Sim {
    linker: Linker,
    memory: Vec<Memory>,
}

impl T5Sim {
    /// Create an untrained system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Token-level repair of retrieved SQL against the target schema.
    fn repair(&self, sql: &str, question: &str, db: &Database, _same_db: bool) -> String {
        let Ok(tokens) = Lexer::new(sql).tokenize() else {
            return sql.to_string();
        };
        let link = self.linker.link(question, db);
        let mut numbers = link.numbers.iter().copied();

        // First pass: identify alias identifiers (bound by AS, implicit
        // aliases after table names, or used as qualifiers before a dot).
        let mut aliases: Vec<String> = Vec::new();
        for (i, (tok, _)) in tokens.iter().enumerate() {
            if let Token::Ident(name) = tok {
                let prev_as = i > 0 && tokens[i - 1].0 == Token::Keyword(Keyword::As);
                let before_dot = tokens.get(i + 1).map(|(t, _)| t) == Some(&Token::Dot);
                if prev_as || (before_dot && db.schema.table(name).is_none()) {
                    aliases.push(name.to_ascii_lowercase());
                }
            }
        }

        let is_table_pos = |i: usize| -> bool {
            i > 0
                && matches!(
                    tokens[i - 1].0,
                    Token::Keyword(Keyword::From) | Token::Keyword(Keyword::Join)
                )
        };

        // Consistent substitution per distinct unknown identifier.
        let mut substitution: HashMap<String, String> = HashMap::new();
        let mut next_column = 0usize;
        let mut out: Vec<String> = Vec::with_capacity(tokens.len());
        for (i, (tok, _)) in tokens.iter().enumerate() {
            let rendered = match tok {
                Token::Ident(name) => {
                    let lower = name.to_ascii_lowercase();
                    let known_table = db.schema.table(name).is_some();
                    let known_column = db.schema.tables.iter().any(|t| t.column(name).is_some());
                    if aliases.contains(&lower) || known_table && is_table_pos(i) {
                        name.clone()
                    } else if is_table_pos(i) && !known_table {
                        // Unknown table: copy the linker's best table.
                        substitution
                            .entry(lower)
                            .or_insert_with(|| {
                                link.best_table()
                                    .map(str::to_string)
                                    .or_else(|| db.schema.tables.first().map(|t| t.name.clone()))
                                    .unwrap_or_else(|| name.clone())
                            })
                            .clone()
                    } else if known_column || known_table {
                        name.clone()
                    } else {
                        // Unknown column: cycle through linked columns.
                        substitution
                            .entry(lower)
                            .or_insert_with(|| {
                                let cols = &link.columns;
                                if cols.is_empty() {
                                    name.clone()
                                } else {
                                    let c = &cols[next_column % cols.len()];
                                    next_column += 1;
                                    c.column.clone()
                                }
                            })
                            .clone()
                    }
                }
                Token::Int(_) => {
                    // LIMIT counts come from the query shape, not the
                    // question's filter values — keep them.
                    let after_limit = i > 0 && tokens[i - 1].0 == Token::Keyword(Keyword::Limit);
                    if after_limit {
                        tok.to_string()
                    } else {
                        numbers
                            .next()
                            .map(|n| {
                                if n.fract() == 0.0 {
                                    format!("{n:.0}")
                                } else {
                                    n.to_string()
                                }
                            })
                            .unwrap_or_else(|| tok.to_string())
                    }
                }
                Token::Float(_) => numbers
                    .next()
                    .map(|n| format!("{n}"))
                    .unwrap_or_else(|| tok.to_string()),
                Token::Str(_) => {
                    // Attention copies values from the question: ground the
                    // literal to question content whenever linking found a
                    // value.
                    match link.values.first() {
                        Some((_, _, sb_sql::Literal::Str(v))) => {
                            format!("'{}'", v.replace('\'', "''"))
                        }
                        _ => tok.to_string(),
                    }
                }
                Token::Eof => continue,
                other => other.to_string(),
            };
            out.push(rendered);
        }
        let draft = join_sql_tokens(&out);
        self.attention_repair(&draft, question, db)
    }

    /// Post-repair pass modeling cross-attention: columns the question
    /// never mentions are re-pointed at mentioned linked columns of the
    /// same table. Applied only when the draft parses (unconstrained
    /// decoding keeps broken drafts broken).
    fn attention_repair(&self, draft: &str, question: &str, db: &Database) -> String {
        let Ok(mut query) = sb_sql::parse(draft) else {
            return draft.to_string();
        };
        let link = self.linker.link(question, db);
        let q_tokens = sb_embed::tokenize(question);

        // Resolve binding → table for this query.
        let mut bindings: HashMap<String, String> = HashMap::new();
        for s in query.selects() {
            for tr in s.table_refs() {
                if let sb_sql::TableFactor::Table(name) = &tr.factor {
                    if let Some(b) = tr.binding() {
                        bindings.insert(b.to_ascii_lowercase(), name.to_ascii_lowercase());
                    }
                }
            }
        }
        let resolve_table = |c: &sb_sql::ColumnRef| -> Option<String> {
            match &c.table {
                Some(q) => bindings.get(&q.to_ascii_lowercase()).cloned(),
                None => db
                    .schema
                    .tables
                    .iter()
                    .find(|t| t.column(&c.column).is_some())
                    .map(|t| t.name.to_ascii_lowercase()),
            }
        };

        let repoint = |c: &mut sb_sql::ColumnRef, numeric_needed: bool| {
            if column_mentioned(&q_tokens, &c.column) {
                return;
            }
            let Some(table) = resolve_table(c) else {
                return;
            };
            let Some(def) = db.schema.table(&table) else {
                return;
            };
            // Best mentioned linked column of the same table with a
            // compatible type.
            let replacement = link.columns_of(&table).into_iter().find(|lc| {
                column_mentioned(&q_tokens, &lc.column)
                    && def
                        .column(&lc.column)
                        .is_some_and(|cd| !numeric_needed || cd.ty.is_numeric())
            });
            if let Some(lc) = replacement {
                c.column = lc.column.clone();
            }
        };

        // Repoint projections and filter comparison columns.
        if let sb_sql::SetExpr::Select(s) = &mut query.body {
            for item in &mut s.projections {
                if let sb_sql::SelectItem::Expr { expr, .. } = item {
                    repoint_expr(expr, &repoint, false);
                }
            }
            if let Some(sel) = &mut s.selection {
                repoint_expr(sel, &repoint, false);
            }
        }
        query.to_string()
    }
}

/// Walk an expression, re-pointing bare column references. Comparison
/// contexts require numeric replacements.
fn repoint_expr(
    e: &mut sb_sql::Expr,
    repoint: &impl Fn(&mut sb_sql::ColumnRef, bool),
    numeric: bool,
) {
    use sb_sql::Expr;
    match e {
        Expr::Column(c) => repoint(c, numeric),
        Expr::Binary { left, op, right } => {
            let num = op.is_arithmetic()
                || matches!(
                    op,
                    sb_sql::BinaryOp::Lt
                        | sb_sql::BinaryOp::Gt
                        | sb_sql::BinaryOp::LtEq
                        | sb_sql::BinaryOp::GtEq
                );
            // Only re-point the column side of column-vs-literal shapes;
            // join conditions (column = column) are structural.
            match (&mut **left, &mut **right) {
                (Expr::Column(c), Expr::Literal(_)) => repoint(c, num),
                (Expr::Literal(_), Expr::Column(c)) => repoint(c, num),
                (l, r) => {
                    if matches!(op, sb_sql::BinaryOp::And | sb_sql::BinaryOp::Or) {
                        repoint_expr(l, repoint, numeric);
                        repoint_expr(r, repoint, numeric);
                    }
                }
            }
        }
        Expr::Agg {
            arg: sb_sql::AggArg::Expr(inner),
            ..
        } => repoint_expr(inner, repoint, false),
        Expr::Between { expr, .. } => repoint_expr(expr, repoint, true),
        Expr::Like { expr, .. } => repoint_expr(expr, repoint, false),
        Expr::InList { expr, .. } => repoint_expr(expr, repoint, false),
        _ => {}
    }
}

/// Join tokens with spaces, tightening `a . b` to `a.b` so qualified
/// references re-lex correctly.
fn join_sql_tokens(tokens: &[String]) -> String {
    let mut out = String::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens.get(i + 1).map(String::as_str) == Some(".") && i + 2 < tokens.len() {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&tokens[i]);
            out.push('.');
            out.push_str(&tokens[i + 2]);
            i += 3;
            continue;
        }
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(&tokens[i]);
        i += 1;
    }
    out
}

impl NlToSql for T5Sim {
    fn name(&self) -> &'static str {
        "T5-Large w/o PICARD"
    }

    fn train(&mut self, pairs: &[Pair], catalog: &DbCatalog) {
        for pair in pairs {
            if let Some(db) = catalog.get(&pair.db) {
                self.linker.learn(pair, db);
            }
            self.memory.push(Memory {
                embedding: retrieval_embed(&pair.nl),
                sql: pair.sql.clone(),
                db: pair.db.to_ascii_lowercase(),
                numeric_literals: count_numeric_literals(&pair.sql),
            });
        }
    }

    fn predict(&self, question: &str, db: &Database) -> String {
        let q = retrieval_embed(question);
        let db_name = db.schema.name.to_ascii_lowercase();
        // Nearest neighbour with a small in-domain bonus (fine-tuned
        // models are biased toward their domain-matching training modes).
        let link = self.linker.link(question, db);
        let n_numbers = link.numbers.len();
        let best = self
            .memory
            .iter()
            .map(|m| {
                let domain_bonus = if m.db == db_name { 0.08 } else { 0.0 };
                let arity_bonus = if m.numeric_literals == n_numbers {
                    0.05
                } else {
                    0.0
                };
                (q.cosine(&m.embedding) + domain_bonus + arity_bonus, m)
            })
            .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        match best {
            Some((_, m)) => self.repair(&m.sql, question, db, m.db == db_name),
            // An untrained seq2seq emits noise.
            None => "SELECT".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_engine::Value;
    use sb_schema::{Column, ColumnType, Schema, TableDef};

    fn sdss_db() -> Database {
        let schema = Schema::new("sdss").with_table(TableDef::new(
            "specobj",
            vec![
                Column::pk("specobjid", ColumnType::Int),
                Column::new("class", ColumnType::Text),
                Column::new("z", ColumnType::Float),
            ],
        ));
        let mut db = Database::new(schema);
        for i in 0..10i64 {
            db.table_mut("specobj").unwrap().push_rows(vec![vec![
                Value::Int(i),
                if i % 2 == 0 { "GALAXY" } else { "STAR" }.into(),
                Value::Float(i as f64 / 10.0),
            ]]);
        }
        db
    }

    #[test]
    fn in_domain_retrieval_reuses_sql_with_value_copy() {
        let db = sdss_db();
        let catalog = DbCatalog::new([&db]);
        let mut sys = T5Sim::new();
        sys.train(
            &[Pair::new(
                "Find spectroscopic objects whose class is STAR",
                "SELECT s.specobjid FROM specobj AS s WHERE s.class = 'STAR'",
                "sdss",
            )],
            &catalog,
        );
        let sql = sys.predict("Find spectroscopic objects whose class is STAR", &db);
        assert!(db.run(&sql).is_ok(), "{sql}");
        assert!(sql.contains("STAR"), "{sql}");
    }

    #[test]
    fn numeric_values_are_recopied_cross_domain() {
        let db = sdss_db();
        let other_schema = Schema::new("pets").with_table(TableDef::new(
            "pets",
            vec![
                Column::pk("id", ColumnType::Int),
                Column::new("age", ColumnType::Int),
            ],
        ));
        let other = Database::new(other_schema);
        let catalog = DbCatalog::new([&db, &other]);
        let mut sys = T5Sim::new();
        sys.train(
            &[Pair::new(
                "pets older than 3",
                "SELECT id FROM pets WHERE age > 3",
                "pets",
            )],
            &catalog,
        );
        // Cross-domain prediction repairs identifiers and copies numbers.
        let sql = sys.predict("objects with z above 0.7", &db);
        assert!(sql.contains("0.7"), "{sql}");
    }

    #[test]
    fn unconstrained_decoding_can_fail_to_execute() {
        // Train only on a foreign schema with several columns: repairs
        // against an unlinkable question should frequently break.
        let foreign = Database::new(Schema::new("movies").with_table(TableDef::new(
            "movies",
            vec![
                Column::pk("id", ColumnType::Int),
                Column::new("title", ColumnType::Text),
                Column::new("gross", ColumnType::Float),
                Column::new("budget", ColumnType::Float),
            ],
        )));
        let db = sdss_db();
        let catalog = DbCatalog::new([&foreign]);
        let mut sys = T5Sim::new();
        sys.train(
            &[Pair::new(
                "movies grossing over 100 with a big budget ordered by gross",
                "SELECT title FROM movies WHERE gross > 100 AND budget > 50 ORDER BY gross DESC",
                "movies",
            )],
            &catalog,
        );
        let sql = sys.predict("completely unrelated question", &db);
        // The output references repaired-or-unrepairable identifiers; the
        // important property is that *we return a string without
        // validating it* (unconstrained decoding).
        assert!(!sql.is_empty());
    }

    #[test]
    fn join_sql_tokens_rebuilds_qualified_names() {
        let toks: Vec<String> = ["SELECT", "s", ".", "z", "FROM", "specobj", "AS", "s"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(join_sql_tokens(&toks), "SELECT s.z FROM specobj AS s");
    }
}
