//! # sb-nl2sql — trainable NL-to-SQL systems
//!
//! Three from-scratch systems standing in for the paper's baselines
//! (Table 5). GPU training is unavailable, so each system is a *coverage-
//! driven learner*: its competence comes from retrieval indexes and
//! lexicons built from NL/SQL training pairs, which makes accuracy scale
//! with domain coverage exactly as in the paper — zero-shot transfer from
//! the Spider-like corpus to the scientific domains fails, seed pairs
//! help, synthetic pairs help more, and their combination helps most.
//!
//! - [`ValueNetSim`] — sketch retrieval over SemQL templates + grammar
//!   instantiation with **database-content value grounding** (ValueNet's
//!   hallmark per the paper), always emitting executable SQL.
//! - [`T5Sim`] — a translation-memory seq2seq surrogate: nearest training
//!   pair by question embedding + token-level copy-repair against the
//!   target schema. Unconstrained decoding, so it can emit invalid SQL —
//!   matching the paper's "T5-Large **w/o** PICARD".
//! - [`SmBopSim`] — bottom-up candidate construction over
//!   relational-algebra trees, scored by lexical alignment between the
//!   question and the canonical realization of each candidate
//!   (GraPPa-like schema-aware scoring).
//!
//! All three share the [`Linker`] front end: schema-name matching, a
//! *learned* token→column lexicon, and a value index over database
//! content.

pub mod linker;
pub mod smbop;
pub mod t5sim;
pub mod valuenet;

pub use linker::{LinkResult, Linker};
pub use smbop::SmBopSim;
pub use t5sim::T5Sim;
pub use valuenet::ValueNetSim;

use sb_engine::Database;
use std::collections::HashMap;

/// One NL/SQL training pair, tagged with the database it belongs to.
#[derive(Debug, Clone, PartialEq)]
pub struct Pair {
    /// The natural-language question.
    pub nl: String,
    /// The gold SQL query.
    pub sql: String,
    /// The database (schema) name the pair belongs to.
    pub db: String,
}

impl Pair {
    /// Construct a pair.
    pub fn new(nl: impl Into<String>, sql: impl Into<String>, db: impl Into<String>) -> Self {
        Pair {
            nl: nl.into(),
            sql: sql.into(),
            db: db.into(),
        }
    }
}

/// A catalog of databases available during training (the paper's systems
/// see the Spider databases plus the domain database).
pub struct DbCatalog<'a> {
    map: HashMap<String, &'a Database>,
}

impl<'a> DbCatalog<'a> {
    /// Build a catalog from databases, keyed by schema name.
    pub fn new(dbs: impl IntoIterator<Item = &'a Database>) -> Self {
        let mut map = HashMap::new();
        for db in dbs {
            map.insert(db.schema.name.to_ascii_lowercase(), db);
        }
        DbCatalog { map }
    }

    /// Look up a database by name.
    pub fn get(&self, name: &str) -> Option<&'a Database> {
        self.map.get(&name.to_ascii_lowercase()).copied()
    }
}

/// The common interface of the three systems. `Send + Sync` so a trained
/// system can serve predictions from parallel evaluation workers.
pub trait NlToSql: Send + Sync {
    /// The system's display name (as used in Table 5).
    fn name(&self) -> &'static str;

    /// Train (or continue training) on a set of pairs. The catalog
    /// provides the source databases for schema-aware indexing.
    fn train(&mut self, pairs: &[Pair], catalog: &DbCatalog);

    /// Predict SQL for a question against a target database. The returned
    /// string may be invalid SQL (systems differ in how constrained their
    /// decoding is); the evaluation counts anything that fails to execute
    /// as a miss.
    fn predict(&self, question: &str, db: &Database) -> String;
}

/// English stopwords ignored by linking and lexicon learning.
pub(crate) const STOPWORDS: [&str; 68] = [
    "the",
    "a",
    "an",
    "of",
    "in",
    "on",
    "for",
    "to",
    "is",
    "are",
    "was",
    "were",
    "and",
    "or",
    "with",
    "that",
    "which",
    "all",
    "find",
    "show",
    "list",
    "return",
    "give",
    "me",
    "what",
    "whose",
    "their",
    "there",
    "than",
    "as",
    "by",
    "at",
    "from",
    "how",
    "many",
    "much",
    "each",
    "every",
    "per",
    "retrieve",
    "records",
    "record",
    "where",
    // Aggregate / comparison / ordering scaffolding: these describe the
    // query shape, not the schema, and must not accumulate lexicon votes.
    "maximum",
    "minimum",
    "average",
    "total",
    "count",
    "number",
    "sum",
    "greater",
    "less",
    "least",
    "most",
    "smaller",
    "larger",
    "highest",
    "lowest",
    "equals",
    "exactly",
    "between",
    "above",
    "below",
    "related",
    "together",
    "ordered",
    "descending",
    "ascending",
];

/// Whether a token is a stopword.
pub(crate) fn is_stopword(token: &str) -> bool {
    STOPWORDS.contains(&token)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_schema::Schema;

    #[test]
    fn catalog_lookup_is_case_insensitive() {
        let db = Database::new(Schema::new("SDSS"));
        let cat = DbCatalog::new([&db]);
        assert!(cat.get("sdss").is_some());
        assert!(cat.get("cordis").is_none());
    }

    #[test]
    fn stopwords_cover_question_scaffolding() {
        for w in ["find", "the", "of", "how", "many"] {
            assert!(is_stopword(w));
        }
        assert!(!is_stopword("redshift"));
    }
}
