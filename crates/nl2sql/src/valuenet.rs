//! ValueNet-like system: sketch retrieval + grammar instantiation with
//! database-content value grounding.
//!
//! Training extracts a SemQL template ("sketch") from every pair and
//! indexes it under the embedding of the *delexicalized* question (schema
//! mentions → `col`, grounded values → `val`, numbers → `num`). At
//! prediction time the question is delexicalized against the target
//! schema, the nearest sketches are retrieved, and each is instantiated
//! through the schema linker — including looking up real values from the
//! database content, ValueNet's signature capability. Instantiation is
//! grammar-constrained, so (like the real ValueNet) the system essentially
//! always emits executable SQL; whether it is the *right* SQL depends on
//! how well linking worked.

use crate::linker::{column_mentioned, name_tokens, LinkResult, Linker};
use crate::{DbCatalog, NlToSql, Pair};
use sb_embed::{embed, Embedding};
use sb_engine::Database;
use sb_schema::ColumnType;
use sb_semql::{Assignment, Template, ValueKind};
use sb_sql::Literal;

/// A trained sketch: delexicalized-question embedding + template.
#[derive(Debug, Clone)]
struct Sketch {
    embedding: Embedding,
    template: Template,
}

/// The ValueNet-like system.
#[derive(Debug, Clone, Default)]
pub struct ValueNetSim {
    linker: Linker,
    sketches: Vec<Sketch>,
    /// Full-question memory per database (question embedding, SQL,
    /// db, template signature): when a question is a near-duplicate of
    /// training questions from the same database, the decoder reproduces
    /// the *consensus* memorized tree with re-grounded values. Consensus
    /// over the top-k neighbours is what makes noisy silver-standard
    /// training data effective — the distant-supervision argument of
    /// §4.2: individual synthetic pairs may be wrong, but correct pairs
    /// agree with each other and outvote the noise.
    memory: Vec<MemoryEntry>,
}

#[derive(Debug, Clone)]
struct MemoryEntry {
    embedding: sb_embed::Embedding,
    sql: String,
    db: String,
    skeleton: String,
}

impl ValueNetSim {
    /// Create an untrained system.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many retrieved sketches to try before falling back.
    const BEAM: usize = 12;

    /// Replace schema mentions, grounded values and numbers with
    /// placeholder tokens, so that sketches transfer across schemas.
    fn delexicalize(question: &str, link: &LinkResult, db: &Database) -> String {
        let mut out = Vec::new();
        let value_words: Vec<String> = link
            .values
            .iter()
            .flat_map(|(_, _, v)| match v {
                Literal::Str(s) => sb_embed::tokenize(s),
                _ => Vec::new(),
            })
            .collect();
        for tok in sb_embed::tokenize(question) {
            let is_number = tok.chars().all(|c| c.is_ascii_digit());
            if is_number {
                out.push("num".to_string());
                continue;
            }
            if value_words.contains(&tok) {
                out.push("val".to_string());
                continue;
            }
            let names_schema = db.schema.tables.iter().any(|t| {
                name_tokens(&t.name).contains(&tok)
                    || t.columns
                        .iter()
                        .any(|c| name_tokens(&c.name).contains(&tok))
            });
            let linked = link
                .columns
                .iter()
                .any(|c| name_tokens(&c.column).contains(&tok));
            if names_schema || linked {
                out.push("col".to_string());
            } else {
                out.push(tok);
            }
        }
        out.join(" ")
    }

    /// Instantiate a template against the link result. Returns the SQL
    /// plus a *fill score* measuring how much question evidence (linked
    /// columns, grounded values, question numbers) the fill consumed —
    /// higher is better. `rotation` rotates the linked-table preference so
    /// the caller can explore alternative table assignments. Returns
    /// `None` when a slot cannot be filled coherently.
    fn instantiate(
        &self,
        template: &Template,
        link: &LinkResult,
        q_tokens: &[String],
        db: &Database,
        rotation: usize,
    ) -> Option<(String, f64)> {
        let schema = &db.schema;
        let profile = self.linker.profile(db);
        let mut score = 0.0f64;

        // ---- tables ----
        let mut tables: Vec<Option<String>> = vec![None; template.table_count];
        let mut linked_tables: Vec<String> = link.tables.iter().map(|(t, _)| t.clone()).collect();
        // Tables hosting grounded values are strong candidates too.
        for (t, _, _) in &link.values {
            if !linked_tables.contains(t) {
                linked_tables.push(t.clone());
            }
        }
        if !linked_tables.is_empty() {
            let r = rotation % linked_tables.len();
            linked_tables.rotate_left(r);
        }
        let mut next_linked = 0usize;
        let mut take_table = |exclude: &[Option<String>]| -> Option<String> {
            while next_linked < linked_tables.len() {
                let cand = linked_tables[next_linked].clone();
                next_linked += 1;
                if !exclude
                    .iter()
                    .flatten()
                    .any(|t| t.eq_ignore_ascii_case(&cand))
                {
                    return Some(cand);
                }
            }
            schema
                .tables
                .iter()
                .map(|t| t.name.to_ascii_lowercase())
                .find(|t| !exclude.iter().flatten().any(|x| x == t))
        };
        // Table evidence strength, normalized so the strongest linked
        // table earns 2.0 and weakly-linked tables proportionally less —
        // a binary bonus would let marginal tables tie strong ones.
        let max_table_score = link
            .tables
            .iter()
            .map(|(_, s)| *s)
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let table_bonus = |t: &str| -> f64 {
            link.tables
                .iter()
                .find(|(name, _)| name.eq_ignore_ascii_case(t))
                .map(|(_, s)| 2.0 * s / max_table_score)
                .unwrap_or_else(|| {
                    if link
                        .values
                        .iter()
                        .any(|(vt, _, _)| vt.eq_ignore_ascii_case(t))
                    {
                        0.75
                    } else {
                        -0.75
                    }
                })
        };
        // Seed the first slot, then satisfy join edges along FKs.
        if template.table_count > 0 {
            tables[0] = take_table(&tables);
        }
        for edge in &template.joins {
            let (have, need) = if tables[edge.left_table].is_some() {
                (edge.left_table, edge.right_table)
            } else if tables[edge.right_table].is_some() {
                (edge.right_table, edge.left_table)
            } else {
                tables[edge.left_table] = take_table(&tables);
                (edge.left_table, edge.right_table)
            };
            if tables[need].is_some() {
                continue;
            }
            let from = tables[have].clone()?;
            let neighbors = schema.join_edges(&from);
            if neighbors.is_empty() {
                return None;
            }
            // Prefer the most strongly linked neighbor table.
            let chosen = neighbors
                .iter()
                .max_by(|(_, a, _), (_, b, _)| {
                    table_bonus(a)
                        .partial_cmp(&table_bonus(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(_, other, _)| other.to_ascii_lowercase())?;
            tables[need] = Some(chosen);
        }
        for slot in tables.iter_mut() {
            if slot.is_none() {
                *slot = take_table(&[]);
            }
        }
        let tables: Vec<String> = tables.into_iter().collect::<Option<Vec<_>>>()?;
        for t in &tables {
            score += table_bonus(t);
        }

        // ---- columns ----
        let mut columns: Vec<Option<String>> = vec![None; template.columns.len()];
        for edge in &template.joins {
            let lt = &tables[edge.left_table];
            let rt = &tables[edge.right_table];
            let (lcol, rcol) = schema
                .join_edges(lt)
                .into_iter()
                .find(|(_, other, _)| other.eq_ignore_ascii_case(rt))
                .map(|(lcol, _, rcol)| (lcol, rcol))?;
            columns[edge.left_col] = Some(lcol);
            columns[edge.right_col] = Some(rcol);
        }
        // Value-bound slots claim their evidence first (a grounded value
        // pins its column); projection/order slots pick from the rest.
        let mut slot_order: Vec<usize> = (0..template.columns.len()).collect();
        slot_order.sort_by_key(|&i| {
            let c = &template.columns[i].contexts;
            if c.equality || c.like {
                0
            } else if c.comparison {
                1
            } else {
                2
            }
        });
        for idx in slot_order {
            let slot = &template.columns[idx];
            if columns[idx].is_some() {
                continue;
            }
            let table = &tables[slot.table_slot];
            let def = schema.table(table)?;
            let type_ok = |c: &sb_schema::Column| -> bool {
                if slot.contexts.comparison || slot.contexts.math {
                    return c.ty.is_numeric();
                }
                if slot.contexts.like {
                    return c.ty == ColumnType::Text;
                }
                if slot.contexts.agg.is_some() && slot.contexts.agg != Some(sb_sql::AggFunc::Count)
                {
                    return c.ty.is_numeric();
                }
                true
            };
            // Prefer the column a grounded value lives in (for equality
            // slots), then linked columns, then any type-compatible one.
            let from_value = if slot.contexts.equality {
                link.values
                    .iter()
                    .find(|(t, c, _)| {
                        t.eq_ignore_ascii_case(table)
                            && def.column(c).is_some_and(&type_ok)
                            && !columns.iter().flatten().any(|used| used == c)
                    })
                    .map(|(_, c, _)| c.clone())
            } else {
                None
            };
            // Prefer an unused linked column, unless a used linked column
            // has a dominant link score (legitimate column reuse, e.g.
            // "the maximum price where price = v"). Columns whose name the
            // question actually mentions outrank lexicon-only links.
            let mut linked_cols = link.columns_of(table);
            linked_cols.sort_by(|a, b| {
                let ma = column_mentioned(q_tokens, &a.column);
                let mb = column_mentioned(q_tokens, &b.column);
                mb.cmp(&ma).then(
                    b.score
                        .partial_cmp(&a.score)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
            });
            let best_any = linked_cols
                .iter()
                .find(|lc| def.column(&lc.column).is_some_and(&type_ok));
            let best_unused = linked_cols.iter().find(|lc| {
                def.column(&lc.column).is_some_and(&type_ok)
                    && !columns.iter().flatten().any(|used| used == &lc.column)
            });
            let from_link = match (best_any, best_unused) {
                (Some(best), Some(unused)) if unused.score >= 0.5 * best.score => {
                    Some((unused.column.clone(), unused.score))
                }
                (Some(best), _) => Some((best.column.clone(), best.score)),
                (None, _) => None,
            };
            let choice = match from_value {
                Some(c) => {
                    score += 2.0;
                    c
                }
                None => match from_link {
                    Some((c, s)) => {
                        score += s.min(2.0);
                        c
                    }
                    None => {
                        score -= 1.0;
                        def.columns
                            .iter()
                            .find(|c| type_ok(c))
                            .map(|c| c.name.to_ascii_lowercase())?
                    }
                },
            };
            columns[idx] = Some(choice);
        }
        let columns: Vec<String> = columns.into_iter().collect::<Option<Vec<_>>>()?;

        // ---- values (content grounding) ----
        let mut numbers = link.numbers.iter().copied();
        let mut values = Vec::with_capacity(template.values.len());
        for vslot in &template.values {
            let lit = match (vslot.kind, vslot.column_slot) {
                (ValueKind::AggCmp, _) => {
                    Literal::Int(numbers.next().map(|n| n as i64).unwrap_or(1))
                }
                (kind, Some(ci)) => {
                    let table = &tables[template.columns[ci].table_slot];
                    let column = &columns[ci];
                    let col_ty = schema
                        .table(table)
                        .and_then(|t| t.column(column))
                        .map(|c| c.ty)?;
                    match kind {
                        ValueKind::Cmp => {
                            let from_question = numbers.next();
                            score += if from_question.is_some() { 1.5 } else { -0.75 };
                            let n = from_question
                                .or_else(|| profile.column(table, column).and_then(|p| p.min))?;
                            if col_ty == ColumnType::Int {
                                Literal::Int(n.round() as i64)
                            } else {
                                Literal::Float(n)
                            }
                        }
                        ValueKind::Like => {
                            let grounded = link
                                .values
                                .iter()
                                .find(|(t, c, _)| t == table && c == column)
                                .map(|(_, _, v)| v.clone());
                            match grounded {
                                Some(Literal::Str(s)) => Literal::Str(format!("%{s}%")),
                                _ => Literal::Str("%%".to_string()),
                            }
                        }
                        _ => {
                            // Equality: grounded value on this column, then
                            // any grounded value in the table, then a
                            // frequent content value, then a number.
                            let type_fits = |v: &Literal| {
                                matches!(
                                    (v, col_ty),
                                    (Literal::Str(_), ColumnType::Text)
                                        | (Literal::Int(_), ColumnType::Int | ColumnType::Float)
                                        | (Literal::Float(_), ColumnType::Float | ColumnType::Int)
                                )
                            };
                            let grounded = link
                                .values
                                .iter()
                                .find(|(t, c, v)| t == table && c == column && type_fits(v))
                                .or_else(|| {
                                    link.values
                                        .iter()
                                        .find(|(t, _, v)| t == table && type_fits(v))
                                })
                                .map(|(_, _, v)| v.clone());
                            match grounded {
                                Some(v) => {
                                    score += 2.0;
                                    v
                                }
                                None => match col_ty {
                                    ColumnType::Int => {
                                        let n = numbers.next();
                                        score += if n.is_some() { 1.5 } else { -0.75 };
                                        Literal::Int(n.map(|n| n as i64).unwrap_or(1))
                                    }
                                    ColumnType::Float => {
                                        let n = numbers.next();
                                        score += if n.is_some() { 1.5 } else { -0.75 };
                                        Literal::Float(n.unwrap_or(0.0))
                                    }
                                    _ => {
                                        score -= 0.75;
                                        let freq = profile
                                            .column(table, column)
                                            .and_then(|p| p.frequent_values.first().cloned())?;
                                        sb_gen_parse(&freq)?
                                    }
                                },
                            }
                        }
                    }
                }
                (ValueKind::Cmp, None) | (ValueKind::Eq, None) | (ValueKind::Like, None) => {
                    Literal::Int(numbers.next().map(|n| n as i64).unwrap_or(1))
                }
            };
            values.push(lit);
        }

        // Normalize the evidence by slot count so that template size does
        // not buy score: a 3-slot template fully grounded must beat a
        // 9-slot template two-thirds grounded.
        let slots =
            (template.table_count + template.columns.len() + template.values.len()).max(1) as f64;
        score /= slots;

        // Question numbers the fill never consumed signal a mismatched
        // template (absolute penalty).
        score -= 0.75 * numbers.count() as f64;

        // Degenerate fills: identical (column, value) conditions
        // (`name = 'x' AND name = 'x'`) or duplicated projections.
        let resolved = |ci: usize| (template.columns[ci].table_slot, columns[ci].clone());
        for (i, vi) in template.values.iter().enumerate() {
            for (j, vj) in template.values.iter().enumerate().skip(i + 1) {
                let same_col = match (vi.column_slot, vj.column_slot) {
                    (Some(a), Some(b)) => resolved(a) == resolved(b),
                    (a, b) => a == b,
                };
                if same_col && values[i] == values[j] {
                    score -= 2.0;
                }
            }
        }
        for i in 0..template.columns.len() {
            for j in (i + 1)..template.columns.len() {
                if template.columns[i].contexts.projection
                    && template.columns[j].contexts.projection
                    && resolved(i) == resolved(j)
                {
                    score -= 1.0;
                }
            }
        }

        let assignment = Assignment {
            tables,
            columns,
            values,
        };
        template
            .instantiate(&assignment)
            .ok()
            .map(|q| (q.to_string(), score))
    }
}

/// Re-ground the literals of a memorized SQL query in the current
/// question's evidence: numeric literals take the question's numbers in
/// order (LIMIT counts excluded), string literals take grounded values.
/// Returns `None` when the query does not parse.
fn reground_values(sql: &str, link: &LinkResult) -> Option<String> {
    use sb_sql::{Keyword, Lexer, Token};
    let tokens = Lexer::new(sql).tokenize().ok()?;
    let mut numbers = link.numbers.iter().copied();
    let mut strings = link
        .values
        .iter()
        .filter_map(|(_, _, v)| match v {
            Literal::Str(s) => Some(s.clone()),
            _ => None,
        })
        .collect::<Vec<_>>()
        .into_iter();
    let mut out: Vec<String> = Vec::with_capacity(tokens.len());
    for (i, (tok, _)) in tokens.iter().enumerate() {
        let after_limit = i > 0 && tokens[i - 1].0 == Token::Keyword(Keyword::Limit);
        let rendered = match tok {
            Token::Int(_) if !after_limit => numbers
                .next()
                .map(|n| {
                    if n.fract() == 0.0 {
                        format!("{n:.0}")
                    } else {
                        n.to_string()
                    }
                })
                .unwrap_or_else(|| tok.to_string()),
            Token::Float(_) => numbers
                .next()
                .map(|n| format!("{n}"))
                .unwrap_or_else(|| tok.to_string()),
            Token::Str(_) => strings
                .next()
                .map(|s| format!("'{}'", s.replace('\'', "''")))
                .unwrap_or_else(|| tok.to_string()),
            Token::Eof => continue,
            other => other.to_string(),
        };
        out.push(rendered);
    }
    let mut s = String::new();
    let mut i = 0;
    while i < out.len() {
        if out.get(i + 1).map(String::as_str) == Some(".") && i + 2 < out.len() {
            if !s.is_empty() {
                s.push(' ');
            }
            s.push_str(&out[i]);
            s.push('.');
            s.push_str(&out[i + 2]);
            i += 3;
            continue;
        }
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(&out[i]);
        i += 1;
    }
    Some(s)
}

/// Parse a SQL-literal string (local copy of `sb_gen::parse_literal` to
/// avoid a dependency cycle — `sb-gen` is a pipeline crate, not a system
/// crate).
fn sb_gen_parse(text: &str) -> Option<Literal> {
    let trimmed = text.trim();
    if let Some(inner) = trimmed
        .strip_prefix('\'')
        .and_then(|s| s.strip_suffix('\''))
    {
        return Some(Literal::Str(inner.replace("''", "'")));
    }
    if let Ok(v) = trimmed.parse::<i64>() {
        return Some(Literal::Int(v));
    }
    if let Ok(v) = trimmed.parse::<f64>() {
        return Some(Literal::Float(v));
    }
    None
}

impl ValueNetSim {
    /// Diagnostic: the scored candidate list for a question (sim, fill,
    /// sql, template source). Not part of the stable API.
    #[doc(hidden)]
    pub fn debug_candidates(
        &self,
        question: &str,
        db: &Database,
        top: usize,
    ) -> Vec<(f32, f64, String, String)> {
        let link = self.linker.link(question, db);
        let delex = Self::delexicalize(question, &link, db);
        let q_embed = embed(&delex);
        let mut ranked: Vec<(f32, usize)> = self
            .sketches
            .iter()
            .enumerate()
            .map(|(i, s)| (q_embed.cosine(&s.embedding), i))
            .collect();
        ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut out = Vec::new();
        let q_tokens = sb_embed::tokenize(question);
        for (sim, idx) in ranked.into_iter().take(top) {
            for rotation in 0..2 {
                if let Some((sql, fill)) =
                    self.instantiate(&self.sketches[idx].template, &link, &q_tokens, db, rotation)
                {
                    let ok = db.run(&sql).is_ok();
                    out.push((
                        sim,
                        if ok { fill } else { f64::NEG_INFINITY },
                        sql,
                        self.sketches[idx].template.source.clone(),
                    ));
                }
            }
        }
        out
    }
}

impl NlToSql for ValueNetSim {
    fn name(&self) -> &'static str {
        "ValueNet"
    }

    fn train(&mut self, pairs: &[Pair], catalog: &DbCatalog) {
        for pair in pairs {
            let Some(db) = catalog.get(&pair.db) else {
                continue;
            };
            self.linker.learn(pair, db);
            let Ok(query) = sb_sql::parse(&pair.sql) else {
                continue;
            };
            let Ok(template) = sb_semql::extract(&query, &db.schema) else {
                continue;
            };
            let link = self.linker.link(&pair.nl, db);
            let delex = Self::delexicalize(&pair.nl, &link, db);
            let skeleton = template.signature();
            self.sketches.push(Sketch {
                embedding: embed(&delex),
                template,
            });
            let normalized: String = pair
                .nl
                .chars()
                .map(|c| if c.is_ascii_digit() { '#' } else { c })
                .collect();
            self.memory.push(MemoryEntry {
                embedding: embed(&normalized),
                sql: pair.sql.clone(),
                db: pair.db.to_ascii_lowercase(),
                skeleton,
            });
        }
    }

    fn predict(&self, question: &str, db: &Database) -> String {
        let link = self.linker.link(question, db);

        // Near-duplicate memorization with top-k skeleton consensus:
        // individually noisy training pairs (silver standard) are
        // outvoted by the agreeing majority, the distant-supervision
        // behaviour the paper relies on (§4.2).
        let db_name = db.schema.name.to_ascii_lowercase();
        let normalized: String = question
            .chars()
            .map(|c| if c.is_ascii_digit() { '#' } else { c })
            .collect();
        let q_norm = embed(&normalized);
        let mut near: Vec<(f32, &MemoryEntry)> = self
            .memory
            .iter()
            .filter(|m| m.db == db_name)
            .map(|m| (q_norm.cosine(&m.embedding), m))
            .filter(|(sim, _)| *sim >= 0.90)
            .collect();
        near.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        near.truncate(7);
        if !near.is_empty() {
            // Vote by template skeleton, weighting by similarity.
            let mut votes: std::collections::HashMap<&str, f32> = std::collections::HashMap::new();
            for (sim, m) in &near {
                *votes.entry(m.skeleton.as_str()).or_insert(0.0) += sim;
            }
            let winner = votes
                .iter()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(k, _)| k.to_string());
            if let Some(skeleton) = winner {
                let best = near
                    .iter()
                    .find(|(_, m)| m.skeleton == skeleton)
                    .map(|(sim, m)| (*sim, m));
                if let Some((sim, m)) = best {
                    let arity_ok = sb_sql::parse(&m.sql)
                        .map(|q| {
                            let n = sb_sql::visitor::collect_literals(&q)
                                .iter()
                                .filter(|l| matches!(l, Literal::Int(_) | Literal::Float(_)))
                                .count();
                            n == link.numbers.len()
                        })
                        .unwrap_or(false);
                    // Strong consensus or near-exact single match.
                    let consensus =
                        votes[skeleton.as_str()] / near.iter().map(|(s, _)| s).sum::<f32>();
                    if arity_ok && (sim > 0.96 || (sim > 0.92 && consensus > 0.55)) {
                        if let Some(repaired) = reground_values(&m.sql, &link) {
                            if db.run(&repaired).is_ok() {
                                return repaired;
                            }
                        }
                    }
                }
            }
        }
        let delex = Self::delexicalize(question, &link, db);
        let q_embed = embed(&delex);

        // Rank sketches by similarity; delexicalization collapses distinct
        // columns to the same token, so break near-ties by how well the
        // template's slot count matches the linked evidence.
        let distinct_linked = link
            .columns
            .iter()
            .map(|c| (&c.table, &c.column))
            .collect::<std::collections::HashSet<_>>()
            .len();
        let mut ranked: Vec<(f32, usize)> = self
            .sketches
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let slot_gap =
                    (s.template.columns.len() as i64 - distinct_linked as i64).unsigned_abs();
                let score = q_embed.cosine(&s.embedding) - 0.015 * slot_gap as f32;
                (score, i)
            })
            .collect();
        ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

        // Candidate search: retrieval similarity gates hard — only
        // sketches within a hair of the best similarity compete (their
        // delexicalized text is equally consistent with the question);
        // the fill score then arbitrates among those near-ties.
        let top_sim = ranked.first().map(|(s, _)| *s).unwrap_or(0.0);
        let mut best: Option<(f64, String)> = None;
        let q_tokens = sb_embed::tokenize(question);
        for (sim, idx) in ranked
            .into_iter()
            .take_while(|(s, _)| *s >= top_sim - 0.03)
            .take(Self::BEAM)
        {
            let rotations = if self.sketches[idx].template.table_count > 1 {
                2
            } else {
                2.min(link.tables.len().max(1))
            };
            for rotation in 0..rotations {
                if let Some((sql, fill)) =
                    self.instantiate(&self.sketches[idx].template, &link, &q_tokens, db, rotation)
                {
                    // Grammar-constrained decoding: only executable SQL
                    // survives the beam.
                    if db.run(&sql).is_err() {
                        continue;
                    }
                    let combined = sim as f64 * 3.0 + fill * 1.0;
                    if best.as_ref().is_none_or(|(b, _)| combined > *b) {
                        best = Some((combined, sql));
                    }
                }
            }
        }
        if let Some((_, sql)) = best {
            return sql;
        }
        // Fallback: the most plausible table dump.
        let table = link
            .best_table()
            .map(str::to_string)
            .or_else(|| db.schema.tables.first().map(|t| t.name.clone()))
            .unwrap_or_else(|| "unknown".into());
        format!("SELECT * FROM {table}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_engine::Value;
    use sb_schema::{Column, Schema, TableDef};

    fn db() -> Database {
        let schema = Schema::new("sdss").with_table(TableDef::new(
            "specobj",
            vec![
                Column::pk("specobjid", ColumnType::Int),
                Column::new("class", ColumnType::Text),
                Column::new("z", ColumnType::Float),
            ],
        ));
        let mut db = Database::new(schema);
        for i in 0..20i64 {
            db.table_mut("specobj").unwrap().push_rows(vec![vec![
                Value::Int(i),
                if i % 2 == 0 { "GALAXY" } else { "STAR" }.into(),
                Value::Float(i as f64 / 10.0),
            ]]);
        }
        db
    }

    #[test]
    fn trained_system_answers_in_domain_questions() {
        let db = db();
        let catalog = DbCatalog::new([&db]);
        let mut sys = ValueNetSim::new();
        sys.train(
            &[
                Pair::new(
                    "Find the spectroscopic objects whose class is STAR",
                    "SELECT s.specobjid FROM specobj AS s WHERE s.class = 'STAR'",
                    "sdss",
                ),
                Pair::new(
                    "Find objects with redshift greater than 0.5",
                    "SELECT s.specobjid FROM specobj AS s WHERE s.z > 0.5",
                    "sdss",
                ),
            ],
            &catalog,
        );
        let sql = sys.predict("Find the spectroscopic objects whose class is GALAXY", &db);
        let rs = db.run(&sql).expect("prediction executes");
        assert!(sql.contains("GALAXY"), "value grounding should fire: {sql}");
        assert_eq!(rs.len(), 10, "{sql}");
    }

    #[test]
    fn numeric_comparison_uses_question_number() {
        let db = db();
        let catalog = DbCatalog::new([&db]);
        let mut sys = ValueNetSim::new();
        sys.train(
            &[Pair::new(
                "Find objects with redshift greater than 0.5",
                "SELECT s.specobjid FROM specobj AS s WHERE s.z > 0.5",
                "sdss",
            )],
            &catalog,
        );
        let sql = sys.predict("Find objects with redshift greater than 1.2", &db);
        assert!(sql.contains("1.2"), "{sql}");
    }

    #[test]
    fn untrained_system_falls_back_but_stays_executable() {
        let db = db();
        let sys = ValueNetSim::new();
        let sql = sys.predict("anything at all", &db);
        assert!(db.run(&sql).is_ok(), "{sql}");
    }

    #[test]
    fn delexicalization_abstracts_values_and_numbers() {
        let db = db();
        let sys = ValueNetSim::new();
        let link = sys.linker.link("find GALAXY objects with z above 7", &db);
        let d = ValueNetSim::delexicalize("find GALAXY objects with z above 7", &link, &db);
        assert!(d.contains("val"), "{d}");
        assert!(d.contains("num"), "{d}");
        assert!(d.contains("col"), "z is a schema column: {d}");
    }
}
