//! SmBoP-like system: bottom-up candidate construction with schema-aware
//! alignment scoring.
//!
//! SmBoP builds query trees bottom-up, keeping a beam of sub-trees ranked
//! by a learned scorer. This surrogate enumerates a bounded space of
//! relational-algebra trees over the linked schema elements (projections,
//! filters, aggregates, group-bys, superlatives, single FK joins) and
//! scores every candidate by the embedding similarity between the
//! question and the candidate's canonical English realization — the
//! GraPPa-style "does this SQL talk about what the question talks about"
//! signal. Training improves the realization vocabulary (learned aliases)
//! and the linker; the enumeration depth is fixed, so queries beyond the
//! grammar (deep nesting, multi-joins beyond two hops) are simply
//! unreachable — mirroring the ceiling real bottom-up decoders hit on the
//! extra-hard class.

use crate::linker::{column_mentioned, LinkResult, Linker};
use crate::{DbCatalog, NlToSql, Pair};
use sb_embed::embed;
use sb_engine::Database;
use sb_nl::{Realizer, Style};
use sb_schema::{ColumnType, EnhancedSchema};
use sb_sql::{
    AggArg, AggFunc, BinaryOp, Expr, Join, Literal, OrderItem, Query, Select, SelectItem, TableRef,
};

/// The SmBoP-like system.
#[derive(Debug, Clone, Default)]
pub struct SmBopSim {
    linker: Linker,
}

/// Cap on enumerated candidates per prediction; the beam the scorer
/// ranks.
const MAX_CANDIDATES: usize = 600;

impl SmBopSim {
    /// Create an untrained system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enumerate candidate queries bottom-up from the link result.
    fn enumerate(&self, link: &LinkResult, db: &Database, question: &str) -> Vec<Query> {
        let schema = &db.schema;
        let mut out: Vec<Query> = Vec::new();
        let q_lower = question.to_lowercase();
        let wants_count = ["how many", "number of", "count"]
            .iter()
            .any(|w| q_lower.contains(w));
        // "maximum/minimum" phrase → aggregate; "highest/lowest" phrase →
        // superlative (ORDER BY + LIMIT). The canonical realizations keep
        // these disjoint.
        let agg_wanted: Vec<AggFunc> = [
            (AggFunc::Avg, vec!["average", "mean"]),
            (AggFunc::Sum, vec!["total", "sum"]),
            (AggFunc::Min, vec!["minimum"]),
            (AggFunc::Max, vec!["maximum"]),
        ]
        .into_iter()
        .filter(|(_, words)| words.iter().any(|w| q_lower.contains(w)))
        .map(|(f, _)| f)
        .collect();
        let superlative_desc = ["highest", "most", "largest", "top", "maximum"]
            .iter()
            .any(|w| q_lower.contains(w));
        let superlative_asc = ["lowest", "least", "smallest", "fewest", "minimum"]
            .iter()
            .any(|w| q_lower.contains(w));
        let grouped = ["each", "every", "per "]
            .iter()
            .any(|w| q_lower.contains(w));

        // Tables to consider: linked ones, value-hosting ones, else the
        // first schema table.
        let mut tables: Vec<String> = link.tables.iter().map(|(t, _)| t.clone()).collect();
        for (t, _, _) in &link.values {
            if !tables.contains(t) {
                tables.push(t.clone());
            }
        }
        if tables.is_empty() {
            if let Some(t) = schema.tables.first() {
                tables.push(t.name.to_ascii_lowercase());
            }
        }
        tables.truncate(3);

        for table in &tables {
            let Some(def) = schema.table(table) else {
                continue;
            };
            // Candidate projection columns: linked first, then pk/name.
            let mut proj_cols: Vec<String> = link
                .columns_of(table)
                .into_iter()
                .map(|c| c.column.clone())
                .take(3)
                .collect();
            if let Some(pk) = def.primary_key() {
                if !proj_cols.contains(&pk.name.to_ascii_lowercase()) {
                    proj_cols.push(pk.name.to_ascii_lowercase());
                }
            }
            if let Some(name_col) = def.column("name") {
                let n = name_col.name.to_ascii_lowercase();
                if !proj_cols.contains(&n) {
                    proj_cols.push(n);
                }
            }
            let numeric_cols: Vec<String> = link
                .columns_of(table)
                .into_iter()
                .filter(|c| def.column(&c.column).is_some_and(|cd| cd.ty.is_numeric()))
                .map(|c| c.column.clone())
                .take(2)
                .collect();

            // Candidate filters over this table.
            let mut filters: Vec<Option<Expr>> = vec![None];
            for (t, c, v) in &link.values {
                if t == table {
                    filters.push(Some(Expr::binary(
                        Expr::col(None, c),
                        BinaryOp::Eq,
                        Expr::Literal(v.clone()),
                    )));
                }
            }
            for &n in &link.numbers {
                for c in &numeric_cols {
                    let ty = def.column(c).map(|cd| cd.ty);
                    let lit = if ty == Some(ColumnType::Int) && n.fract() == 0.0 {
                        Literal::Int(n as i64)
                    } else {
                        Literal::Float(n)
                    };
                    for op in [BinaryOp::Gt, BinaryOp::Lt, BinaryOp::Eq] {
                        filters.push(Some(Expr::binary(
                            Expr::col(None, c),
                            op,
                            Expr::Literal(lit.clone()),
                        )));
                    }
                }
            }
            // Pairwise conjunctions/disjunctions of atomic filters with
            // distinct literals (disjunction only when the question says
            // "or").
            let atomic: Vec<Expr> = filters.iter().flatten().cloned().collect();
            let wants_or = q_lower.contains(" or ");
            let mut combos = 0;
            'combo: for i in 0..atomic.len() {
                for j in (i + 1)..atomic.len() {
                    if combos >= 24 {
                        break 'combo;
                    }
                    if filter_literal(&atomic[i]) == filter_literal(&atomic[j]) {
                        continue;
                    }
                    filters.push(Some(Expr::binary(
                        atomic[i].clone(),
                        BinaryOp::And,
                        atomic[j].clone(),
                    )));
                    combos += 1;
                    if wants_or {
                        filters.push(Some(Expr::binary(
                            atomic[i].clone(),
                            BinaryOp::Or,
                            atomic[j].clone(),
                        )));
                        combos += 1;
                    }
                }
            }

            for filter in &filters {
                // Plain projections: single columns and the top pair.
                for col in &proj_cols {
                    out.push(plain_query(
                        table,
                        std::slice::from_ref(col),
                        filter.clone(),
                    ));
                    if out.len() >= MAX_CANDIDATES {
                        return out;
                    }
                }
                if proj_cols.len() >= 2 {
                    out.push(plain_query(
                        table,
                        &[proj_cols[0].clone(), proj_cols[1].clone()],
                        filter.clone(),
                    ));
                }
                // COUNT(*).
                if wants_count || filter.is_some() {
                    out.push(agg_query(table, AggFunc::Count, None, filter.clone()));
                }
                // Aggregates over numeric columns.
                for f in &agg_wanted {
                    for c in &numeric_cols {
                        out.push(agg_query(table, *f, Some(c.clone()), filter.clone()));
                    }
                }
                // GROUP BY over linked text columns.
                if grouped {
                    for c in link.columns_of(table) {
                        if def
                            .column(&c.column)
                            .is_some_and(|cd| cd.ty == ColumnType::Text)
                        {
                            out.push(group_query(table, &c.column, filter.clone()));
                        }
                    }
                }
                // Superlatives.
                if superlative_desc || superlative_asc {
                    for key in &numeric_cols {
                        for proj in proj_cols.iter().take(2) {
                            let n = link
                                .numbers
                                .iter()
                                .find(|n| n.fract() == 0.0 && **n >= 1.0 && **n <= 100.0)
                                .map(|n| *n as u64)
                                .unwrap_or(1);
                            out.push(superlative_query(
                                table,
                                proj,
                                key,
                                superlative_desc,
                                n,
                                filter.clone(),
                            ));
                        }
                    }
                }
                if out.len() >= MAX_CANDIDATES {
                    return out;
                }
            }

            // One-hop FK joins to another linked table. Filters and
            // projections are qualified (T1 = this table, T2 = the other),
            // and both tables contribute candidates for each.
            for other in &tables {
                if other == table {
                    continue;
                }
                let edge = schema
                    .join_edges(table)
                    .into_iter()
                    .find(|(_, o, _)| o.eq_ignore_ascii_case(other));
                let Some((lcol, _, rcol)) = edge else {
                    continue;
                };
                // Projections from either side.
                let mut projections: Vec<(&str, String)> = proj_cols
                    .iter()
                    .take(2)
                    .map(|c| ("T1", c.clone()))
                    .collect();
                for c in link.columns_of(other).into_iter().take(2) {
                    projections.push(("T2", c.column.clone()));
                }
                // Qualified filters from either side.
                let mut jfilters: Vec<Option<Expr>> = vec![None];
                for (t, c, v) in &link.values {
                    let qualifier = if t == table {
                        Some("T1")
                    } else if t.eq_ignore_ascii_case(other) {
                        Some("T2")
                    } else {
                        None
                    };
                    if let Some(q) = qualifier {
                        jfilters.push(Some(Expr::binary(
                            Expr::col(Some(q), c),
                            BinaryOp::Eq,
                            Expr::Literal(v.clone()),
                        )));
                    }
                }
                for &n in &link.numbers {
                    for (qual, side) in [("T1", table.as_str()), ("T2", other.as_str())] {
                        let Some(side_def) = schema.table(side) else {
                            continue;
                        };
                        for c in link.columns_of(side).into_iter().take(2) {
                            let Some(cd) = side_def.column(&c.column) else {
                                continue;
                            };
                            if !cd.ty.is_numeric() {
                                continue;
                            }
                            let lit = if cd.ty == ColumnType::Int && n.fract() == 0.0 {
                                Literal::Int(n as i64)
                            } else {
                                Literal::Float(n)
                            };
                            for op in [BinaryOp::Eq, BinaryOp::Gt, BinaryOp::Lt] {
                                jfilters.push(Some(Expr::binary(
                                    Expr::col(Some(qual), &c.column),
                                    op,
                                    Expr::Literal(lit.clone()),
                                )));
                            }
                        }
                    }
                }
                for (qual, proj) in &projections {
                    for filter in jfilters.iter().take(10) {
                        out.push(join_query_qualified(
                            table,
                            other,
                            &lcol,
                            &rcol,
                            qual,
                            proj,
                            filter.clone(),
                        ));
                        if out.len() >= MAX_CANDIDATES {
                            return out;
                        }
                    }
                }
            }
        }
        out
    }
}

/// Shape cues read off the question: what kind of tree the scorer should
/// reward.
struct QuestionCues {
    count: bool,
    aggs: Vec<AggFunc>,
    superlative: bool,
    grouped: bool,
    join: bool,
    disjunction: bool,
    n_numbers: usize,
    greater_words: usize,
    less_words: usize,
}

impl QuestionCues {
    fn of(question: &str) -> QuestionCues {
        let q = question.to_lowercase();
        let aggs = [
            (AggFunc::Avg, vec!["average", "mean"]),
            (AggFunc::Sum, vec!["total", "sum"]),
            (AggFunc::Min, vec!["minimum"]),
            (AggFunc::Max, vec!["maximum"]),
        ]
        .into_iter()
        .filter(|(_, w)| w.iter().any(|x| q.contains(x)))
        .map(|(f, _)| f)
        .collect();
        QuestionCues {
            count: ["how many", "number of", "count"]
                .iter()
                .any(|w| q.contains(w)),
            aggs,
            superlative: [
                "highest", "most", "largest", "top", "lowest", "least", "smallest", "fewest",
            ]
            .iter()
            .any(|w| q.contains(w)),
            grouped: ["each", "every", "per "].iter().any(|w| q.contains(w)),
            join: ["together with", "related", "their matching"]
                .iter()
                .any(|w| q.contains(w)),
            disjunction: q.contains(" or "),
            n_numbers: crate::linker::extract_numbers(question).len(),
            greater_words: [
                "greater",
                "above",
                "more than",
                "exceeds",
                "at least",
                "over",
            ]
            .iter()
            .filter(|w| q.contains(*w))
            .count(),
            less_words: ["less", "below", "under", "at most", "smaller than", "fewer"]
                .iter()
                .filter(|w| q.contains(*w))
                .count(),
        }
    }
}

/// First token index at which a column is mentioned, or `None`.
fn mention_pos(q_tokens: &[String], column: &str) -> Option<usize> {
    let parts = crate::linker::name_tokens(column);
    let first = parts.first()?;
    q_tokens
        .iter()
        .position(|t| t == first || crate::linker::singular_eq_pub(t, first))
}

/// The hand-built analogue of a learned tree scorer: rewards candidates
/// whose shape and column mentions align with the question's cues and
/// evidence.
fn score_features(c: &Query, q_tokens: &[String], cues: &QuestionCues, link: &LinkResult) -> f64 {
    let mut score = 0.0;
    let mut has_count = false;
    let mut has_group = false;
    let mut has_join = false;
    let mut has_or = false;
    let mut n_literals = 0usize;
    let mut n_gt = 0usize;
    let mut n_lt = 0usize;
    // Earliest-mentioned linked column: our questions (like most NL
    // questions) name the projection first.
    let earliest = link
        .columns
        .iter()
        .filter_map(|lc| mention_pos(q_tokens, &lc.column).map(|p| (p, lc.column.clone())))
        .min();
    for s in c.selects() {
        has_group |= !s.group_by.is_empty();
        has_join |= !s.joins.is_empty();
        // Columns used in filters; questions rarely project the column
        // they filter on (they already know its value).
        let mut filter_cols: Vec<&str> = Vec::new();
        if let Some(sel) = &s.selection {
            collect_cols(sel, &mut filter_cols);
            has_or |= format!("{sel}").contains(" OR ");
        }
        for item in &s.projections {
            let SelectItem::Expr { expr, .. } = item else {
                continue;
            };
            if let Expr::Column(col) = expr {
                if filter_cols.contains(&col.column.as_str()) {
                    score -= 0.1;
                }
                if let Some((_, first_col)) = &earliest {
                    score += if col.column.eq_ignore_ascii_case(first_col) {
                        0.2
                    } else {
                        -0.1
                    };
                }
            }
            match expr {
                Expr::Agg { func, arg, .. } => {
                    if *func == AggFunc::Count {
                        has_count = true;
                        score += if cues.count { 0.3 } else { -0.25 };
                    } else {
                        score += if cues.aggs.contains(func) { 0.35 } else { -0.3 };
                        if let AggArg::Expr(inner) = arg {
                            score += mention_bonus(inner, q_tokens, 0.18);
                        }
                    }
                }
                other => {
                    score += mention_bonus(other, q_tokens, 0.18);
                    if cues.count && !has_group {
                        score -= 0.15;
                    }
                    for f in &cues.aggs {
                        let _ = f;
                        score -= 0.15;
                    }
                }
            }
        }
        if let Some(sel) = &s.selection {
            for conj in sel.conjuncts() {
                score += mention_bonus(conj, q_tokens, 0.10);
                count_ops(conj, &mut n_gt, &mut n_lt);
                score += pairing_bonus(conj, q_tokens, link);
            }
            n_literals += sb_sql::visitor::collect_literals(c)
                .iter()
                .filter(|l| !matches!(l, Literal::Null))
                .count();
        }
    }
    // Comparison directions must be licensed by the question's wording.
    score -= 0.18 * (n_gt as f64 - cues.greater_words as f64).abs();
    score -= 0.18 * (n_lt as f64 - cues.less_words as f64).abs();
    // Grouping / superlative shape alignment.
    score += match (cues.grouped, has_group) {
        (true, true) => 0.3,
        (true, false) => -0.2,
        (false, true) => -0.25,
        _ => 0.0,
    };
    let has_limit = c.limit.is_some();
    score += match (cues.superlative, has_limit) {
        (true, true) => 0.25,
        (true, false) => -0.2,
        (false, true) => -0.25,
        _ => 0.0,
    };
    let _ = has_count;
    score += match (cues.join, has_join) {
        (true, true) => 0.3,
        (true, false) => -0.25,
        (false, true) => -0.3,
        _ => 0.0,
    };
    score += match (cues.disjunction, has_or) {
        (true, true) => 0.3,
        (true, false) => -0.2,
        (false, true) => -0.3,
        _ => 0.0,
    };
    // Evidence consumption: filters should use the question's numbers and
    // grounded values, no more, no fewer.
    let expected = cues.n_numbers + link.values.len().min(1);
    score -= 0.12 * (n_literals as f64 - expected as f64).abs();
    score
}

/// Count strict greater / less comparisons in a predicate.
fn count_ops(e: &Expr, gt: &mut usize, lt: &mut usize) {
    if let Expr::Binary { op, left, right } = e {
        match op {
            BinaryOp::Gt | BinaryOp::GtEq => *gt += 1,
            BinaryOp::Lt | BinaryOp::LtEq => *lt += 1,
            _ => {}
        }
        if matches!(op, BinaryOp::And | BinaryOp::Or) {
            count_ops(left, gt, lt);
            count_ops(right, gt, lt);
        }
    }
}

/// Bonus when a numeric filter pairs each question number with the column
/// mentioned immediately before it ("the stadium id equals 18" → the 18
/// belongs to stadium_id).
fn pairing_bonus(e: &Expr, q_tokens: &[String], link: &LinkResult) -> f64 {
    let mut bonus = 0.0;
    match e {
        Expr::Binary { left, op, right } if op.is_comparison() => {
            if let (Expr::Column(col), Expr::Literal(lit)) = (left.as_ref(), right.as_ref()) {
                let n = match lit {
                    Literal::Int(v) => Some(*v as f64),
                    Literal::Float(v) => Some(*v),
                    _ => None,
                };
                if let Some(n) = n {
                    // Token index of this number.
                    let num_pos = q_tokens.iter().position(|t| {
                        t.parse::<f64>()
                            .map(|x| (x - n).abs() < 1e-9)
                            .unwrap_or(false)
                            || t.parse::<f64>()
                                .map(|x| (x - n.trunc()).abs() < 1e-9)
                                .unwrap_or(false)
                    });
                    if let Some(np) = num_pos {
                        // Nearest mentioned linked column before the number.
                        let nearest = link
                            .columns
                            .iter()
                            .filter_map(|lc| {
                                mention_pos(q_tokens, &lc.column)
                                    .filter(|p| *p < np)
                                    .map(|p| (p, lc.column.clone()))
                            })
                            .max_by_key(|(p, _)| *p);
                        if let Some((_, nearest_col)) = nearest {
                            bonus += if nearest_col.eq_ignore_ascii_case(&col.column) {
                                0.15
                            } else {
                                -0.1
                            };
                        }
                    }
                }
            }
        }
        Expr::Binary {
            left,
            op: BinaryOp::And | BinaryOp::Or,
            right,
        } => {
            bonus += pairing_bonus(left, q_tokens, link);
            bonus += pairing_bonus(right, q_tokens, link);
        }
        _ => {}
    }
    bonus
}

/// The literal of an atomic comparison filter, for deduplication.
fn filter_literal(e: &Expr) -> Option<&Literal> {
    match e {
        Expr::Binary { right, .. } => match right.as_ref() {
            Expr::Literal(l) => Some(l),
            _ => None,
        },
        _ => None,
    }
}

/// Mention bonus for every column inside `e`.
fn mention_bonus(e: &Expr, q_tokens: &[String], w: f64) -> f64 {
    let mut cols: Vec<&str> = Vec::new();
    collect_cols(e, &mut cols);
    let mut bonus = 0.0;
    for c in cols {
        if column_mentioned(q_tokens, c) {
            bonus += w;
        } else {
            bonus -= w / 2.0;
        }
    }
    bonus
}

fn collect_cols<'a>(e: &'a Expr, out: &mut Vec<&'a str>) {
    match e {
        Expr::Column(c) => out.push(&c.column),
        Expr::Binary { left, right, .. } => {
            collect_cols(left, out);
            collect_cols(right, out);
        }
        Expr::Agg {
            arg: AggArg::Expr(inner),
            ..
        } => collect_cols(inner, out),
        Expr::Between { expr, .. }
        | Expr::Like { expr, .. }
        | Expr::InList { expr, .. }
        | Expr::Unary { expr, .. } => collect_cols(expr, out),
        _ => {}
    }
}

fn base_select(table: &str) -> Select {
    Select {
        distinct: false,
        projections: Vec::new(),
        from: TableRef::named(table),
        joins: Vec::new(),
        selection: None,
        group_by: Vec::new(),
        having: None,
    }
}

fn plain_query(table: &str, cols: &[String], filter: Option<Expr>) -> Query {
    let mut s = base_select(table);
    s.projections = cols
        .iter()
        .map(|c| SelectItem::expr(Expr::col(None, c)))
        .collect();
    s.selection = filter;
    Query::from_select(s)
}

fn agg_query(table: &str, func: AggFunc, col: Option<String>, filter: Option<Expr>) -> Query {
    let mut s = base_select(table);
    let arg = match col {
        Some(c) => AggArg::Expr(Box::new(Expr::col(None, &c))),
        None => AggArg::Star,
    };
    s.projections = vec![SelectItem::expr(Expr::Agg {
        func,
        distinct: false,
        arg,
    })];
    s.selection = filter;
    Query::from_select(s)
}

fn group_query(table: &str, key: &str, filter: Option<Expr>) -> Query {
    let mut s = base_select(table);
    s.projections = vec![
        SelectItem::expr(Expr::col(None, key)),
        SelectItem::expr(Expr::Agg {
            func: AggFunc::Count,
            distinct: false,
            arg: AggArg::Star,
        }),
    ];
    s.selection = filter;
    s.group_by = vec![Expr::col(None, key)];
    Query::from_select(s)
}

fn superlative_query(
    table: &str,
    proj: &str,
    key: &str,
    desc: bool,
    limit: u64,
    filter: Option<Expr>,
) -> Query {
    let mut q = plain_query(table, &[proj.to_string()], filter);
    q.order_by = vec![OrderItem {
        expr: Expr::col(None, key),
        desc,
    }];
    q.limit = Some(limit);
    q
}

fn join_query_qualified(
    left: &str,
    right: &str,
    lcol: &str,
    rcol: &str,
    proj_qualifier: &str,
    proj: &str,
    filter: Option<Expr>,
) -> Query {
    let mut s = base_select(left);
    s.from = TableRef::aliased(left, "T1");
    s.projections = vec![SelectItem::expr(Expr::col(Some(proj_qualifier), proj))];
    s.joins = vec![Join {
        table: TableRef::aliased(right, "T2"),
        constraint: Some(Expr::binary(
            Expr::col(Some("T1"), lcol),
            BinaryOp::Eq,
            Expr::col(Some("T2"), rcol),
        )),
        left: false,
    }];
    s.selection = filter;
    Query::from_select(s)
}

impl NlToSql for SmBopSim {
    fn name(&self) -> &'static str {
        "SmBoP+GraPPa"
    }

    fn train(&mut self, pairs: &[Pair], catalog: &DbCatalog) {
        for pair in pairs {
            if let Some(db) = catalog.get(&pair.db) {
                self.linker.learn(pair, db);
            }
        }
    }

    fn predict(&self, question: &str, db: &Database) -> String {
        let link = self.linker.link(question, db);
        let candidates = self.enumerate(&link, db, question);
        if candidates.is_empty() {
            return format!(
                "SELECT * FROM {}",
                db.schema
                    .tables
                    .first()
                    .map(|t| t.name.clone())
                    .unwrap_or_else(|| "unknown".into())
            );
        }
        // Realization-based scoring with learned domain vocabulary.
        let mut enhanced = EnhancedSchema::new(db.schema.clone());
        for (table, column, token) in self.linker.learned_aliases(&db.schema.name) {
            enhanced.set_column_alias(&table, &column, &token);
        }
        let realizer = Realizer::new(&enhanced);
        let q_embed = embed(question);
        let q_tokens = sb_embed::tokenize(question);
        let cues = QuestionCues::of(question);
        let best = candidates
            .into_iter()
            .map(|c| {
                // Skip candidates that do not execute (bottom-up
                // construction is schema-typed, so this is rare).
                let exec_ok = db.run_query(&c).is_ok();
                let text = realizer.realize(&c, Style::reference());
                let mut score = 0.5 * q_embed.cosine(&embed(&text)) as f64;
                if !exec_ok {
                    score -= 10.0;
                }
                score += score_features(&c, &q_tokens, &cues, &link);
                (score, c)
            })
            .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        match best {
            Some((_, q)) => q.to_string(),
            None => "SELECT 1".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_engine::Value;
    use sb_schema::{Column, Schema, TableDef};

    fn pets_db() -> Database {
        let schema = Schema::new("pets").with_table(TableDef::new(
            "pets",
            vec![
                Column::pk("id", ColumnType::Int),
                Column::new("name", ColumnType::Text),
                Column::new("pet_type", ColumnType::Text),
                Column::new("weight", ColumnType::Float),
            ],
        ));
        let mut db = Database::new(schema);
        for i in 0..12i64 {
            db.table_mut("pets").unwrap().push_rows(vec![vec![
                Value::Int(i),
                format!("pet {i}").into(),
                if i % 3 == 0 { "dog" } else { "cat" }.into(),
                Value::Float(2.0 + i as f64),
            ]]);
        }
        db
    }

    #[test]
    fn answers_count_question_zero_shot_on_plain_schema() {
        let db = pets_db();
        let sys = SmBopSim::new();
        let sql = sys.predict("How many pets have a weight greater than 5?", &db);
        let rs = db.run(&sql).expect("prediction executes");
        assert!(sql.to_uppercase().contains("COUNT"), "{sql}");
        assert_eq!(rs.len(), 1, "{sql}");
    }

    #[test]
    fn grounds_values_zero_shot() {
        let db = pets_db();
        let sys = SmBopSim::new();
        let sql = sys.predict("Show the names of dog pets", &db);
        assert!(sql.contains("'dog'"), "{sql}");
        assert!(db.run(&sql).is_ok(), "{sql}");
    }

    #[test]
    fn superlative_becomes_order_limit() {
        let db = pets_db();
        let sys = SmBopSim::new();
        let sql = sys.predict("Which pet name has the highest weight?", &db);
        assert!(sql.contains("ORDER BY"), "{sql}");
        assert!(sql.contains("DESC"), "{sql}");
    }

    #[test]
    fn predictions_always_execute() {
        let db = pets_db();
        let sys = SmBopSim::new();
        for q in [
            "how many pets",
            "average weight of cats",
            "pets per type",
            "nonsense question about nothing",
        ] {
            let sql = sys.predict(q, &db);
            assert!(db.run(&sql).is_ok(), "`{q}` → `{sql}`");
        }
    }

    #[test]
    fn training_teaches_domain_vocabulary() {
        // Cryptic schema: "mass" is stored in column `m`.
        let schema = Schema::new("lab").with_table(TableDef::new(
            "samples",
            vec![
                Column::pk("id", ColumnType::Int),
                Column::new("m", ColumnType::Float),
                Column::new("tag", ColumnType::Text),
            ],
        ));
        let mut db = Database::new(schema);
        for i in 0..10i64 {
            db.table_mut("samples").unwrap().push_rows(vec![vec![
                Value::Int(i),
                Value::Float(i as f64),
                format!("tag{i}").into(),
            ]]);
        }
        let catalog = DbCatalog::new([&db]);
        let mut sys = SmBopSim::new();
        let zero_shot = sys.predict("What is the average mass of samples?", &db);
        sys.train(
            &[
                Pair::new(
                    "what is the mass of the samples",
                    "SELECT s.m FROM samples AS s",
                    "lab",
                ),
                Pair::new(
                    "find samples with mass above 3",
                    "SELECT s.id FROM samples AS s WHERE s.m > 3",
                    "lab",
                ),
            ],
            &catalog,
        );
        let trained = sys.predict("What is the average mass of samples?", &db);
        assert!(
            trained.to_uppercase().contains("AVG(M)")
                || trained.to_uppercase().contains("AVG(S.M)")
                || trained.to_uppercase().contains("AVG(SAMPLES.M)"),
            "after training, `mass` must link to column m: zero-shot `{zero_shot}`, trained `{trained}`"
        );
    }
}
