//! SDSS — the Sloan Digital Sky Survey subset (6 tables, 61 columns).
//!
//! Reproduces the paper's subset: 5 original tables plus one table for
//! photometrically observed objects. Column names follow the real
//! SkyServer schema, including the famously cryptic abbreviations the
//! enhanced schema has to spell out (`ra` = right ascension, `z` =
//! redshift, `u g r i z` = the photometric filter magnitudes).

use crate::util::*;
use crate::{DomainData, SizeClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sb_engine::{Database, Value};
use sb_schema::{Column, ColumnType, EnhancedSchema, ForeignKey, Schema, TableDef};

/// Real deployment size (Table 1): 86 M rows, 6.1 GB.
pub const REAL_ROWS: f64 = 86_000_000.0;
/// Real deployment byte size.
pub const REAL_BYTES: f64 = 6.1e9;

const SPEC_CLASSES: [(&str, f64); 3] = [("GALAXY", 10.0), ("STAR", 6.0), ("QSO", 2.0)];
const SUBCLASSES: [&str; 6] = ["STARBURST", "AGN", "STARFORMING", "BROADLINE", "", "O"];
const SURVEYS: [&str; 4] = ["sdss", "boss", "eboss", "segue1"];

/// The SDSS schema: 6 tables, 61 columns (asserted by crate tests).
pub fn schema() -> Schema {
    use ColumnType::*;
    Schema::new("sdss")
        .with_table(TableDef::new(
            "photoobj",
            vec![
                Column::pk("objid", Int),
                Column::new("ra", Float),
                Column::new("dec", Float),
                Column::new("run", Int),
                Column::new("rerun", Int),
                Column::new("camcol", Int),
                Column::new("field", Int),
                Column::new("type", Int),
                Column::new("mode", Int),
                Column::new("clean", Int),
                Column::new("u", Float),
                Column::new("g", Float),
                Column::new("r", Float),
                Column::new("i", Float),
                Column::new("z", Float),
                Column::new("err_u", Float),
                Column::new("err_r", Float),
                Column::new("petror50_r", Float),
                Column::new("mjd", Int),
            ],
        ))
        .with_table(TableDef::new(
            "specobj",
            vec![
                Column::pk("specobjid", Int),
                Column::new("bestobjid", Int),
                Column::new("ra", Float),
                Column::new("dec", Float),
                Column::new("z", Float),
                Column::new("zerr", Float),
                Column::new("class", Text),
                Column::new("subclass", Text),
                Column::new("survey", Text),
                Column::new("programname", Text),
                Column::new("plate", Int),
                Column::new("mjd", Int),
                Column::new("fiberid", Int),
                Column::new("sn_median", Float),
                Column::new("veldisp", Float),
                Column::new("zwarning", Int),
            ],
        ))
        .with_table(TableDef::new(
            "photo_type",
            vec![Column::pk("value", Int), Column::new("name", Text)],
        ))
        .with_table(TableDef::new(
            "neighbors",
            vec![
                Column::new("objid", Int),
                Column::new("neighborobjid", Int),
                Column::new("distance", Float),
                Column::new("neighbormode", Int),
                Column::new("neighbortype", Int),
                Column::new("mode", Int),
            ],
        ))
        .with_table(TableDef::new(
            "sppparams",
            vec![
                Column::pk("specobjid", Int),
                Column::new("fehadop", Float),
                Column::new("fehadopunc", Float),
                Column::new("loggadop", Float),
                Column::new("loggadopunc", Float),
                Column::new("teffadop", Float),
                Column::new("teffadopunc", Float),
                Column::new("snr", Float),
                Column::new("flag", Text),
            ],
        ))
        .with_table(TableDef::new(
            "galspecline",
            vec![
                Column::pk("specobjid", Int),
                Column::new("h_alpha_flux", Float),
                Column::new("h_alpha_flux_err", Float),
                Column::new("h_beta_flux", Float),
                Column::new("h_beta_flux_err", Float),
                Column::new("oiii_5007_flux", Float),
                Column::new("nii_6584_flux", Float),
                Column::new("sigma_balmer", Float),
                Column::new("sigma_forbidden", Float),
            ],
        ))
        .with_fk(ForeignKey::new("specobj", "bestobjid", "photoobj", "objid"))
        .with_fk(ForeignKey::new("photoobj", "type", "photo_type", "value"))
        .with_fk(ForeignKey::new("neighbors", "objid", "photoobj", "objid"))
        .with_fk(ForeignKey::new(
            "neighbors",
            "neighborobjid",
            "photoobj",
            "objid",
        ))
        .with_fk(ForeignKey::new(
            "sppparams",
            "specobjid",
            "specobj",
            "specobjid",
        ))
        .with_fk(ForeignKey::new(
            "galspecline",
            "specobjid",
            "specobj",
            "specobjid",
        ))
}

/// Build the populated domain at a size class.
pub fn build(size: SizeClass) -> DomainData {
    let mut rng = StdRng::seed_from_u64(0x5D55);
    let schema = schema();
    let mut db = Database::new(schema);
    let d = size.divisor();

    let n_photo = scaled(58_000_000.0, d, 400);
    let n_spec = scaled(4_800_000.0, d, 150);
    let n_neighbors = scaled(21_000_000.0, d, 300);
    let n_spp = scaled(1_200_000.0, d, 60);
    let n_gal = scaled(1_000_000.0, d, 60);

    {
        let t = db.table_mut("photo_type").unwrap();
        for (v, name) in [
            (0, "UNKNOWN"),
            (1, "COSMIC_RAY"),
            (3, "GALAXY"),
            (6, "STAR"),
            (8, "SKY"),
        ] {
            t.push_rows(vec![vec![Value::Int(v), name.into()]]);
        }
    }
    let type_values = [3i64, 6, 0, 1, 8];
    {
        let t = db.table_mut("photoobj").unwrap();
        for i in 0..n_photo {
            let r_mag = float_in(&mut rng, 12.0, 24.0, 3);
            let u_mag = r_mag + float_in(&mut rng, -0.5, 4.0, 3);
            let g_mag = r_mag + float_in(&mut rng, -0.3, 1.5, 3);
            let i_mag = r_mag - float_in(&mut rng, -0.3, 0.8, 3);
            let z_mag = r_mag - float_in(&mut rng, -0.4, 1.0, 3);
            t.push_rows(vec![vec![
                Value::Int(i as i64 + 1),
                Value::Float(float_in(&mut rng, 0.0, 360.0, 5)),
                Value::Float(float_in(&mut rng, -90.0, 90.0, 5)),
                Value::Int(rng.gen_range(94..9000)),
                Value::Int(301),
                Value::Int(rng.gen_range(1..=6)),
                Value::Int(rng.gen_range(11..1000)),
                Value::Int(type_values[zipf(&mut rng, type_values.len(), 0.7)]),
                Value::Int(rng.gen_range(1..=2)),
                Value::Int(i64::from(rng.gen_bool(0.9))),
                Value::Float(u_mag),
                Value::Float(g_mag),
                Value::Float(r_mag),
                Value::Float(i_mag),
                Value::Float(z_mag),
                Value::Float(float_in(&mut rng, 0.001, 0.8, 4)),
                Value::Float(float_in(&mut rng, 0.001, 0.5, 4)),
                Value::Float(float_in(&mut rng, 0.5, 30.0, 3)),
                Value::Int(rng.gen_range(51_000..60_000)),
            ]]);
        }
    }
    {
        let t = db.table_mut("specobj").unwrap();
        for i in 0..n_spec {
            let class = *weighted(&mut rng, &SPEC_CLASSES.map(|(c, w)| (c, w)));
            let z = match class {
                "GALAXY" => float_in(&mut rng, 0.01, 1.2, 4),
                "QSO" => float_in(&mut rng, 0.3, 5.0, 4),
                _ => float_in(&mut rng, -0.001, 0.01, 4),
            };
            let subclass = match class {
                "GALAXY" => SUBCLASSES[zipf(&mut rng, 4, 0.6)],
                "QSO" => ["BROADLINE", ""][rng.gen_range(0..2)],
                _ => ["O", ""][rng.gen_range(0..2)],
            };
            t.push_rows(vec![vec![
                Value::Int(i as i64 + 1),
                Value::Int(rng.gen_range(0..n_photo as i64) + 1),
                Value::Float(float_in(&mut rng, 0.0, 360.0, 5)),
                Value::Float(float_in(&mut rng, -90.0, 90.0, 5)),
                Value::Float(z),
                Value::Float(float_in(&mut rng, 1e-5, 1e-3, 6)),
                class.into(),
                subclass.into(),
                SURVEYS[zipf(&mut rng, SURVEYS.len(), 0.8)].into(),
                ["legacy", "southern", "segue"][rng.gen_range(0..3)].into(),
                Value::Int(rng.gen_range(266..12_000)),
                Value::Int(rng.gen_range(51_000..60_000)),
                Value::Int(rng.gen_range(1..=1000)),
                Value::Float(float_in(&mut rng, 0.5, 60.0, 3)),
                Value::Float(float_in(&mut rng, 30.0, 400.0, 2)),
                Value::Int(if rng.gen_bool(0.93) { 0 } else { 4 }),
            ]]);
        }
    }
    {
        let t = db.table_mut("neighbors").unwrap();
        for _ in 0..n_neighbors {
            let a = rng.gen_range(0..n_photo as i64) + 1;
            let b = rng.gen_range(0..n_photo as i64) + 1;
            t.push_rows(vec![vec![
                Value::Int(a),
                Value::Int(b),
                Value::Float(float_in(&mut rng, 0.001, 0.5, 5)),
                Value::Int(rng.gen_range(1..=4)),
                Value::Int(type_values[zipf(&mut rng, type_values.len(), 0.7)]),
                Value::Int(rng.gen_range(1..=2)),
            ]]);
        }
    }
    {
        let t = db.table_mut("sppparams").unwrap();
        for i in 0..n_spp {
            t.push_rows(vec![vec![
                Value::Int((i % n_spec) as i64 + 1),
                Value::Float(float_in(&mut rng, -3.0, 0.5, 3)),
                Value::Float(float_in(&mut rng, 0.01, 0.3, 3)),
                Value::Float(float_in(&mut rng, 0.5, 5.0, 3)),
                Value::Float(float_in(&mut rng, 0.05, 0.5, 3)),
                Value::Float(float_in(&mut rng, 3500.0, 9500.0, 1)),
                Value::Float(float_in(&mut rng, 20.0, 300.0, 1)),
                Value::Float(float_in(&mut rng, 5.0, 90.0, 2)),
                ["nnnnn", "Nnnnn", "dnnnn"][rng.gen_range(0..3)].into(),
            ]]);
        }
    }
    {
        let t = db.table_mut("galspecline").unwrap();
        for i in 0..n_gal {
            let flux = float_in(&mut rng, 0.1, 900.0, 3);
            t.push_rows(vec![vec![
                Value::Int((i % n_spec) as i64 + 1),
                Value::Float(flux),
                Value::Float(flux * 0.05),
                Value::Float(flux * float_in(&mut rng, 0.2, 0.4, 3)),
                Value::Float(flux * 0.02),
                Value::Float(float_in(&mut rng, 0.1, 400.0, 3)),
                Value::Float(float_in(&mut rng, 0.1, 300.0, 3)),
                Value::Float(float_in(&mut rng, 30.0, 300.0, 2)),
                Value::Float(float_in(&mut rng, 30.0, 300.0, 2)),
            ]]);
        }
    }

    let enhanced = enhance(&db);
    DomainData {
        db,
        enhanced,
        real_rows: REAL_ROWS,
        real_bytes: REAL_BYTES,
        seed_patterns: seed_patterns(),
    }
}

/// The one-shot expert refinement: spell out the SkyServer abbreviations
/// and place the five filter magnitudes in one math group (the paper's
/// `u - r < 2.22` Q3 example).
fn enhance(db: &Database) -> EnhancedSchema {
    let profile = sb_engine::profile_database(db);
    let mut e = EnhancedSchema::infer(db.schema.clone(), &profile);
    e.set_table_alias("photoobj", "photometric object");
    e.set_table_alias("specobj", "spectroscopic object");
    e.set_table_alias("neighbors", "nearest neighbor");
    e.set_table_alias("sppparams", "stellar parameters");
    e.set_table_alias("galspecline", "galaxy emission line");
    for (c, alias) in [
        ("ra", "right ascension"),
        ("dec", "declination"),
        ("u", "ultraviolet magnitude"),
        ("g", "green magnitude"),
        ("r", "red magnitude"),
        ("i", "near infrared magnitude"),
        ("z", "infrared magnitude"),
        ("mjd", "modified julian date"),
        ("petror50_r", "petrosian half light radius"),
    ] {
        e.set_column_alias("photoobj", c, alias);
    }
    for (c, alias) in [
        ("ra", "right ascension"),
        ("dec", "declination"),
        ("z", "redshift"),
        ("zerr", "redshift error"),
        ("bestobjid", "best photometric object id"),
        ("sn_median", "median signal to noise"),
        ("veldisp", "velocity dispersion"),
        ("zwarning", "redshift warning flag"),
        ("mjd", "modified julian date"),
        ("fiberid", "fiber id"),
    ] {
        e.set_column_alias("specobj", c, alias);
    }
    e.set_column_alias("neighbors", "neighbormode", "neighbor mode");
    e.set_column_alias("neighbors", "neighborobjid", "neighbor object id");
    e.set_column_alias("neighbors", "neighbortype", "neighbor type");
    e.set_column_alias("sppparams", "fehadop", "metallicity");
    e.set_column_alias("sppparams", "teffadop", "effective temperature");
    e.set_column_alias("sppparams", "loggadop", "surface gravity");
    e.set_column_alias("galspecline", "h_alpha_flux", "H alpha flux");
    e.set_column_alias("galspecline", "h_beta_flux", "H beta flux");

    // Magnitudes share one unit group; fluxes their own. Everything else
    // leaves the automatically inferred per-table group — coordinates,
    // errors and radii must not be combined arithmetically (the paper's
    // `T1.length - T2.area` counter-example).
    for t in [
        "photoobj",
        "specobj",
        "neighbors",
        "sppparams",
        "galspecline",
    ] {
        let cols: Vec<String> = e
            .schema
            .table(t)
            .map(|d| d.columns.iter().map(|c| c.name.clone()).collect())
            .unwrap_or_default();
        for c in cols {
            e.clear_math_group(t, &c);
        }
    }
    for c in ["u", "g", "r", "i", "z"] {
        e.set_math_group("photoobj", c, "magnitude");
    }
    for c in [
        "h_alpha_flux",
        "h_beta_flux",
        "oiii_5007_flux",
        "nii_6584_flux",
    ] {
        e.set_math_group("galspecline", c, "flux");
    }
    for (t, c) in [
        ("specobj", "class"),
        ("specobj", "subclass"),
        ("specobj", "survey"),
        ("specobj", "programname"),
        ("photoobj", "type"),
        ("photoobj", "camcol"),
        ("photoobj", "clean"),
        ("neighbors", "neighbormode"),
        ("neighbors", "neighbortype"),
    ] {
        e.set_categorical(t, c, true);
    }
    // Not meaningful to aggregate or group.
    for (t, c) in [
        ("photoobj", "ra"),
        ("photoobj", "dec"),
        ("specobj", "ra"),
        ("specobj", "dec"),
    ] {
        e.set_categorical(t, c, false);
        e.set_non_aggregatable(t, c, true);
    }
    for (t, c) in [
        ("specobj", "plate"),
        ("specobj", "mjd"),
        ("specobj", "fiberid"),
        ("photoobj", "run"),
        ("photoobj", "field"),
        ("photoobj", "mjd"),
        ("neighbors", "mode"),
    ] {
        e.set_non_aggregatable(t, c, true);
        e.set_categorical(t, c, false);
    }
    e
}

/// Hand-authored seed SQL patterns — including the paper's running
/// examples Q1–Q3 and the Figure 1 `neighbors` query.
pub fn seed_patterns() -> Vec<String> {
    [
        // -- Easy (incl. the paper's Q1) --
        "SELECT s.specobjid FROM specobj AS s WHERE s.subclass = 'STARBURST'",
        "SELECT s.bestobjid FROM specobj AS s WHERE s.class = 'GALAXY'",
        "SELECT T1.objid FROM neighbors AS T1 WHERE T1.neighbormode = 2",
        "SELECT COUNT(*) FROM specobj AS s WHERE s.survey = 'sdss'",
        "SELECT p.objid FROM photoobj AS p WHERE p.clean = 1",
        // -- Medium (incl. the paper's Q2) --
        "SELECT s.bestobjid, s.ra, s.dec, s.z FROM specobj AS s WHERE s.class = 'GALAXY' AND s.z > 0.5 AND s.z < 1",
        "SELECT COUNT(*), s.class FROM specobj AS s GROUP BY s.class",
        "SELECT AVG(s.z) FROM specobj AS s WHERE s.class = 'QSO'",
        "SELECT p.ra, p.dec FROM photoobj AS p JOIN specobj AS s ON s.bestobjid = p.objid WHERE s.class = 'STAR'",
        "SELECT s.specobjid, s.z FROM specobj AS s WHERE s.zwarning = 0 AND s.class = 'GALAXY'",
        "SELECT n.neighborobjid FROM neighbors AS n WHERE n.distance < 0.05 AND n.neighbormode = 1",
        // -- Hard --
        "SELECT s.specobjid FROM specobj AS s WHERE s.z > (SELECT AVG(s2.z) FROM specobj AS s2)",
        "SELECT MIN(p.r), MAX(p.r) FROM photoobj AS p WHERE p.type = 3 AND p.clean = 1",
        "SELECT COUNT(*), s.subclass FROM specobj AS s WHERE s.class = 'GALAXY' AND s.z > 0.1 GROUP BY s.subclass",
        "SELECT g.specobjid, g.h_alpha_flux / g.h_beta_flux FROM galspecline AS g WHERE g.h_alpha_flux / g.h_beta_flux > 2.8 AND g.sigma_balmer > 100.0",
        // -- Extra hard (incl. the paper's Q3) --
        "SELECT p.objid, s.specobjid FROM photoobj AS p JOIN specobj AS s ON s.bestobjid = p.objid WHERE s.class = 'GALAXY' AND p.u - p.r < 2.22 AND p.u - p.r > 1",
        "SELECT s.class, AVG(s.z) FROM specobj AS s WHERE s.zwarning = 0 GROUP BY s.class ORDER BY AVG(s.z) DESC LIMIT 2",
        "SELECT p.objid FROM photoobj AS p JOIN specobj AS s ON s.bestobjid = p.objid WHERE s.subclass = 'STARBURST' AND p.g - p.r < 0.5 ORDER BY s.z DESC LIMIT 10",
        "SELECT COUNT(*), s.survey FROM specobj AS s WHERE s.class = 'GALAXY' AND s.sn_median > 10.0 GROUP BY s.survey ORDER BY COUNT(*) DESC LIMIT 3",
    ]
    .into_iter()
    .map(String::from)
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_table1() {
        let s = schema();
        assert_eq!(s.tables.len(), 6);
        assert_eq!(s.column_count(), 61);
        assert!(s.validate().is_empty(), "{:?}", s.validate());
    }

    #[test]
    fn paper_q3_runs_on_content() {
        let d = build(SizeClass::Small);
        let r =
            d.db.run(
                "SELECT p.objid, s.specobjid FROM photoobj AS p \
                 JOIN specobj AS s ON s.bestobjid = p.objid \
                 WHERE s.class = 'GALAXY' AND p.u - p.r < 2.22 AND p.u - p.r > 1",
            )
            .unwrap();
        assert!(!r.is_empty(), "Q3 must be satisfiable on generated content");
    }

    #[test]
    fn redshift_ranges_are_class_plausible() {
        let d = build(SizeClass::Tiny);
        let r =
            d.db.run("SELECT MAX(s.z) FROM specobj AS s WHERE s.class = 'STAR'")
                .unwrap();
        let max_star_z = r.rows[0][0].as_f64().unwrap();
        assert!(
            max_star_z < 0.02,
            "stars have ~zero redshift, got {max_star_z}"
        );
    }

    #[test]
    fn magnitudes_form_math_group() {
        let d = build(SizeClass::Tiny);
        let groups = d.enhanced.math_groups("photoobj");
        assert_eq!(groups.get("magnitude").map(|g| g.len()), Some(5));
    }

    #[test]
    fn cryptic_columns_have_aliases() {
        let d = build(SizeClass::Tiny);
        assert_eq!(d.enhanced.readable_column("specobj", "z"), "redshift");
        assert_eq!(
            d.enhanced.readable_column("photoobj", "ra"),
            "right ascension"
        );
    }
}
