//! # sb-data — synthetic database content for ScienceBenchmark
//!
//! The paper's three scientific databases (Table 1) and the Spider corpus
//! are proprietary or too large to ship; this crate builds deterministic
//! synthetic equivalents that preserve what the pipeline actually touches:
//!
//! | Domain | Real schema reproduced | Real size | Generated (scaled) |
//! |---|---|---|---|
//! | CORDIS (research policy) | 19 tables / 82 columns + FK graph | 671 K rows, 1 GB | `SizeClass`-dependent |
//! | SDSS (astrophysics) | 6 tables / 61 columns | 86 M rows, 6.1 GB | 〃 |
//! | OncoMX (cancer research) | 25 tables / 106 columns | 65 M rows, 12 GB | 〃 |
//!
//! Value distributions mimic the domains (redshifts and magnitudes with
//! plausible ranges, EU funding instruments, gene symbols, anatomical
//! entities, …) so that generated queries, NL questions and schema-linking
//! behave like they would on the real data. Every builder is fully
//! deterministic given the `SizeClass`.
//!
//! Each domain module also ships the *seed query patterns*: hand-authored
//! SQL in the style of the paper's expert-written queries, spanning all
//! four Spider hardness classes (used by `sb-core` to assemble the Seed
//! and Dev sets with Table 2's exact hardness quotas).

pub mod cordis;
pub mod oncomx;
pub mod sdss;
pub mod spiderlike;
pub mod synth;
pub mod util;

pub use spiderlike::SpiderCorpus;
pub use synth::{synth_db, SynthScale};

use sb_engine::Database;
use sb_schema::EnhancedSchema;

/// How much content to generate, as a fraction of the real deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeClass {
    /// A few hundred rows per database: unit tests.
    Tiny,
    /// A few thousand rows: examples and fast evaluation runs.
    Small,
    /// Tens of thousands of rows: the benchmark harness (Table 1).
    Full,
}

impl SizeClass {
    /// The divisor applied to real row counts.
    pub fn divisor(&self) -> f64 {
        match self {
            SizeClass::Tiny => 40_000.0,
            SizeClass::Small => 4_000.0,
            SizeClass::Full => 1_000.0,
        }
    }
}

/// A fully built domain: content, enhanced schema, provenance and seed
/// query patterns.
#[derive(Debug, Clone)]
pub struct DomainData {
    /// The populated database.
    pub db: Database,
    /// The enhanced schema (aliases + generator constraints), after the
    /// domain's one-shot expert refinement.
    pub enhanced: EnhancedSchema,
    /// Row count of the real deployment (for Table 1 extrapolation).
    pub real_rows: f64,
    /// Byte size of the real deployment.
    pub real_bytes: f64,
    /// Hand-authored seed SQL patterns spanning all hardness classes.
    pub seed_patterns: Vec<String>,
}

impl DomainData {
    /// The scale factor mapping generated rows back to the real
    /// deployment.
    pub fn scale_factor(&self) -> f64 {
        let gen_rows = self.db.total_rows().max(1) as f64;
        self.real_rows / gen_rows
    }
}

/// Identifiers for the three ScienceBenchmark domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Research policy making (EU CORDIS).
    Cordis,
    /// Astrophysics (Sloan Digital Sky Survey).
    Sdss,
    /// Cancer research (OncoMX).
    OncoMx,
}

impl Domain {
    /// All domains in the paper's presentation order.
    pub const ALL: [Domain; 3] = [Domain::Cordis, Domain::Sdss, Domain::OncoMx];

    /// The name used in tables and dataset files.
    pub fn name(&self) -> &'static str {
        match self {
            Domain::Cordis => "cordis",
            Domain::Sdss => "sdss",
            Domain::OncoMx => "oncomx",
        }
    }

    /// Build the domain's database and metadata at a size class.
    pub fn build(&self, size: SizeClass) -> DomainData {
        match self {
            Domain::Cordis => cordis::build(size),
            Domain::Sdss => sdss::build(size),
            Domain::OncoMx => oncomx::build(size),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_domains_match_paper_table1_shape() {
        // (tables, columns) straight out of Table 1.
        let expected = [
            (Domain::Cordis, 19, 82),
            (Domain::Sdss, 6, 61),
            (Domain::OncoMx, 25, 106),
        ];
        for (domain, tables, columns) in expected {
            let d = domain.build(SizeClass::Tiny);
            assert_eq!(d.db.schema.tables.len(), tables, "{}", domain.name());
            assert_eq!(d.db.schema.column_count(), columns, "{}", domain.name());
            assert!(
                d.db.schema.validate().is_empty(),
                "{} schema invalid: {:?}",
                domain.name(),
                d.db.schema.validate()
            );
        }
    }

    #[test]
    fn content_is_deterministic() {
        for domain in Domain::ALL {
            let a = domain.build(SizeClass::Tiny);
            let b = domain.build(SizeClass::Tiny);
            assert_eq!(a.db.total_rows(), b.db.total_rows());
            assert_eq!(a.db.approx_bytes(), b.db.approx_bytes());
        }
    }

    #[test]
    fn size_classes_scale_rows() {
        // Monotone in size; strictly larger at Full. (Tiny and Small can
        // coincide for CORDIS, whose dimension-table floors dominate at
        // small scales.)
        for domain in Domain::ALL {
            let tiny = domain.build(SizeClass::Tiny).db.total_rows();
            let small = domain.build(SizeClass::Small).db.total_rows();
            let full = domain.build(SizeClass::Full).db.total_rows();
            assert!(tiny <= small && small < full, "{}", domain.name());
        }
    }

    #[test]
    fn seed_patterns_parse_execute_nonempty() {
        for domain in Domain::ALL {
            let d = domain.build(SizeClass::Small);
            assert!(
                d.seed_patterns.len() >= 12,
                "{} has too few seed patterns",
                domain.name()
            );
            for sql in &d.seed_patterns {
                let rs =
                    d.db.run(sql)
                        .unwrap_or_else(|e| panic!("{}: `{sql}` failed: {e}", domain.name()));
                assert!(
                    !rs.is_empty(),
                    "{}: `{sql}` returned nothing",
                    domain.name()
                );
            }
        }
    }

    #[test]
    fn scale_factor_extrapolates_to_paper_sizes() {
        let d = Domain::Sdss.build(SizeClass::Small);
        let extrapolated = d.db.total_rows() as f64 * d.scale_factor();
        assert!((extrapolated - d.real_rows).abs() / d.real_rows < 1e-9);
        assert!(d.real_rows > 8.0e7, "SDSS is ~86M rows in the paper");
    }
}
