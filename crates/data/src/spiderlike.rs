//! A Spider-like corpus: small general-knowledge databases with NL-ready
//! schemas.
//!
//! The Yale Spider corpus itself cannot be shipped, so this module builds
//! a family of 24 miniature databases in Spider's style — "pets and
//! entertainment (concerts, orchestras, musicals etc.)", student-made
//! simplicity, spelled-out English column names, a handful of tables and a
//! few hundred rows each (Table 1: Spider averages 3.5 tables, 23 columns
//! and 8.6 K rows per database). Each database follows the same
//! three-table shape (main entity, secondary entity, link relation), which
//! covers every query form the Spider hardness taxonomy exercises.

use crate::util::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sb_engine::{Database, Value};
use sb_schema::{Column, ColumnType, EnhancedSchema, ForeignKey, Schema, TableDef};

/// One Spider-like database with metadata and seed patterns.
#[derive(Debug, Clone)]
pub struct SpiderDb {
    /// The populated database.
    pub db: Database,
    /// Enhanced schema (names are already readable; only generator flags
    /// are set).
    pub enhanced: EnhancedSchema,
    /// Seed SQL patterns spanning the hardness classes.
    pub seed_patterns: Vec<String>,
}

/// The whole corpus.
#[derive(Debug, Clone)]
pub struct SpiderCorpus {
    /// The member databases.
    pub databases: Vec<SpiderDb>,
}

/// Theme: names for one miniature database.
struct Theme {
    db: &'static str,
    ent: &'static str,
    cat: &'static str,
    cat_values: [&'static str; 4],
    m1: &'static str,
    m2: &'static str,
    n1: &'static str,
    ent2: &'static str,
    attr2: &'static str,
    link: &'static str,
}

const THEMES: [Theme; 24] = [
    Theme {
        db: "concert_hall",
        ent: "concert",
        cat: "genre",
        cat_values: ["rock", "pop", "jazz", "classical"],
        m1: "ticket_price",
        m2: "duration_hours",
        n1: "attendance",
        ent2: "stadium",
        attr2: "city",
        link: "performance",
    },
    Theme {
        db: "pet_shelter",
        ent: "pet",
        cat: "pet_type",
        cat_values: ["dog", "cat", "bird", "rabbit"],
        m1: "weight",
        m2: "height",
        n1: "age",
        ent2: "owner",
        attr2: "city",
        link: "adoption",
    },
    Theme {
        db: "college_courses",
        ent: "course",
        cat: "department",
        cat_values: ["math", "physics", "history", "biology"],
        m1: "credits",
        m2: "workload_hours",
        n1: "enrollment",
        ent2: "professor",
        attr2: "office",
        link: "teaching",
    },
    Theme {
        db: "airline_flights",
        ent: "flight",
        cat: "airline",
        cat_values: ["united", "delta", "lufthansa", "klm"],
        m1: "distance",
        m2: "duration_hours",
        n1: "passengers",
        ent2: "airport",
        attr2: "city",
        link: "departure",
    },
    Theme {
        db: "movie_studio",
        ent: "movie",
        cat: "genre",
        cat_values: ["drama", "comedy", "action", "horror"],
        m1: "budget",
        m2: "gross",
        n1: "year",
        ent2: "director",
        attr2: "nationality",
        link: "production",
    },
    Theme {
        db: "book_press",
        ent: "book",
        cat: "category",
        cat_values: ["fiction", "science", "history", "poetry"],
        m1: "price",
        m2: "rating",
        n1: "pages",
        ent2: "author",
        attr2: "country",
        link: "authorship",
    },
    Theme {
        db: "car_dealers",
        ent: "car",
        cat: "maker",
        cat_values: ["toyota", "ford", "bmw", "fiat"],
        m1: "price",
        m2: "horsepower",
        n1: "year",
        ent2: "dealer",
        attr2: "city",
        link: "inventory",
    },
    Theme {
        db: "city_restaurants",
        ent: "restaurant",
        cat: "cuisine",
        cat_values: ["italian", "chinese", "mexican", "thai"],
        m1: "rating",
        m2: "avg_price",
        n1: "capacity",
        ent2: "chef",
        attr2: "specialty",
        link: "employment",
    },
    Theme {
        db: "orchestra_music",
        ent: "orchestra",
        cat: "era",
        cat_values: ["baroque", "romantic", "modern", "classical"],
        m1: "ticket_price",
        m2: "rating",
        n1: "founded_year",
        ent2: "conductor",
        attr2: "nationality",
        link: "engagement",
    },
    Theme {
        db: "school_sports",
        ent: "team",
        cat: "sport",
        cat_values: ["soccer", "basketball", "swimming", "tennis"],
        m1: "win_rate",
        m2: "budget",
        n1: "wins",
        ent2: "coach",
        attr2: "hometown",
        link: "coaching",
    },
    Theme {
        db: "museum_visits",
        ent: "museum",
        cat: "theme",
        cat_values: ["art", "science", "history", "nature"],
        m1: "ticket_price",
        m2: "rating",
        n1: "num_paintings",
        ent2: "visitor",
        attr2: "membership",
        link: "visit",
    },
    Theme {
        db: "tv_shows",
        ent: "show",
        cat: "genre",
        cat_values: ["sitcom", "drama", "reality", "news"],
        m1: "rating",
        m2: "share",
        n1: "episodes",
        ent2: "channel",
        attr2: "country",
        link: "broadcast",
    },
    Theme {
        db: "wine_cellar",
        ent: "wine",
        cat: "grape",
        cat_values: ["merlot", "riesling", "syrah", "pinot"],
        m1: "price",
        m2: "score",
        n1: "year",
        ent2: "winery",
        attr2: "region",
        link: "bottling",
    },
    Theme {
        db: "hospital_staff",
        ent: "physician",
        cat: "specialty",
        cat_values: ["cardiology", "oncology", "surgery", "pediatrics"],
        m1: "salary",
        m2: "experience_years",
        n1: "patients",
        ent2: "ward",
        attr2: "building",
        link: "assignment",
    },
    Theme {
        db: "bank_branches",
        ent: "account",
        cat: "account_type",
        cat_values: ["checking", "savings", "business", "student"],
        m1: "balance",
        m2: "interest_rate",
        n1: "open_year",
        ent2: "branch",
        attr2: "city",
        link: "holding",
    },
    Theme {
        db: "theme_park",
        ent: "ride",
        cat: "ride_type",
        cat_values: ["coaster", "water", "family", "thrill"],
        m1: "max_speed",
        m2: "height_limit",
        n1: "capacity",
        ent2: "operator",
        attr2: "shift",
        link: "operation",
    },
    Theme {
        db: "farm_produce",
        ent: "farm",
        cat: "product",
        cat_values: ["dairy", "grain", "fruit", "vegetable"],
        m1: "acreage",
        m2: "yield_tons",
        n1: "workers",
        ent2: "market",
        attr2: "town",
        link: "supply",
    },
    Theme {
        db: "gym_members",
        ent: "member",
        cat: "plan",
        cat_values: ["basic", "silver", "gold", "platinum"],
        m1: "monthly_fee",
        m2: "weight",
        n1: "visits",
        ent2: "trainer",
        attr2: "certification",
        link: "training",
    },
    Theme {
        db: "shipping_docks",
        ent: "ship",
        cat: "ship_type",
        cat_values: ["cargo", "tanker", "ferry", "cruise"],
        m1: "tonnage",
        m2: "length",
        n1: "built_year",
        ent2: "dock",
        attr2: "harbor",
        link: "mooring",
    },
    Theme {
        db: "game_studio",
        ent: "game",
        cat: "platform",
        cat_values: ["pc", "console", "mobile", "arcade"],
        m1: "price",
        m2: "rating",
        n1: "players",
        ent2: "designer",
        attr2: "country",
        link: "credit",
    },
    Theme {
        db: "county_elections",
        ent: "candidate",
        cat: "party",
        cat_values: ["red", "blue", "green", "independent"],
        m1: "vote_share",
        m2: "funding",
        n1: "votes",
        ent2: "county",
        attr2: "state",
        link: "campaign",
    },
    Theme {
        db: "apartment_rentals",
        ent: "apartment",
        cat: "layout",
        cat_values: ["studio", "one_bed", "two_bed", "loft"],
        m1: "rent",
        m2: "area_sqm",
        n1: "floor",
        ent2: "tenant",
        attr2: "occupation",
        link: "lease",
    },
    Theme {
        db: "coffee_chain",
        ent: "shop",
        cat: "district",
        cat_values: ["downtown", "uptown", "suburb", "airport"],
        m1: "revenue",
        m2: "rating",
        n1: "seats",
        ent2: "manager",
        attr2: "hometown",
        link: "management",
    },
    Theme {
        db: "race_track",
        ent: "driver",
        cat: "league",
        cat_values: ["f1", "rally", "karting", "endurance"],
        m1: "points",
        m2: "avg_speed",
        n1: "podiums",
        ent2: "sponsor",
        attr2: "industry",
        link: "sponsorship",
    },
];

impl SpiderCorpus {
    /// Build the full 24-database corpus (deterministic).
    pub fn build() -> SpiderCorpus {
        SpiderCorpus {
            databases: THEMES
                .iter()
                .enumerate()
                .map(|(i, t)| build_theme(t, i as u64))
                .collect(),
        }
    }

    /// Build only the first `n` databases (cheaper test corpus).
    pub fn build_n(n: usize) -> SpiderCorpus {
        SpiderCorpus {
            databases: THEMES
                .iter()
                .take(n)
                .enumerate()
                .map(|(i, t)| build_theme(t, i as u64))
                .collect(),
        }
    }
}

fn theme_schema(t: &Theme) -> Schema {
    use ColumnType::*;
    let ent_table = format!("{}s", t.ent);
    let ent2_table = format!("{}s", t.ent2);
    let ent_id = format!("{}_id", t.ent);
    let ent2_id = format!("{}_id", t.ent2);
    Schema::new(t.db)
        .with_table(TableDef::new(
            &ent_table,
            vec![
                Column::pk("id", Int),
                Column::new("name", Text),
                Column::new(t.cat, Text),
                Column::new(t.m1, Float),
                Column::new(t.m2, Float),
                Column::new(t.n1, Int),
            ],
        ))
        .with_table(TableDef::new(
            &ent2_table,
            vec![
                Column::pk("id", Int),
                Column::new("name", Text),
                Column::new(t.attr2, Text),
            ],
        ))
        .with_table(TableDef::new(
            t.link,
            vec![
                Column::new(&ent_id, Int),
                Column::new(&ent2_id, Int),
                Column::new("year", Int),
            ],
        ))
        .with_fk(ForeignKey::new(t.link, &ent_id, &ent_table, "id"))
        .with_fk(ForeignKey::new(t.link, &ent2_id, &ent2_table, "id"))
}

fn build_theme(t: &Theme, idx: u64) -> SpiderDb {
    let mut rng = StdRng::seed_from_u64(0x5B1D_E000 + idx);
    let schema = theme_schema(t);
    let mut db = Database::new(schema);
    let n1 = rng.gen_range(80..240usize);
    let n2 = rng.gen_range(20..60usize);
    let nl = rng.gen_range(150..400usize);

    let ent_table = format!("{}s", t.ent);
    let ent2_table = format!("{}s", t.ent2);
    {
        let table = db.table_mut(&ent_table).unwrap();
        for i in 0..n1 {
            let cat = t.cat_values[zipf(&mut rng, 4, 0.6)];
            table.push_rows(vec![vec![
                Value::Int(i as i64 + 1),
                format!("{} {}", t.ent, i + 1).into(),
                cat.into(),
                Value::Float(float_in(&mut rng, 5.0, 500.0, 2)),
                Value::Float(float_in(&mut rng, 1.0, 100.0, 2)),
                Value::Int(rng.gen_range(1..2020)),
            ]]);
        }
    }
    {
        let table = db.table_mut(&ent2_table).unwrap();
        for i in 0..n2 {
            table.push_rows(vec![vec![
                Value::Int(i as i64 + 1),
                format!("{} {}", t.ent2, i + 1).into(),
                format!("{} {}", t.attr2, 1 + i % 8).into(),
            ]]);
        }
    }
    {
        let table = db.table_mut(t.link).unwrap();
        for _ in 0..nl {
            table.push_rows(vec![vec![
                Value::Int(rng.gen_range(0..n1 as i64) + 1),
                Value::Int(rng.gen_range(0..n2 as i64) + 1),
                Value::Int(rng.gen_range(1990..2023)),
            ]]);
        }
    }

    let profile = sb_engine::profile_database(&db);
    let mut enhanced = EnhancedSchema::infer(db.schema.clone(), &profile);
    enhanced.set_categorical(&ent_table, t.cat, true);
    enhanced.set_categorical(&ent_table, t.m1, false);
    enhanced.set_categorical(&ent_table, t.m2, false);
    enhanced.set_categorical(&ent_table, "name", false);
    enhanced.set_categorical(&ent2_table, "name", false);
    enhanced.set_categorical(t.link, "year", true);
    enhanced.set_math_group(&ent_table, t.m1, "measure");
    enhanced.set_math_group(&ent_table, t.m2, "measure");
    enhanced.set_non_aggregatable(&ent_table, t.n1, true);
    enhanced.set_categorical(&ent_table, t.n1, false);

    SpiderDb {
        db,
        enhanced,
        seed_patterns: theme_patterns(t),
    }
}

/// Seed SQL patterns instantiated for a theme, spanning all four hardness
/// classes (the same clause shapes Spider's own training set exercises).
fn theme_patterns(t: &Theme) -> Vec<String> {
    let e = format!("{}s", t.ent);
    let e2 = format!("{}s", t.ent2);
    let eid = format!("{}_id", t.ent);
    let e2id = format!("{}_id", t.ent2);
    let (cat, v0, v1) = (t.cat, t.cat_values[0], t.cat_values[1]);
    let (m1, m2, link) = (t.m1, t.m2, t.link);
    vec![
        // -- Easy --
        format!("SELECT name FROM {e} WHERE {cat} = '{v0}'"),
        format!("SELECT COUNT(*) FROM {e}"),
        format!("SELECT name, {m1} FROM {e}"),
        format!("SELECT AVG({m1}) FROM {e}"),
        // -- Medium --
        format!("SELECT name FROM {e} WHERE {cat} = '{v0}' AND {m1} > 50.0"),
        format!("SELECT COUNT(*), {cat} FROM {e} GROUP BY {cat}"),
        format!(
            "SELECT T2.name FROM {link} AS T1 JOIN {e2} AS T2 ON T1.{e2id} = T2.id \
             WHERE T1.year = 2005"
        ),
        format!("SELECT name FROM {e} WHERE {cat} = '{v0}' OR {cat} = '{v1}'"),
        format!("SELECT MAX({m2}) FROM {e} WHERE {cat} = '{v1}'"),
        // -- Hard --
        format!("SELECT name FROM {e} WHERE {m1} > (SELECT AVG({m1}) FROM {e})"),
        format!("SELECT MIN({m1}), MAX({m1}) FROM {e} WHERE {cat} = '{v0}' AND {m2} > 10.0"),
        format!("SELECT COUNT(*), {cat} FROM {e} WHERE {m1} > 20.0 AND {m2} < 90.0 GROUP BY {cat}"),
        // -- Extra hard --
        format!(
            "SELECT T2.name, COUNT(*) FROM {link} AS T1 JOIN {e} AS T2 ON T1.{eid} = T2.id \
             WHERE T2.{cat} = '{v0}' GROUP BY T2.name ORDER BY COUNT(*) DESC LIMIT 5"
        ),
        format!(
            "SELECT name FROM {e} WHERE {m1} > (SELECT AVG({m1}) FROM {e}) AND {cat} = '{v0}' \
             ORDER BY {m1} DESC LIMIT 3"
        ),
        format!(
            "SELECT T2.name FROM {link} AS T1 JOIN {e2} AS T2 ON T1.{e2id} = T2.id \
             JOIN {e} AS T3 ON T1.{eid} = T3.id WHERE T3.{cat} = '{v1}' AND T1.year > 2000 \
             ORDER BY T3.{m1} DESC LIMIT 5"
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_24_databases() {
        let c = SpiderCorpus::build();
        assert_eq!(c.databases.len(), 24);
        for d in &c.databases {
            assert_eq!(d.db.schema.tables.len(), 3);
            assert_eq!(d.db.schema.column_count(), 12);
            assert!(d.db.total_rows() >= 200, "{}", d.db.schema.name);
            assert!(d.db.schema.validate().is_empty());
        }
    }

    #[test]
    fn database_names_are_unique() {
        let c = SpiderCorpus::build();
        let mut names: Vec<&str> = c
            .databases
            .iter()
            .map(|d| d.db.schema.name.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 24);
    }

    #[test]
    fn patterns_run_nonempty_on_their_database() {
        // A subset keeps the test fast.
        let c = SpiderCorpus::build_n(4);
        for d in &c.databases {
            for sql in &d.seed_patterns {
                let rs =
                    d.db.run(sql)
                        .unwrap_or_else(|e| panic!("{}: `{sql}`: {e}", d.db.schema.name));
                assert!(!rs.is_empty(), "{}: `{sql}` empty", d.db.schema.name);
            }
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = SpiderCorpus::build_n(2);
        let b = SpiderCorpus::build_n(2);
        assert_eq!(
            a.databases[0].db.total_rows(),
            b.databases[0].db.total_rows()
        );
    }
}
