//! Deterministic content-generation helpers shared by the domain
//! builders.

use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::Rng;
use sb_engine::Value;

/// Pick from a slice with explicit weights (deterministic given the RNG).
pub fn weighted<'a, T>(rng: &mut StdRng, items: &'a [(T, f64)]) -> &'a T {
    let dist = WeightedIndex::new(items.iter().map(|(_, w)| *w)).expect("weights valid");
    &items[dist.sample(rng)].0
}

/// Zipf-ish rank sampler over `n` items with skew `s` (1.0 ≈ classic
/// Zipf): realistic long-tail categorical data.
pub fn zipf(rng: &mut StdRng, n: usize, s: f64) -> usize {
    debug_assert!(n > 0);
    // Inverse-CDF on the harmonic weights, computed incrementally; n is
    // small (≤ a few hundred) in all call sites.
    let norm: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
    let target = rng.gen::<f64>() * norm;
    let mut acc = 0.0;
    for k in 1..=n {
        acc += 1.0 / (k as f64).powf(s);
        if acc >= target {
            return k - 1;
        }
    }
    n - 1
}

/// A float uniform in `[lo, hi]`, rounded to `decimals`.
pub fn float_in(rng: &mut StdRng, lo: f64, hi: f64, decimals: u32) -> f64 {
    let v = rng.gen_range(lo..=hi);
    let m = 10f64.powi(decimals as i32);
    (v * m).round() / m
}

/// NULL with probability `p`, otherwise the value.
pub fn maybe_null(rng: &mut StdRng, p: f64, v: Value) -> Value {
    if rng.gen_bool(p) {
        Value::Null
    } else {
        v
    }
}

/// Deterministic pseudo-text: `n` words drawn from a topic vocabulary.
/// Used for project objectives, descriptions etc. where only length and
/// token statistics matter.
pub fn pseudo_text(rng: &mut StdRng, vocabulary: &[&str], n_words: usize) -> String {
    let mut out = String::new();
    for i in 0..n_words {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(vocabulary[rng.gen_range(0..vocabulary.len())]);
    }
    out
}

/// Scale a real row count down by the size divisor, keeping at least
/// `min` rows so that tiny builds still have joinable content.
pub fn scaled(real: f64, divisor: f64, min: usize) -> usize {
    ((real / divisor).round() as usize).max(min)
}

/// A readable identifier like `"GA-2017-0042"`.
pub fn coded_id(prefix: &str, year: i64, n: i64) -> String {
    format!("{prefix}-{year}-{n:04}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn zipf_favors_low_ranks() {
        let mut r = rng();
        let mut counts = [0usize; 10];
        for _ in 0..2000 {
            counts[zipf(&mut r, 10, 1.0)] += 1;
        }
        assert!(counts[0] > counts[4], "{counts:?}");
        assert!(counts[0] > counts[9], "{counts:?}");
    }

    #[test]
    fn float_in_respects_bounds_and_rounding() {
        let mut r = rng();
        for _ in 0..100 {
            let v = float_in(&mut r, 0.0, 2.0, 2);
            assert!((0.0..=2.0).contains(&v));
            assert_eq!((v * 100.0).round() / 100.0, v);
        }
    }

    #[test]
    fn scaled_applies_floor() {
        assert_eq!(scaled(86_000_000.0, 1_000.0, 10), 86_000);
        assert_eq!(scaled(5.0, 1_000.0, 10), 10);
    }

    #[test]
    fn weighted_picks_all_heavy_items_eventually() {
        let mut r = rng();
        let items = [("a", 10.0), ("b", 1.0)];
        let mut saw_a = false;
        for _ in 0..50 {
            if *weighted(&mut r, &items) == "a" {
                saw_a = true;
            }
        }
        assert!(saw_a);
    }

    #[test]
    fn pseudo_text_word_count() {
        let mut r = rng();
        let t = pseudo_text(&mut r, &["alpha", "beta"], 7);
        assert_eq!(t.split(' ').count(), 7);
    }

    #[test]
    fn coded_id_format() {
        assert_eq!(coded_id("GA", 2017, 42), "GA-2017-0042");
    }
}
