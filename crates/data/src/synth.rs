//! Synthetic kernel-bench content: a fact/dimension pair sized by an
//! explicit scale knob.
//!
//! Unlike the domain builders (which reproduce the paper's schemas at a
//! [`crate::SizeClass`]-governed fraction of real deployments), this
//! generator exists purely to exercise the engine's operator kernels at
//! controlled row counts: a fact table `t` with a dictionary-friendly
//! 16-value group key, a numeric measure, a small-domain flag, and a
//! foreign key that hits a 1,024-row dimension `dim` exactly once per
//! row. Filters, hash joins, and grouped aggregations over it have
//! known selectivities, which is what a scaling curve needs.
//!
//! [`SynthScale`] is the `--scale` knob (`10k` / `100k` / `1m`): the
//! microbench harness accepts `cargo bench -p sb-bench -- --scale 100k`
//! to restrict its `columnar_operators` and `scaling_curve` groups to
//! one point of the curve. Generation is a pure function of the row
//! count — no RNG — so every scale is reproducible by construction.

use sb_engine::{Database, Value};
use sb_schema::{Column, ColumnType, Schema, TableDef};

/// The supported scales of the synthetic kernel workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthScale {
    /// 10,000 fact rows — cache-resident, kernel-overhead dominated.
    Rows10k,
    /// 100,000 fact rows — the mid point of the curve.
    Rows100k,
    /// 1,000,000 fact rows — memory-bandwidth dominated.
    Rows1m,
}

impl SynthScale {
    /// Every scale, ascending — the full curve.
    pub const ALL: [SynthScale; 3] = [
        SynthScale::Rows10k,
        SynthScale::Rows100k,
        SynthScale::Rows1m,
    ];

    /// Fact-table rows at this scale.
    pub fn rows(self) -> usize {
        match self {
            SynthScale::Rows10k => 10_000,
            SynthScale::Rows100k => 100_000,
            SynthScale::Rows1m => 1_000_000,
        }
    }

    /// The knob spelling, also used in benchmark names (`filter_100k`).
    pub fn label(self) -> &'static str {
        match self {
            SynthScale::Rows10k => "10k",
            SynthScale::Rows100k => "100k",
            SynthScale::Rows1m => "1m",
        }
    }

    /// Parse a `--scale` argument (case-insensitive label).
    pub fn parse(s: &str) -> Option<SynthScale> {
        SynthScale::ALL
            .into_iter()
            .find(|sc| sc.label().eq_ignore_ascii_case(s.trim()))
    }
}

/// Build the synthetic kernel database with `n` fact rows.
///
/// `t.grp` cycles through 16 dictionary values, `t.val` through 1,000
/// evenly spaced floats in `[0, 1)`, `t.flag` through 7 small ints, and
/// `t.fk` through the 1,024 dimension keys — so predicate selectivities
/// and join fan-outs are identical at every scale and the curve
/// measures data volume, nothing else.
pub fn synth_db(n: usize) -> Database {
    let schema = Schema::new("synth")
        .with_table(TableDef::new(
            "t",
            vec![
                Column::pk("id", ColumnType::Int),
                Column::new("grp", ColumnType::Text),
                Column::new("val", ColumnType::Float),
                Column::new("flag", ColumnType::Int),
                Column::new("fk", ColumnType::Int),
            ],
        ))
        .with_table(TableDef::new(
            "dim",
            vec![
                Column::pk("id", ColumnType::Int),
                Column::new("name", ColumnType::Text),
            ],
        ));
    let mut db = Database::new(schema);
    let groups: Vec<String> = (0..16).map(|i| format!("g{i:02}")).collect();
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Text(groups[i % 16].clone()),
                Value::Float((i % 1000) as f64 * 0.001),
                Value::Int((i % 7) as i64),
                Value::Int((i % 1024) as i64),
            ]
        })
        .collect();
    db.table_mut("t").unwrap().push_rows(rows);
    let dim_rows: Vec<Vec<Value>> = (0..1024)
        .map(|i| vec![Value::Int(i as i64), Value::Text(format!("d{i:04}"))])
        .collect();
    db.table_mut("dim").unwrap().push_rows(dim_rows);
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_parse_and_size() {
        assert_eq!(SynthScale::parse("10k"), Some(SynthScale::Rows10k));
        assert_eq!(SynthScale::parse("100K"), Some(SynthScale::Rows100k));
        assert_eq!(SynthScale::parse(" 1m "), Some(SynthScale::Rows1m));
        assert_eq!(SynthScale::parse("1g"), None);
        assert!(SynthScale::ALL
            .windows(2)
            .all(|w| w[0].rows() < w[1].rows()));
    }

    #[test]
    fn synth_db_is_deterministic_with_known_selectivities() {
        let db = synth_db(10_000);
        assert_eq!(db.table("t").unwrap().len(), 10_000);
        assert_eq!(db.table("dim").unwrap().len(), 1024);
        // 16 groups regardless of scale.
        let q = sb_sql::parse("SELECT grp, COUNT(*) FROM t GROUP BY grp").unwrap();
        assert_eq!(db.run_query(&q).unwrap().rows.len(), 16);
        // Every fact row joins exactly one dimension row.
        let q = sb_sql::parse("SELECT COUNT(*) FROM t JOIN dim ON t.fk = dim.id").unwrap();
        assert_eq!(
            db.run_query(&q).unwrap().rows[0][0],
            sb_engine::Value::Int(10_000)
        );
        // Two builds agree byte for byte on a probe query.
        let probe = sb_sql::parse("SELECT id FROM t WHERE val > 0.5 AND flag = 3").unwrap();
        let a = format!("{:?}", db.run_query(&probe).unwrap());
        let b = format!("{:?}", synth_db(10_000).run_query(&probe).unwrap());
        assert_eq!(a, b);
    }
}
