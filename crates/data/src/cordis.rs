//! CORDIS — the EU research-policy database (19 tables, 82 columns).
//!
//! Reproduces the schema of the CORDIS 2022-08 snapshot used by the paper:
//! projects funded under the EU framework programmes, the participating
//! institutions and people, and the coding hierarchies (topics, subject
//! areas, programmes, ERC panels, NUTS territorial units) with their
//! "highly specific enigmatic EU terminology".

use crate::util::*;
use crate::{DomainData, SizeClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sb_engine::{Database, Value};
use sb_schema::{Column, ColumnType, EnhancedSchema, ForeignKey, Schema, TableDef};

/// Real deployment size (Table 1): 671 K rows, 1 GB.
pub const REAL_ROWS: f64 = 671_000.0;
/// Real deployment byte size.
pub const REAL_BYTES: f64 = 1.0e9;

const FRAMEWORKS: [&str; 6] = ["FP5", "FP6", "FP7", "H2020", "HORIZON", "CIP"];
const FUNDING_SCHEMES: [&str; 10] = [
    "RIA", "IA", "CSA", "ERC-STG", "ERC-COG", "ERC-ADG", "MSCA-IF", "MSCA-ITN", "SME-1", "SME-2",
];
const ACTIVITY_TYPES: [(&str, &str); 5] = [
    ("HES", "Higher or secondary education establishments"),
    ("REC", "Research organisations"),
    ("PRC", "Private for-profit entities"),
    ("PUB", "Public bodies"),
    ("OTH", "Other"),
];
const ROLES: [(&str, &str); 3] = [
    ("coordinator", "Project coordinator"),
    ("participant", "Project participant"),
    ("thirdParty", "Linked third party"),
];
const COUNTRIES: [(&str, &str, &str); 20] = [
    ("DE", "DEU", "Germany"),
    ("FR", "FRA", "France"),
    ("IT", "ITA", "Italy"),
    ("ES", "ESP", "Spain"),
    ("UK", "GBR", "United Kingdom"),
    ("NL", "NLD", "Netherlands"),
    ("BE", "BEL", "Belgium"),
    ("CH", "CHE", "Switzerland"),
    ("AT", "AUT", "Austria"),
    ("SE", "SWE", "Sweden"),
    ("EL", "GRC", "Greece"),
    ("PT", "PRT", "Portugal"),
    ("PL", "POL", "Poland"),
    ("FI", "FIN", "Finland"),
    ("DK", "DNK", "Denmark"),
    ("IE", "IRL", "Ireland"),
    ("NO", "NOR", "Norway"),
    ("CZ", "CZE", "Czechia"),
    ("HU", "HUN", "Hungary"),
    ("RO", "ROU", "Romania"),
];
const TOPIC_WORDS: [&str; 24] = [
    "information",
    "media",
    "energy",
    "climate",
    "health",
    "transport",
    "security",
    "nuclear",
    "fission",
    "materials",
    "nanotechnology",
    "food",
    "agriculture",
    "marine",
    "space",
    "robotics",
    "computing",
    "society",
    "innovation",
    "environment",
    "mobility",
    "photonics",
    "manufacturing",
    "biotechnology",
];
const ERC_DOMAINS: [(&str, &str); 3] = [
    ("PE", "Physical Sciences and Engineering"),
    ("LS", "Life Sciences"),
    ("SH", "Social Sciences and Humanities"),
];
const FIRST_NAMES: [&str; 16] = [
    "Anna",
    "Luca",
    "Marie",
    "Jan",
    "Sofia",
    "Pierre",
    "Elena",
    "Thomas",
    "Ingrid",
    "Marco",
    "Katarzyna",
    "Miguel",
    "Eva",
    "Lars",
    "Chiara",
    "Peter",
];
const LAST_NAMES: [&str; 16] = [
    "Muller",
    "Rossi",
    "Dubois",
    "Garcia",
    "Jansen",
    "Novak",
    "Andersson",
    "Papadopoulos",
    "Kowalski",
    "Silva",
    "Nielsen",
    "Bauer",
    "Moreau",
    "Ricci",
    "Virtanen",
    "Horvath",
];

/// The CORDIS schema: 19 tables, 82 columns (asserted by crate tests).
pub fn schema() -> Schema {
    use ColumnType::*;
    Schema::new("cordis")
        .with_table(TableDef::new(
            "projects",
            vec![
                Column::pk("unics_id", Int),
                Column::new("acronym", Text),
                Column::new("title", Text),
                Column::new("objective", Text),
                Column::new("total_cost", Float),
                Column::new("ec_max_contribution", Float),
                Column::new("start_year", Int),
                Column::new("end_year", Int),
                Column::new("homepage", Text),
                Column::new("ec_call", Text),
                Column::new("cordis_ref", Text),
                Column::new("status", Text),
                Column::new("framework_program", Text),
                Column::new("funding_scheme", Text),
                Column::new("principal_investigator", Int),
            ],
        ))
        .with_table(TableDef::new(
            "people",
            vec![
                Column::pk("unics_id", Int),
                Column::new("full_name", Text),
                Column::new("title", Text),
                Column::new("email_domain", Text),
            ],
        ))
        .with_table(TableDef::new(
            "institutions",
            vec![
                Column::pk("unics_id", Int),
                Column::new("institution_name", Text),
                Column::new("country_id", Int),
                Column::new("geocode_regions_3", Text),
                Column::new("website", Text),
                Column::new("short_name", Text),
                Column::new("city", Text),
                Column::new("postal_code", Text),
            ],
        ))
        .with_table(TableDef::new(
            "project_members",
            vec![
                Column::pk("unics_id", Int),
                Column::new("project", Int),
                Column::new("institution_id", Int),
                Column::new("member_name", Text),
                Column::new("activity_type", Text),
                Column::new("country", Text),
                Column::new("city", Text),
                Column::new("member_role", Text),
                Column::new("ec_contribution", Float),
                Column::new("pic_number", Text),
                Column::new("postal_code", Text),
                Column::new("street", Text),
            ],
        ))
        .with_table(TableDef::new(
            "ec_framework_programs",
            vec![Column::pk("name", Text), Column::new("description", Text)],
        ))
        .with_table(TableDef::new(
            "funding_schemes",
            vec![
                Column::pk("code", Text),
                Column::new("title", Text),
                Column::new("description", Text),
            ],
        ))
        .with_table(TableDef::new(
            "topics",
            vec![
                Column::pk("code", Text),
                Column::new("title", Text),
                Column::new("rcn", Int),
            ],
        ))
        .with_table(TableDef::new(
            "project_topics",
            vec![Column::new("project", Int), Column::new("topic", Text)],
        ))
        .with_table(TableDef::new(
            "subject_areas",
            vec![
                Column::pk("code", Text),
                Column::new("title", Text),
                Column::new("description", Text),
            ],
        ))
        .with_table(TableDef::new(
            "project_subject_areas",
            vec![
                Column::new("project", Int),
                Column::new("subject_area", Text),
            ],
        ))
        .with_table(TableDef::new(
            "programmes",
            vec![
                Column::pk("code", Text),
                Column::new("title", Text),
                Column::new("short_name", Text),
                Column::new("parent", Text),
                Column::new("rcn", Int),
            ],
        ))
        .with_table(TableDef::new(
            "project_programmes",
            vec![Column::new("project", Int), Column::new("programme", Text)],
        ))
        .with_table(TableDef::new(
            "erc_research_domains",
            vec![Column::pk("code", Text), Column::new("description", Text)],
        ))
        .with_table(TableDef::new(
            "erc_panels",
            vec![
                Column::pk("code", Text),
                Column::new("description", Text),
                Column::new("part_of", Text),
            ],
        ))
        .with_table(TableDef::new(
            "project_erc_panels",
            vec![Column::new("project", Int), Column::new("panel", Text)],
        ))
        .with_table(TableDef::new(
            "eu_territorial_units",
            vec![
                Column::pk("geocode_regions", Text),
                Column::new("description", Text),
                Column::new("geocode_level", Int),
                Column::new("nuts_version", Text),
                Column::new("country_id", Int),
            ],
        ))
        .with_table(TableDef::new(
            "countries",
            vec![
                Column::pk("unics_id", Int),
                Column::new("country_name", Text),
                Column::new("country_code2", Text),
                Column::new("country_code3", Text),
                Column::new("geocode_country", Text),
            ],
        ))
        .with_table(TableDef::new(
            "activity_types",
            vec![Column::pk("code", Text), Column::new("description", Text)],
        ))
        .with_table(TableDef::new(
            "project_member_roles",
            vec![Column::pk("code", Text), Column::new("description", Text)],
        ))
        .with_fk(ForeignKey::new(
            "projects",
            "framework_program",
            "ec_framework_programs",
            "name",
        ))
        .with_fk(ForeignKey::new(
            "projects",
            "funding_scheme",
            "funding_schemes",
            "code",
        ))
        .with_fk(ForeignKey::new(
            "projects",
            "principal_investigator",
            "people",
            "unics_id",
        ))
        .with_fk(ForeignKey::new(
            "institutions",
            "country_id",
            "countries",
            "unics_id",
        ))
        .with_fk(ForeignKey::new(
            "institutions",
            "geocode_regions_3",
            "eu_territorial_units",
            "geocode_regions",
        ))
        .with_fk(ForeignKey::new(
            "project_members",
            "project",
            "projects",
            "unics_id",
        ))
        .with_fk(ForeignKey::new(
            "project_members",
            "institution_id",
            "institutions",
            "unics_id",
        ))
        .with_fk(ForeignKey::new(
            "project_members",
            "activity_type",
            "activity_types",
            "code",
        ))
        .with_fk(ForeignKey::new(
            "project_members",
            "member_role",
            "project_member_roles",
            "code",
        ))
        .with_fk(ForeignKey::new(
            "project_topics",
            "project",
            "projects",
            "unics_id",
        ))
        .with_fk(ForeignKey::new("project_topics", "topic", "topics", "code"))
        .with_fk(ForeignKey::new(
            "project_subject_areas",
            "project",
            "projects",
            "unics_id",
        ))
        .with_fk(ForeignKey::new(
            "project_subject_areas",
            "subject_area",
            "subject_areas",
            "code",
        ))
        .with_fk(ForeignKey::new(
            "project_programmes",
            "project",
            "projects",
            "unics_id",
        ))
        .with_fk(ForeignKey::new(
            "project_programmes",
            "programme",
            "programmes",
            "code",
        ))
        .with_fk(ForeignKey::new(
            "erc_panels",
            "part_of",
            "erc_research_domains",
            "code",
        ))
        .with_fk(ForeignKey::new(
            "project_erc_panels",
            "project",
            "projects",
            "unics_id",
        ))
        .with_fk(ForeignKey::new(
            "project_erc_panels",
            "panel",
            "erc_panels",
            "code",
        ))
        .with_fk(ForeignKey::new(
            "eu_territorial_units",
            "country_id",
            "countries",
            "unics_id",
        ))
}

/// Build the populated domain at a size class.
pub fn build(size: SizeClass) -> DomainData {
    let mut rng = StdRng::seed_from_u64(0xC0_8D15);
    let schema = schema();
    let mut db = Database::new(schema);
    let d = size.divisor();

    let n_projects = scaled(35_000.0, d, 60);
    let n_people = scaled(30_000.0, d, 50);
    let n_institutions = scaled(28_000.0, d, 40);
    let n_members = scaled(260_000.0, d, 150);
    let n_topics = scaled(8_000.0, d, 30);
    let n_proj_topics = scaled(90_000.0, d, 80);
    let n_subject_areas = 24usize.min(TOPIC_WORDS.len());
    let n_proj_subjects = scaled(60_000.0, d, 60);
    let n_programmes = scaled(6_000.0, d, 25);
    let n_proj_programmes = scaled(85_000.0, d, 70);
    let n_panels = 27usize;
    let n_proj_panels = scaled(10_000.0, d, 20);
    let n_nuts = scaled(2_000.0, d, 40).max(40);

    // Dimension tables first.
    {
        let t = db.table_mut("ec_framework_programs").unwrap();
        for f in FRAMEWORKS {
            t.push_rows(vec![vec![
                f.into(),
                format!("EU framework programme {f}").into(),
            ]]);
        }
    }
    {
        let t = db.table_mut("funding_schemes").unwrap();
        for s in FUNDING_SCHEMES {
            t.push_rows(vec![vec![
                s.into(),
                format!("Funding scheme {s}").into(),
                format!("Grants awarded under the {s} instrument").into(),
            ]]);
        }
    }
    {
        let t = db.table_mut("activity_types").unwrap();
        for (code, desc) in ACTIVITY_TYPES {
            t.push_rows(vec![vec![code.into(), desc.into()]]);
        }
    }
    {
        let t = db.table_mut("project_member_roles").unwrap();
        for (code, desc) in ROLES {
            t.push_rows(vec![vec![code.into(), desc.into()]]);
        }
    }
    {
        let t = db.table_mut("countries").unwrap();
        for (i, (c2, c3, name)) in COUNTRIES.iter().enumerate() {
            t.push_rows(vec![vec![
                Value::Int(i as i64 + 1),
                (*name).into(),
                (*c2).into(),
                (*c3).into(),
                (*c2).into(),
            ]]);
        }
    }
    {
        let t = db.table_mut("erc_research_domains").unwrap();
        for (code, desc) in ERC_DOMAINS {
            t.push_rows(vec![vec![code.into(), desc.into()]]);
        }
    }
    {
        let t = db.table_mut("erc_panels").unwrap();
        for i in 0..n_panels {
            let (dom, _) = ERC_DOMAINS[i % 3];
            t.push_rows(vec![vec![
                format!("{dom}{}", i / 3 + 1).into(),
                format!("ERC panel {dom}{}", i / 3 + 1).into(),
                dom.into(),
            ]]);
        }
    }
    {
        let t = db.table_mut("eu_territorial_units").unwrap();
        for i in 0..n_nuts {
            let country = &COUNTRIES[i % COUNTRIES.len()];
            let level = (i % 4) as i64;
            t.push_rows(vec![vec![
                format!("{}{}", country.0, i / COUNTRIES.len()).into(),
                format!("{} region {}", country.2, i / COUNTRIES.len()).into(),
                Value::Int(level),
                "2021".into(),
                Value::Int((i % COUNTRIES.len()) as i64 + 1),
            ]]);
        }
    }
    {
        let t = db.table_mut("subject_areas").unwrap();
        for (i, w) in TOPIC_WORDS.iter().take(n_subject_areas).enumerate() {
            t.push_rows(vec![vec![
                format!("SA{i:02}").into(),
                format!("{w} research").into(),
                format!("Projects concerning {w}").into(),
            ]]);
        }
    }
    {
        let t = db.table_mut("topics").unwrap();
        for i in 0..n_topics {
            let w = TOPIC_WORDS[i % TOPIC_WORDS.len()];
            t.push_rows(vec![vec![
                format!("T-{w}-{i:04}").to_uppercase().into(),
                format!("{w} call {i}").into(),
                Value::Int(10_000 + i as i64),
            ]]);
        }
    }
    {
        let t = db.table_mut("programmes").unwrap();
        for i in 0..n_programmes {
            let fw = FRAMEWORKS[i % FRAMEWORKS.len()];
            t.push_rows(vec![vec![
                format!("{fw}-PRG-{i:04}").into(),
                format!("Programme {i} of {fw}").into(),
                format!("PRG{i:04}").into(),
                if i == 0 {
                    Value::Null
                } else {
                    format!("{fw}-PRG-{:04}", i / 2).into()
                },
                Value::Int(20_000 + i as i64),
            ]]);
        }
    }
    {
        let t = db.table_mut("people").unwrap();
        for i in 0..n_people {
            let first = FIRST_NAMES[i % FIRST_NAMES.len()];
            let last = LAST_NAMES[(i / FIRST_NAMES.len()) % LAST_NAMES.len()];
            t.push_rows(vec![vec![
                Value::Int(i as i64 + 1),
                format!("{first} {last}").into(),
                ["Dr", "Prof", "Mr", "Ms"][i % 4].into(),
                format!(
                    "{}.example.eu",
                    LAST_NAMES[i % LAST_NAMES.len()].to_lowercase()
                )
                .into(),
            ]]);
        }
    }
    {
        let t = db.table_mut("institutions").unwrap();
        for i in 0..n_institutions {
            let country_idx = zipf(&mut rng, COUNTRIES.len(), 0.8);
            let country = &COUNTRIES[country_idx];
            let kind = [
                "University of",
                "Technical University of",
                "Institute of",
                "Center for",
            ][i % 4];
            let word = TOPIC_WORDS[i % TOPIC_WORDS.len()];
            t.push_rows(vec![vec![
                Value::Int(i as i64 + 1),
                format!("{kind} {word} {i}").into(),
                Value::Int(country_idx as i64 + 1),
                format!("{}{}", country.0, i % (n_nuts / COUNTRIES.len()).max(1)).into(),
                format!("https://inst{i}.example.eu").into(),
                format!("INST{i:05}").into(),
                format!("{} City {}", country.2, i % 40).into(),
                format!("{:05}", 10_000 + i % 80_000).into(),
            ]]);
        }
    }
    {
        let t = db.table_mut("projects").unwrap();
        for i in 0..n_projects {
            let fw = *weighted(
                &mut rng,
                &[
                    ("H2020", 10.0),
                    ("FP7", 8.0),
                    ("HORIZON", 5.0),
                    ("FP6", 3.0),
                    ("FP5", 1.0),
                    ("CIP", 0.5),
                ],
            );
            let scheme = FUNDING_SCHEMES[zipf(&mut rng, FUNDING_SCHEMES.len(), 0.7)];
            let start = rng.gen_range(2000..=2022i64);
            let cost = float_in(&mut rng, 5.0e4, 1.2e7, 2);
            let contribution = (cost * rng.gen_range(0.5..1.0) * 100.0).round() / 100.0;
            let w1 = TOPIC_WORDS[rng.gen_range(0..TOPIC_WORDS.len())];
            let w2 = TOPIC_WORDS[rng.gen_range(0..TOPIC_WORDS.len())];
            t.push_rows(vec![vec![
                Value::Int(i as i64 + 1),
                format!("{}{}", w1.to_uppercase(), i % 100).into(),
                format!("Advancing {w1} through {w2}").into(),
                pseudo_text(&mut rng, &TOPIC_WORDS, 16).into(),
                Value::Float(cost),
                Value::Float(contribution),
                Value::Int(start),
                Value::Int(start + rng.gen_range(1..=5)),
                format!("https://project{i}.example.eu").into(),
                format!("{fw}-CALL-{}", start).into(),
                format!("REF{:06}", i).into(),
                (*weighted(
                    &mut rng,
                    &[("SIGNED", 6.0), ("CLOSED", 10.0), ("TERMINATED", 1.0)],
                ))
                .into(),
                fw.into(),
                scheme.into(),
                Value::Int(rng.gen_range(0..n_people as i64) + 1),
            ]]);
        }
    }
    {
        let t = db.table_mut("project_members").unwrap();
        for i in 0..n_members {
            let project = rng.gen_range(0..n_projects as i64) + 1;
            let inst = rng.gen_range(0..n_institutions as i64) + 1;
            let country = &COUNTRIES[zipf(&mut rng, COUNTRIES.len(), 0.8)];
            let (activity, _) = ACTIVITY_TYPES[zipf(&mut rng, ACTIVITY_TYPES.len(), 0.6)];
            let (role, _) = ROLES[if i % 7 == 0 { 0 } else { 1 }];
            t.push_rows(vec![vec![
                Value::Int(i as i64 + 1),
                Value::Int(project),
                Value::Int(inst),
                format!("Member institution {inst}").into(),
                activity.into(),
                country.0.into(),
                format!("{} City {}", country.2, i % 40).into(),
                role.into(),
                Value::Float(float_in(&mut rng, 1.0e4, 2.0e6, 2)),
                format!("{:09}", 100_000_000 + i).into(),
                format!("{:05}", 10_000 + i % 80_000).into(),
                format!("Science Street {}", i % 200).into(),
            ]]);
        }
    }
    // Link tables.
    link(
        &mut db,
        &mut rng,
        "project_topics",
        n_proj_topics,
        n_projects,
        |rng, _| {
            let i = rng.gen_range(0..n_topics);
            let w = TOPIC_WORDS[i % TOPIC_WORDS.len()];
            Value::Text(format!("T-{w}-{i:04}").to_uppercase())
        },
    );
    link(
        &mut db,
        &mut rng,
        "project_subject_areas",
        n_proj_subjects,
        n_projects,
        |rng, _| Value::Text(format!("SA{:02}", rng.gen_range(0..n_subject_areas))),
    );
    link(
        &mut db,
        &mut rng,
        "project_programmes",
        n_proj_programmes,
        n_projects,
        |rng, _| {
            let i = rng.gen_range(0..n_programmes);
            Value::Text(format!("{}-PRG-{i:04}", FRAMEWORKS[i % FRAMEWORKS.len()]))
        },
    );
    link(
        &mut db,
        &mut rng,
        "project_erc_panels",
        n_proj_panels,
        n_projects,
        |rng, _| {
            let i = rng.gen_range(0..n_panels);
            Value::Text(format!("{}{}", ERC_DOMAINS[i % 3].0, i / 3 + 1))
        },
    );

    let enhanced = enhance(&db);
    DomainData {
        db,
        enhanced,
        real_rows: REAL_ROWS,
        real_bytes: REAL_BYTES,
        seed_patterns: seed_patterns(),
    }
}

fn link(
    db: &mut Database,
    rng: &mut StdRng,
    table: &str,
    n: usize,
    n_projects: usize,
    mut other: impl FnMut(&mut StdRng, usize) -> Value,
) {
    let t = db.table_mut(table).unwrap();
    for i in 0..n {
        let project = rng.gen_range(0..n_projects as i64) + 1;
        let o = other(rng, i);
        t.push_rows(vec![vec![Value::Int(project), o]]);
    }
}

/// The one-shot expert refinement of the enhanced schema (§3.3.2).
fn enhance(db: &Database) -> EnhancedSchema {
    let profile = sb_engine::profile_database(db);
    let mut e = EnhancedSchema::infer(db.schema.clone(), &profile);
    e.set_table_alias("ec_framework_programs", "EU framework programmes");
    e.set_table_alias("eu_territorial_units", "NUTS territorial units");
    e.set_column_alias("projects", "ec_max_contribution", "maximum EC contribution");
    e.set_column_alias("projects", "total_cost", "total cost");
    e.set_column_alias("projects", "ec_call", "EC call identifier");
    e.set_column_alias(
        "projects",
        "principal_investigator",
        "principal investigator",
    );
    e.set_column_alias("institutions", "geocode_regions_3", "NUTS level 3 region");
    e.set_column_alias(
        "eu_territorial_units",
        "geocode_regions",
        "NUTS region code",
    );
    e.set_column_alias("eu_territorial_units", "geocode_level", "NUTS level");
    e.set_column_alias("project_members", "ec_contribution", "EC contribution");
    e.set_column_alias(
        "project_members",
        "pic_number",
        "participant identification code",
    );
    // Clear the inferred per-table measure groups, then declare the unit
    // groups explicitly: money and years.
    let tables: Vec<String> = e.schema.tables.iter().map(|t| t.name.clone()).collect();
    for t in &tables {
        let cols: Vec<String> = e
            .schema
            .table(t)
            .map(|d| d.columns.iter().map(|c| c.name.clone()).collect())
            .unwrap_or_default();
        for c in cols {
            e.clear_math_group(t, &c);
        }
    }
    // Money columns form a math group (cost - contribution is meaningful).
    e.set_math_group("projects", "total_cost", "euro");
    e.set_math_group("projects", "ec_max_contribution", "euro");
    // Years: meaningful to compare/group, not to average.
    for col in ["start_year", "end_year"] {
        e.set_non_aggregatable("projects", col, true);
        e.set_categorical("projects", col, true);
    }
    e.set_math_group("projects", "start_year", "year");
    e.set_math_group("projects", "end_year", "year");
    for (t, c) in [
        ("projects", "framework_program"),
        ("projects", "funding_scheme"),
        ("projects", "status"),
        ("project_members", "activity_type"),
        ("project_members", "country"),
        ("project_members", "member_role"),
        ("eu_territorial_units", "geocode_level"),
    ] {
        e.set_categorical(t, c, true);
    }
    // The cardinality heuristic over-fires on scaled-down content; clear
    // flags that would be wrong at full size.
    for (t, c) in [
        ("projects", "total_cost"),
        ("projects", "ec_max_contribution"),
        ("project_members", "ec_contribution"),
        ("projects", "acronym"),
        ("projects", "title"),
        ("people", "full_name"),
        ("institutions", "institution_name"),
    ] {
        e.set_categorical(t, c, false);
    }
    e
}

/// Hand-authored seed SQL patterns in the style of the paper's expert
/// queries, spanning all four hardness classes.
pub fn seed_patterns() -> Vec<String> {
    [
        // -- Easy --
        "SELECT p.title FROM projects AS p WHERE p.framework_program = 'H2020'",
        "SELECT p.acronym FROM projects AS p WHERE p.start_year = 2020",
        "SELECT i.institution_name FROM institutions AS i",
        "SELECT COUNT(*) FROM project_members AS m WHERE m.country = 'DE'",
        "SELECT f.description FROM funding_schemes AS f WHERE f.code = 'ERC-STG'",
        // -- Medium --
        "SELECT p.title, p.total_cost FROM projects AS p WHERE p.framework_program = 'FP7' AND p.start_year = 2010",
        "SELECT COUNT(*), p.framework_program FROM projects AS p GROUP BY p.framework_program",
        "SELECT p.acronym FROM projects AS p JOIN project_members AS m ON m.project = p.unics_id WHERE m.activity_type = 'HES'",
        "SELECT AVG(p.ec_max_contribution) FROM projects AS p WHERE p.funding_scheme = 'RIA'",
        "SELECT p.title FROM projects AS p WHERE p.total_cost > 5000000.0 AND p.framework_program = 'H2020'",
        "SELECT m.member_name FROM project_members AS m WHERE m.member_role = 'coordinator' AND m.country = 'FR'",
        // -- Hard --
        "SELECT MIN(p.total_cost), MAX(p.total_cost) FROM projects AS p WHERE p.framework_program = 'H2020' AND p.start_year = 2018",
        "SELECT pe.full_name FROM people AS pe WHERE pe.unics_id IN (SELECT p.principal_investigator FROM projects AS p)",
        "SELECT COUNT(*), m.activity_type FROM project_members AS m WHERE m.country = 'DE' AND m.member_role = 'participant' GROUP BY m.activity_type",
        "SELECT p.acronym, p.total_cost - p.ec_max_contribution FROM projects AS p WHERE p.total_cost - p.ec_max_contribution > 1000000.0 AND p.framework_program = 'H2020'",
        // -- Extra hard --
        "SELECT COUNT(*), p.framework_program FROM projects AS p JOIN project_members AS m ON m.project = p.unics_id WHERE m.activity_type = 'HES' GROUP BY p.framework_program ORDER BY COUNT(*) DESC LIMIT 3",
        "SELECT p.title FROM projects AS p WHERE p.ec_max_contribution > (SELECT AVG(p2.ec_max_contribution) FROM projects AS p2) AND p.framework_program = 'H2020' ORDER BY p.ec_max_contribution DESC LIMIT 10",
        "SELECT i.institution_name, COUNT(*) FROM institutions AS i JOIN project_members AS m ON m.institution_id = i.unics_id WHERE m.member_role = 'coordinator' GROUP BY i.institution_name ORDER BY COUNT(*) DESC LIMIT 5",
        "SELECT p.acronym FROM projects AS p JOIN project_topics AS t ON t.project = p.unics_id WHERE p.start_year = 2015 AND p.framework_program = 'FP7' ORDER BY p.total_cost DESC LIMIT 5",
    ]
    .into_iter()
    .map(String::from)
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SizeClass;

    #[test]
    fn schema_matches_table1() {
        let s = schema();
        assert_eq!(s.tables.len(), 19);
        assert_eq!(s.column_count(), 82);
        assert!(s.validate().is_empty(), "{:?}", s.validate());
    }

    #[test]
    fn referential_integrity_of_member_projects() {
        let d = build(SizeClass::Tiny);
        let r =
            d.db.run(
                "SELECT COUNT(*) FROM project_members AS m WHERE m.project NOT IN \
                 (SELECT p.unics_id FROM projects AS p)",
            )
            .unwrap();
        assert_eq!(r.rows[0][0], sb_engine::Value::Int(0));
    }

    #[test]
    fn categorical_flags_survive_refinement() {
        let d = build(SizeClass::Tiny);
        assert!(d.enhanced.categorical("projects", "framework_program"));
        assert!(!d.enhanced.categorical("projects", "total_cost"));
        assert!(!d.enhanced.aggregatable("projects", "start_year"));
        assert!(d.enhanced.aggregatable("projects", "total_cost"));
    }

    #[test]
    fn math_group_pairs_cost_columns() {
        let d = build(SizeClass::Tiny);
        let groups = d.enhanced.math_groups("projects");
        assert!(groups.get("euro").is_some_and(|g| g.len() == 2));
    }

    #[test]
    fn patterns_cover_all_hardness_shapes() {
        // At least one pattern with a join, one with a subquery, one with
        // GROUP BY, one with ORDER BY ... LIMIT.
        let pats = seed_patterns();
        assert!(pats.iter().any(|p| p.contains("JOIN")));
        assert!(pats
            .iter()
            .any(|p| p.contains("IN (SELECT") || p.contains("> (SELECT")));
        assert!(pats.iter().any(|p| p.contains("GROUP BY")));
        assert!(pats.iter().any(|p| p.contains("LIMIT")));
    }
}
