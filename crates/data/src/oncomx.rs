//! OncoMX — the NIH cancer-biomarker database (25 tables, 106 columns).
//!
//! Reproduces the integrated structure the paper describes: FDA and EDRN
//! biomarkers, healthy gene expression (Bgee), differential expression
//! between healthy and cancerous samples (BioXpress), and cancer mutations
//! (BioMuta), all keyed on genes, diseases and anatomical entities.

use crate::util::*;
use crate::{DomainData, SizeClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sb_engine::{Database, Value};
use sb_schema::{Column, ColumnType, EnhancedSchema, ForeignKey, Schema, TableDef};

/// Real deployment size (Table 1): 65.9 M rows, 12 GB.
pub const REAL_ROWS: f64 = 65_900_000.0;
/// Real deployment byte size.
pub const REAL_BYTES: f64 = 1.2e10;

const GENES: [&str; 24] = [
    "BRCA1", "BRCA2", "TP53", "EGFR", "KRAS", "BRAF", "PIK3CA", "PTEN", "ALK", "MYC", "RB1", "APC",
    "VHL", "RET", "KIT", "ERBB2", "CDKN2A", "NRAS", "IDH1", "JAK2", "FLT3", "NPM1", "SMAD4", "ATM",
];
const DISEASES: [(&str, i64); 12] = [
    ("breast cancer", 1612),
    ("lung cancer", 1324),
    ("colorectal cancer", 9256),
    ("prostate cancer", 10283),
    ("ovarian cancer", 2394),
    ("pancreatic cancer", 1793),
    ("liver cancer", 3571),
    ("melanoma", 1909),
    ("leukemia", 1240),
    ("glioblastoma", 3068),
    ("gastric cancer", 10534),
    ("kidney cancer", 263),
];
const TISSUES: [&str; 14] = [
    "breast", "lung", "colon", "prostate", "ovary", "pancreas", "liver", "skin", "blood", "brain",
    "stomach", "kidney", "thyroid", "bladder",
];
const AA: [&str; 10] = ["A", "R", "N", "D", "C", "Q", "E", "G", "H", "L"];

/// The OncoMX schema: 25 tables, 106 columns (asserted by crate tests).
pub fn schema() -> Schema {
    use ColumnType::*;
    Schema::new("oncomx")
        .with_table(TableDef::new(
            "species",
            vec![
                Column::pk("speciesid", Int),
                Column::new("species", Text),
                Column::new("common_name", Text),
                Column::new("genome_assembly", Text),
            ],
        ))
        .with_table(TableDef::new(
            "gene",
            vec![
                Column::pk("id", Int),
                Column::new("gene_symbol", Text),
                Column::new("ensembl_gene_id", Text),
                Column::new("speciesid", Int),
                Column::new("chromosome", Text),
                Column::new("num_transcripts", Int),
            ],
        ))
        .with_table(TableDef::new(
            "disease",
            vec![
                Column::pk("id", Int),
                Column::new("name", Text),
                Column::new("doid", Int),
            ],
        ))
        .with_table(TableDef::new(
            "anatomical_entity",
            vec![
                Column::pk("id", Text),
                Column::new("name", Text),
                Column::new("description", Text),
            ],
        ))
        .with_table(TableDef::new(
            "stage",
            vec![Column::pk("id", Int), Column::new("name", Text)],
        ))
        .with_table(TableDef::new(
            "biomarker",
            vec![
                Column::pk("id", Int),
                Column::new("biomarker_internal_id", Text),
                Column::new("gene", Int),
                Column::new("test_is_a_panel", Bool),
                Column::new("biomarker_description", Text),
                Column::new("biomarker_origin", Text),
                Column::new("test_trade_name", Text),
                Column::new("test_manufacturer", Text),
            ],
        ))
        .with_table(TableDef::new(
            "biomarker_fda",
            vec![
                Column::pk("id", Int),
                Column::new("biomarker", Int),
                Column::new("test_submission", Text),
                Column::new("test_trade_name", Text),
                Column::new("approved_indication", Text),
                Column::new("clinical_significance", Text),
            ],
        ))
        .with_table(TableDef::new(
            "biomarker_fda_test",
            vec![
                Column::pk("id", Int),
                Column::new("biomarker_fda", Int),
                Column::new("test_number", Text),
                Column::new("platform_method", Text),
            ],
        ))
        .with_table(TableDef::new(
            "biomarker_fda_test_use",
            vec![
                Column::pk("id", Int),
                Column::new("fda_test", Int),
                Column::new("approved_indication", Text),
                Column::new("actual_use", Text),
            ],
        ))
        .with_table(TableDef::new(
            "biomarker_fda_drug",
            vec![
                Column::pk("id", Int),
                Column::new("biomarker_fda", Int),
                Column::new("drug_name", Text),
            ],
        ))
        .with_table(TableDef::new(
            "biomarker_edrn",
            vec![
                Column::pk("id", Int),
                Column::new("biomarker", Int),
                Column::new("qa_state", Text),
                Column::new("phase", Int),
                Column::new("biomarker_type", Text),
                Column::new("disease", Int),
                Column::new("anatomical_entity", Text),
            ],
        ))
        .with_table(TableDef::new(
            "biomarker_alias",
            vec![
                Column::pk("id", Int),
                Column::new("biomarker", Int),
                Column::new("alias", Text),
            ],
        ))
        .with_table(TableDef::new(
            "biomarker_article",
            vec![
                Column::pk("id", Int),
                Column::new("biomarker", Int),
                Column::new("pmid", Int),
            ],
        ))
        .with_table(TableDef::new(
            "biomarker_disease",
            vec![
                Column::pk("id", Int),
                Column::new("biomarker", Int),
                Column::new("disease", Int),
            ],
        ))
        .with_table(TableDef::new(
            "healthy_expression",
            vec![
                Column::pk("id", Int),
                Column::new("gene", Int),
                Column::new("anatomical_entity", Text),
                Column::new("expression_score", Float),
                Column::new("expression_level_gene", Text),
                Column::new("call_quality", Text),
                Column::new("speciesid", Int),
            ],
        ))
        .with_table(TableDef::new(
            "expression_call_source",
            vec![
                Column::pk("id", Int),
                Column::new("healthy_expression", Int),
                Column::new("source_name", Text),
            ],
        ))
        .with_table(TableDef::new(
            "differential_expression",
            vec![
                Column::pk("id", Int),
                Column::new("gene", Int),
                Column::new("disease", Int),
                Column::new("log2fc", Float),
                Column::new("adjpvalue", Float),
                Column::new("expression_change_direction", Text),
                Column::new("subjects_up", Int),
                Column::new("subjects_down", Int),
            ],
        ))
        .with_table(TableDef::new(
            "cancer_tissue",
            vec![
                Column::pk("id", Int),
                Column::new("disease", Int),
                Column::new("anatomical_entity", Text),
            ],
        ))
        .with_table(TableDef::new(
            "mutation",
            vec![
                Column::pk("id", Int),
                Column::new("gene", Int),
                Column::new("disease", Int),
                Column::new("chromosome_pos", Int),
                Column::new("ref_aa", Text),
                Column::new("alt_aa", Text),
                Column::new("mutation_freq", Float),
                Column::new("data_source", Text),
            ],
        ))
        .with_table(TableDef::new(
            "mutation_impact",
            vec![
                Column::pk("id", Int),
                Column::new("mutation", Int),
                Column::new("impact_prediction", Text),
            ],
        ))
        .with_table(TableDef::new(
            "disease_stage",
            vec![
                Column::pk("id", Int),
                Column::new("disease", Int),
                Column::new("stage", Int),
            ],
        ))
        .with_table(TableDef::new(
            "drug",
            vec![
                Column::pk("id", Int),
                Column::new("drug_name", Text),
                Column::new("chembl_id", Text),
            ],
        ))
        .with_table(TableDef::new(
            "disease_drug",
            vec![
                Column::pk("id", Int),
                Column::new("disease", Int),
                Column::new("drug", Int),
                Column::new("approval_status", Text),
            ],
        ))
        .with_table(TableDef::new(
            "xref",
            vec![
                Column::pk("id", Int),
                Column::new("gene", Int),
                Column::new("db_accession", Text),
            ],
        ))
        .with_table(TableDef::new(
            "map_uniprot",
            vec![Column::pk("uniprot_ac", Text), Column::new("gene", Int)],
        ))
        .with_fk(ForeignKey::new("gene", "speciesid", "species", "speciesid"))
        .with_fk(ForeignKey::new("biomarker", "gene", "gene", "id"))
        .with_fk(ForeignKey::new(
            "biomarker_fda",
            "biomarker",
            "biomarker",
            "id",
        ))
        .with_fk(ForeignKey::new(
            "biomarker_fda_test",
            "biomarker_fda",
            "biomarker_fda",
            "id",
        ))
        .with_fk(ForeignKey::new(
            "biomarker_fda_test_use",
            "fda_test",
            "biomarker_fda_test",
            "id",
        ))
        .with_fk(ForeignKey::new(
            "biomarker_fda_drug",
            "biomarker_fda",
            "biomarker_fda",
            "id",
        ))
        .with_fk(ForeignKey::new(
            "biomarker_edrn",
            "biomarker",
            "biomarker",
            "id",
        ))
        .with_fk(ForeignKey::new(
            "biomarker_edrn",
            "disease",
            "disease",
            "id",
        ))
        .with_fk(ForeignKey::new(
            "biomarker_edrn",
            "anatomical_entity",
            "anatomical_entity",
            "id",
        ))
        .with_fk(ForeignKey::new(
            "biomarker_alias",
            "biomarker",
            "biomarker",
            "id",
        ))
        .with_fk(ForeignKey::new(
            "biomarker_article",
            "biomarker",
            "biomarker",
            "id",
        ))
        .with_fk(ForeignKey::new(
            "biomarker_disease",
            "biomarker",
            "biomarker",
            "id",
        ))
        .with_fk(ForeignKey::new(
            "biomarker_disease",
            "disease",
            "disease",
            "id",
        ))
        .with_fk(ForeignKey::new("healthy_expression", "gene", "gene", "id"))
        .with_fk(ForeignKey::new(
            "healthy_expression",
            "anatomical_entity",
            "anatomical_entity",
            "id",
        ))
        .with_fk(ForeignKey::new(
            "healthy_expression",
            "speciesid",
            "species",
            "speciesid",
        ))
        .with_fk(ForeignKey::new(
            "expression_call_source",
            "healthy_expression",
            "healthy_expression",
            "id",
        ))
        .with_fk(ForeignKey::new(
            "differential_expression",
            "gene",
            "gene",
            "id",
        ))
        .with_fk(ForeignKey::new(
            "differential_expression",
            "disease",
            "disease",
            "id",
        ))
        .with_fk(ForeignKey::new("cancer_tissue", "disease", "disease", "id"))
        .with_fk(ForeignKey::new(
            "cancer_tissue",
            "anatomical_entity",
            "anatomical_entity",
            "id",
        ))
        .with_fk(ForeignKey::new("mutation", "gene", "gene", "id"))
        .with_fk(ForeignKey::new("mutation", "disease", "disease", "id"))
        .with_fk(ForeignKey::new(
            "mutation_impact",
            "mutation",
            "mutation",
            "id",
        ))
        .with_fk(ForeignKey::new("disease_stage", "disease", "disease", "id"))
        .with_fk(ForeignKey::new("disease_stage", "stage", "stage", "id"))
        .with_fk(ForeignKey::new("disease_drug", "disease", "disease", "id"))
        .with_fk(ForeignKey::new("disease_drug", "drug", "drug", "id"))
        .with_fk(ForeignKey::new("xref", "gene", "gene", "id"))
        .with_fk(ForeignKey::new("map_uniprot", "gene", "gene", "id"))
}

/// Build the populated domain at a size class.
pub fn build(size: SizeClass) -> DomainData {
    let mut rng = StdRng::seed_from_u64(0x04C0_4D58);
    let schema = schema();
    let mut db = Database::new(schema);
    let d = size.divisor();

    let n_genes = scaled(60_000.0, d, 48).max(GENES.len());
    let n_biomarkers = scaled(4_000.0, d, 40);
    let n_fda = scaled(1_200.0, d, 20);
    let n_fda_test = scaled(1_500.0, d, 20);
    let n_fda_test_use = scaled(1_800.0, d, 20);
    let n_fda_drug = scaled(900.0, d, 15);
    let n_edrn = scaled(1_000.0, d, 25);
    let n_alias = scaled(6_000.0, d, 30);
    let n_article = scaled(8_000.0, d, 30);
    let n_bio_disease = scaled(5_000.0, d, 30);
    let n_healthy = scaled(28_000_000.0, d, 300);
    let n_call_source = scaled(3_000_000.0, d, 80);
    let n_diff = scaled(12_000_000.0, d, 200);
    let n_mutation = scaled(20_000_000.0, d, 200);
    let n_mut_impact = scaled(2_000_000.0, d, 60);
    let n_xref = scaled(800_000.0, d, 60);
    let n_uniprot = scaled(70_000.0, d, 40);
    let n_drugs = scaled(2_500.0, d, 25);
    let n_disease_drug = scaled(6_000.0, d, 30);

    {
        let t = db.table_mut("species").unwrap();
        t.push_rows(vec![
            vec![
                Value::Int(9606),
                "Homo sapiens".into(),
                "human".into(),
                "GRCh38".into(),
            ],
            vec![
                Value::Int(10090),
                "Mus musculus".into(),
                "mouse".into(),
                "GRCm39".into(),
            ],
        ]);
    }
    {
        let t = db.table_mut("disease").unwrap();
        for (i, (name, doid)) in DISEASES.iter().enumerate() {
            t.push_rows(vec![vec![
                Value::Int(i as i64 + 1),
                (*name).into(),
                Value::Int(*doid),
            ]]);
        }
    }
    {
        let t = db.table_mut("anatomical_entity").unwrap();
        for (i, tissue) in TISSUES.iter().enumerate() {
            t.push_rows(vec![vec![
                format!("UBERON:{:07}", 1000 + i).into(),
                (*tissue).into(),
                format!("the {tissue} tissue").into(),
            ]]);
        }
    }
    {
        let t = db.table_mut("stage").unwrap();
        for (i, s) in ["stage I", "stage II", "stage III", "stage IV"]
            .iter()
            .enumerate()
        {
            t.push_rows(vec![vec![Value::Int(i as i64 + 1), (*s).into()]]);
        }
    }
    {
        let t = db.table_mut("gene").unwrap();
        for i in 0..n_genes {
            let symbol = GENES
                .get(i)
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("GENE{i:05}"));
            t.push_rows(vec![vec![
                Value::Int(i as i64 + 1),
                symbol.into(),
                format!("ENSG{:011}", 100_000 + i).into(),
                Value::Int(if i % 9 == 8 { 10090 } else { 9606 }),
                format!("{}", 1 + i % 22).into(),
                Value::Int(rng.gen_range(1..30)),
            ]]);
        }
    }
    {
        let t = db.table_mut("biomarker").unwrap();
        for i in 0..n_biomarkers {
            // Famous genes are heavily studied: Zipf over the gene list.
            let gene = zipf(&mut rng, n_genes, 1.1) as i64 + 1;
            t.push_rows(vec![vec![
                Value::Int(i as i64 + 1),
                format!("ONX_{i:05}").into(),
                Value::Int(gene),
                Value::Bool(rng.gen_bool(0.2)),
                format!("biomarker {i} measuring gene activity").into(),
                ["FDA", "EDRN"][i % 2].into(),
                format!("OncoTest {i}").into(),
                ["Roche", "Abbott", "Illumina", "QIAGEN"][i % 4].into(),
            ]]);
        }
    }
    fanout(&mut db, "biomarker_fda", n_fda, |rng, i| {
        vec![
            Value::Int(i as i64 + 1),
            Value::Int(rng.gen_range(0..n_biomarkers as i64) + 1),
            format!("P{:06}", 100_000 + i).into(),
            format!("FDA Test {i}").into(),
            DISEASES[i % DISEASES.len()].0.into(),
            ["diagnosis", "prognosis", "predisposition", "monitoring"][i % 4].into(),
        ]
    });
    fanout(&mut db, "biomarker_fda_test", n_fda_test, |rng, i| {
        vec![
            Value::Int(i as i64 + 1),
            Value::Int(rng.gen_range(0..n_fda as i64) + 1),
            format!("T{:05}", i).into(),
            ["PCR", "NGS", "IHC", "FISH"][i % 4].into(),
        ]
    });
    fanout(
        &mut db,
        "biomarker_fda_test_use",
        n_fda_test_use,
        |rng, i| {
            vec![
                Value::Int(i as i64 + 1),
                Value::Int(rng.gen_range(0..n_fda_test as i64) + 1),
                DISEASES[i % DISEASES.len()].0.into(),
                ["approved", "investigational"][i % 2].into(),
            ]
        },
    );
    fanout(&mut db, "biomarker_fda_drug", n_fda_drug, |rng, i| {
        vec![
            Value::Int(i as i64 + 1),
            Value::Int(rng.gen_range(0..n_fda as i64) + 1),
            format!("drug-{}", i % 40).into(),
        ]
    });
    fanout(&mut db, "biomarker_edrn", n_edrn, |rng, i| {
        vec![
            Value::Int(i as i64 + 1),
            Value::Int(rng.gen_range(0..n_biomarkers as i64) + 1),
            ["Accepted", "Under Review", "Curated"][i % 3].into(),
            Value::Int(rng.gen_range(1..=5)),
            ["Genomic", "Proteomic", "Metabolomic", "Glycomic"][i % 4].into(),
            Value::Int(rng.gen_range(0..DISEASES.len() as i64) + 1),
            format!("UBERON:{:07}", 1000 + i % TISSUES.len()).into(),
        ]
    });
    fanout(&mut db, "biomarker_alias", n_alias, |rng, i| {
        vec![
            Value::Int(i as i64 + 1),
            Value::Int(rng.gen_range(0..n_biomarkers as i64) + 1),
            format!("ALIAS-{i}").into(),
        ]
    });
    fanout(&mut db, "biomarker_article", n_article, |rng, i| {
        vec![
            Value::Int(i as i64 + 1),
            Value::Int(rng.gen_range(0..n_biomarkers as i64) + 1),
            Value::Int(20_000_000 + i as i64),
        ]
    });
    fanout(&mut db, "biomarker_disease", n_bio_disease, |rng, i| {
        vec![
            Value::Int(i as i64 + 1),
            Value::Int(rng.gen_range(0..n_biomarkers as i64) + 1),
            Value::Int(zipf(rng, DISEASES.len(), 0.7) as i64 + 1),
        ]
    });
    fanout(&mut db, "healthy_expression", n_healthy, |rng, i| {
        let score = float_in(rng, 0.0, 100.0, 2);
        let level = if score > 66.0 {
            "HIGH"
        } else if score > 33.0 {
            "MEDIUM"
        } else {
            "LOW"
        };
        vec![
            Value::Int(i as i64 + 1),
            Value::Int(rng.gen_range(0..n_genes as i64) + 1),
            format!("UBERON:{:07}", 1000 + zipf(rng, TISSUES.len(), 0.5)).into(),
            Value::Float(score),
            level.into(),
            ["GOLD", "SILVER", "BRONZE"][zipf(rng, 3, 0.8)].into(),
            Value::Int(if i % 9 == 8 { 10090 } else { 9606 }),
        ]
    });
    fanout(
        &mut db,
        "expression_call_source",
        n_call_source,
        |rng, i| {
            vec![
                Value::Int(i as i64 + 1),
                Value::Int(rng.gen_range(0..n_healthy as i64) + 1),
                ["Bgee", "GTEx", "Affymetrix"][i % 3].into(),
            ]
        },
    );
    fanout(&mut db, "differential_expression", n_diff, |rng, i| {
        let up = rng.gen_bool(0.55);
        let log2fc = if up {
            float_in(rng, 0.1, 8.0, 3)
        } else {
            float_in(rng, -8.0, -0.1, 3)
        };
        let subj_up = rng.gen_range(0..200i64);
        vec![
            Value::Int(i as i64 + 1),
            Value::Int(zipf(rng, n_genes, 0.9) as i64 + 1),
            Value::Int(zipf(rng, DISEASES.len(), 0.7) as i64 + 1),
            Value::Float(log2fc),
            Value::Float(float_in(rng, 1e-12, 0.05, 12)),
            if up { "up" } else { "down" }.into(),
            Value::Int(subj_up),
            Value::Int(rng.gen_range(0..200i64)),
        ]
    });
    fanout(&mut db, "cancer_tissue", DISEASES.len(), |_, i| {
        vec![
            Value::Int(i as i64 + 1),
            Value::Int(i as i64 + 1),
            format!("UBERON:{:07}", 1000 + i % TISSUES.len()).into(),
        ]
    });
    fanout(&mut db, "mutation", n_mutation, |rng, i| {
        vec![
            Value::Int(i as i64 + 1),
            Value::Int(zipf(rng, n_genes, 0.9) as i64 + 1),
            Value::Int(zipf(rng, DISEASES.len(), 0.7) as i64 + 1),
            Value::Int(rng.gen_range(10_000..250_000_000i64)),
            AA[rng.gen_range(0..AA.len())].into(),
            AA[rng.gen_range(0..AA.len())].into(),
            Value::Float(float_in(rng, 0.0001, 0.6, 4)),
            ["TCGA", "ICGC", "COSMIC"][zipf(rng, 3, 0.6)].into(),
        ]
    });
    fanout(&mut db, "mutation_impact", n_mut_impact, |rng, i| {
        vec![
            Value::Int(i as i64 + 1),
            Value::Int(rng.gen_range(0..n_mutation as i64) + 1),
            ["HIGH", "MODERATE", "LOW", "MODIFIER"][zipf(rng, 4, 0.6)].into(),
        ]
    });
    fanout(&mut db, "disease_stage", DISEASES.len() * 4, |_, i| {
        vec![
            Value::Int(i as i64 + 1),
            Value::Int((i / 4) as i64 + 1),
            Value::Int((i % 4) as i64 + 1),
        ]
    });
    fanout(&mut db, "drug", n_drugs, |_, i| {
        vec![
            Value::Int(i as i64 + 1),
            format!("drug-{i}").into(),
            format!("CHEMBL{:06}", 10_000 + i).into(),
        ]
    });
    fanout(&mut db, "disease_drug", n_disease_drug, |rng, i| {
        vec![
            Value::Int(i as i64 + 1),
            Value::Int(zipf(rng, DISEASES.len(), 0.7) as i64 + 1),
            Value::Int(rng.gen_range(0..n_drugs as i64) + 1),
            ["approved", "phase III", "phase II", "withdrawn"][zipf(rng, 4, 0.6)].into(),
        ]
    });
    fanout(&mut db, "xref", n_xref, |rng, i| {
        vec![
            Value::Int(i as i64 + 1),
            Value::Int(rng.gen_range(0..n_genes as i64) + 1),
            format!("XR_{:07}", i).into(),
        ]
    });
    fanout(&mut db, "map_uniprot", n_uniprot, |rng, i| {
        vec![
            format!("P{:05}", 10_000 + i).into(),
            Value::Int(rng.gen_range(0..n_genes as i64) + 1),
        ]
    });

    let enhanced = enhance(&db);
    DomainData {
        db,
        enhanced,
        real_rows: REAL_ROWS,
        real_bytes: REAL_BYTES,
        seed_patterns: seed_patterns(),
    }
}

fn fanout(
    db: &mut Database,
    table: &str,
    n: usize,
    mut row: impl FnMut(&mut StdRng, usize) -> Vec<Value>,
) {
    // Per-table RNG stream keyed on the table name keeps generation
    // order-independent and deterministic.
    let seed = table
        .bytes()
        .fold(0u64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64));
    let mut rng = StdRng::seed_from_u64(0x0C0_0000 ^ seed);
    let t = db.table_mut(table).unwrap();
    for i in 0..n {
        t.push_rows(vec![row(&mut rng, i)]);
    }
}

/// One-shot expert refinement of the enhanced schema.
fn enhance(db: &Database) -> EnhancedSchema {
    let profile = sb_engine::profile_database(db);
    let mut e = EnhancedSchema::infer(db.schema.clone(), &profile);
    e.set_table_alias("differential_expression", "differential gene expression");
    e.set_table_alias("healthy_expression", "healthy gene expression");
    e.set_table_alias("anatomical_entity", "anatomical entity");
    e.set_column_alias("differential_expression", "log2fc", "log2 fold change");
    e.set_column_alias("differential_expression", "adjpvalue", "adjusted p value");
    e.set_column_alias("gene", "gene_symbol", "gene symbol");
    e.set_column_alias("mutation", "mutation_freq", "mutation frequency");
    e.set_column_alias("mutation", "ref_aa", "reference amino acid");
    e.set_column_alias("mutation", "alt_aa", "alternate amino acid");
    e.set_column_alias("healthy_expression", "expression_score", "expression score");
    e.set_column_alias(
        "healthy_expression",
        "expression_level_gene",
        "expression level",
    );
    for (t, c) in [
        ("healthy_expression", "expression_level_gene"),
        ("healthy_expression", "call_quality"),
        ("differential_expression", "expression_change_direction"),
        ("mutation", "ref_aa"),
        ("mutation", "alt_aa"),
        ("mutation_impact", "impact_prediction"),
        ("biomarker_edrn", "phase"),
        ("biomarker_edrn", "qa_state"),
        ("biomarker_edrn", "biomarker_type"),
        ("biomarker_fda", "clinical_significance"),
        ("gene", "chromosome"),
        ("disease_drug", "approval_status"),
    ] {
        e.set_categorical(t, c, true);
    }
    let tables: Vec<String> = e.schema.tables.iter().map(|t| t.name.clone()).collect();
    for t in &tables {
        let cols: Vec<String> = e
            .schema
            .table(t)
            .map(|d| d.columns.iter().map(|c| c.name.clone()).collect())
            .unwrap_or_default();
        for c in cols {
            e.clear_math_group(t, &c);
        }
    }
    e.set_math_group("differential_expression", "subjects_up", "subjects");
    e.set_math_group("differential_expression", "subjects_down", "subjects");
    for (t, c) in [
        ("differential_expression", "log2fc"),
        ("differential_expression", "adjpvalue"),
        ("healthy_expression", "expression_score"),
        ("mutation", "mutation_freq"),
        ("gene", "gene_symbol"),
        ("disease", "name"),
    ] {
        e.set_categorical(t, c, false);
    }
    e.set_non_aggregatable("mutation", "chromosome_pos", true);
    e.set_non_aggregatable("biomarker_article", "pmid", true);
    e.set_non_aggregatable("disease", "doid", true);
    e
}

/// Hand-authored seed SQL patterns — including the paper's "Show
/// biomarkers for breast cancer" multi-join example.
pub fn seed_patterns() -> Vec<String> {
    [
        // -- Easy --
        "SELECT g.gene_symbol FROM gene AS g WHERE g.chromosome = '17'",
        "SELECT d.name FROM disease AS d WHERE d.doid = 1612",
        "SELECT b.biomarker_internal_id FROM biomarker AS b WHERE b.test_manufacturer = 'Roche'",
        "SELECT COUNT(*) FROM mutation AS m WHERE m.ref_aa = 'A'",
        "SELECT a.name FROM anatomical_entity AS a",
        // -- Medium (incl. the paper's breast-cancer biomarker example) --
        "SELECT b.biomarker_internal_id FROM biomarker AS b JOIN biomarker_disease AS bd ON bd.biomarker = b.id JOIN disease AS d ON bd.disease = d.id WHERE d.name = 'breast cancer'",
        "SELECT COUNT(*), e.expression_level_gene FROM healthy_expression AS e GROUP BY e.expression_level_gene",
        "SELECT g.gene_symbol FROM gene AS g JOIN mutation AS m ON m.gene = g.id WHERE m.mutation_freq > 0.3",
        "SELECT AVG(de.log2fc) FROM differential_expression AS de WHERE de.expression_change_direction = 'up'",
        "SELECT e.expression_score FROM healthy_expression AS e WHERE e.call_quality = 'GOLD' AND e.expression_level_gene = 'HIGH'",
        "SELECT m.chromosome_pos FROM mutation AS m WHERE m.mutation_freq > 0.2 AND m.ref_aa = 'R'",
        // -- Hard --
        "SELECT g.gene_symbol FROM gene AS g WHERE g.id IN (SELECT de.gene FROM differential_expression AS de WHERE de.log2fc > 4.0)",
        "SELECT COUNT(*), m.alt_aa FROM mutation AS m WHERE m.mutation_freq > 0.1 AND m.ref_aa = 'A' GROUP BY m.alt_aa",
        "SELECT MIN(de.log2fc), MAX(de.log2fc) FROM differential_expression AS de WHERE de.expression_change_direction = 'down' AND de.adjpvalue < 0.01",
        "SELECT de.gene, de.subjects_up - de.subjects_down FROM differential_expression AS de WHERE de.subjects_up - de.subjects_down > 50 AND de.expression_change_direction = 'up'",
        // -- Extra hard --
        "SELECT d.name, COUNT(*) FROM disease AS d JOIN mutation AS m ON m.disease = d.id WHERE m.mutation_freq > 0.05 GROUP BY d.name ORDER BY COUNT(*) DESC LIMIT 5",
        "SELECT g.gene_symbol FROM gene AS g JOIN differential_expression AS de ON de.gene = g.id WHERE de.adjpvalue < 0.01 AND de.log2fc > 2.0 ORDER BY de.log2fc DESC LIMIT 10",
        "SELECT e.anatomical_entity, AVG(e.expression_score) FROM healthy_expression AS e WHERE e.call_quality = 'GOLD' GROUP BY e.anatomical_entity ORDER BY AVG(e.expression_score) DESC LIMIT 3",
        "SELECT g.gene_symbol FROM gene AS g WHERE g.id IN (SELECT m.gene FROM mutation AS m WHERE m.mutation_freq > 0.4) AND g.chromosome = '1'",
    ]
    .into_iter()
    .map(String::from)
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_table1() {
        let s = schema();
        assert_eq!(s.tables.len(), 25);
        assert_eq!(s.column_count(), 106);
        assert!(s.validate().is_empty(), "{:?}", s.validate());
    }

    #[test]
    fn famous_genes_exist() {
        let d = build(SizeClass::Tiny);
        let r =
            d.db.run("SELECT g.id FROM gene AS g WHERE g.gene_symbol = 'BRCA1'")
                .unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn breast_cancer_biomarker_join_works() {
        let d = build(SizeClass::Small);
        let r =
            d.db.run(
                "SELECT b.biomarker_internal_id FROM biomarker AS b \
                 JOIN biomarker_disease AS bd ON bd.biomarker = b.id \
                 JOIN disease AS d ON bd.disease = d.id WHERE d.name = 'breast cancer'",
            )
            .unwrap();
        assert!(!r.is_empty(), "the paper's motivating query must work");
    }

    #[test]
    fn expression_levels_consistent_with_scores() {
        let d = build(SizeClass::Tiny);
        let r =
            d.db.run(
                "SELECT MIN(e.expression_score) FROM healthy_expression AS e \
                 WHERE e.expression_level_gene = 'HIGH'",
            )
            .unwrap();
        assert!(r.rows[0][0].as_f64().unwrap() > 66.0);
    }
}
