//! Template extraction (Phase 1 of the pipeline).
//!
//! Walks a parsed query, resolving every table/column/value leaf against
//! the schema, and replaces them with positional placeholders while
//! recording the context of each slot. Aliases are canonicalized to
//! `T1, T2, …` exactly as the paper's figures render generated SQL.

use crate::{ColumnSlot, JoinEdge, Template, TemplateError, ValueKind, ValueSlot};
use sb_schema::Schema;
use sb_sql::{
    AggArg, AggFunc, BinaryOp, ColumnRef, Expr, Join, Literal, OrderItem, Query, Select,
    SelectItem, SetExpr, TableFactor, TableRef,
};
use std::collections::HashMap;

/// Extract a template from a query against a schema.
pub fn extract(query: &Query, schema: &Schema) -> Result<Template, TemplateError> {
    let mut ex = Extractor {
        schema,
        tables: Vec::new(),
        columns: Vec::new(),
        column_keys: HashMap::new(),
        values: Vec::new(),
        joins: Vec::new(),
        scopes: Vec::new(),
    };
    let skeleton = ex.tx_query(query)?;
    Ok(Template {
        skeleton,
        table_count: ex.tables.len(),
        columns: ex.columns,
        values: ex.values,
        joins: ex.joins,
        source: query.to_string(),
    })
}

/// The syntactic role an expression is encountered in; drives which
/// context flags a column slot receives.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Role {
    Projection,
    Filter,
    GroupBy,
    OrderBy,
}

struct Extractor<'a> {
    schema: &'a Schema,
    /// Slot → concrete table name seen during extraction.
    tables: Vec<String>,
    columns: Vec<ColumnSlot>,
    /// `(table_slot, lower(column))` → column slot.
    column_keys: HashMap<(usize, String), usize>,
    values: Vec<ValueSlot>,
    joins: Vec<JoinEdge>,
    /// Stack of scopes; each maps binding name (lower) → table slot.
    scopes: Vec<Vec<(String, usize)>>,
}

impl<'a> Extractor<'a> {
    fn tx_query(&mut self, q: &Query) -> Result<Query, TemplateError> {
        let body = self.tx_set_expr(&q.body)?;
        // ORDER BY belongs to the scope of the (single) top select of the
        // body; re-enter that scope for its expressions. For simplicity we
        // only support ORDER BY on plain selects.
        let order_by = if q.order_by.is_empty() {
            Vec::new()
        } else {
            match &q.body {
                SetExpr::Select(inner) => {
                    self.push_select_scope(inner)?;
                    let items = q
                        .order_by
                        .iter()
                        .map(|item| {
                            Ok(OrderItem {
                                expr: self.tx_expr(&item.expr, Role::OrderBy, None)?,
                                desc: item.desc,
                            })
                        })
                        .collect::<Result<Vec<_>, TemplateError>>()?;
                    self.scopes.pop();
                    items
                }
                SetExpr::SetOp { .. } => {
                    return Err(TemplateError::Unsupported(
                        "ORDER BY over a set operation".into(),
                    ))
                }
            }
        };
        Ok(Query {
            body,
            order_by,
            limit: q.limit,
        })
    }

    fn tx_set_expr(&mut self, body: &SetExpr) -> Result<SetExpr, TemplateError> {
        match body {
            SetExpr::Select(s) => Ok(SetExpr::Select(Box::new(self.tx_select(s)?))),
            SetExpr::SetOp {
                op,
                all,
                left,
                right,
            } => Ok(SetExpr::SetOp {
                op: *op,
                all: *all,
                left: Box::new(self.tx_set_expr(left)?),
                right: Box::new(self.tx_set_expr(right)?),
            }),
        }
    }

    /// Register the FROM/JOIN bindings of `select` as a new scope without
    /// allocating new slots — used to re-enter a scope for ORDER BY. Only
    /// valid right after the select has been extracted.
    fn push_select_scope(&mut self, select: &Select) -> Result<(), TemplateError> {
        let mut scope = Vec::new();
        for tr in select.table_refs() {
            if let TableFactor::Table(name) = &tr.factor {
                let binding = tr.binding().unwrap_or(name).to_ascii_lowercase();
                // Find the slot by the concrete table name; bindings are
                // unique within our supported grammar.
                if let Some(slot) = self
                    .tables
                    .iter()
                    .position(|t| t.eq_ignore_ascii_case(name))
                {
                    scope.push((binding, slot));
                    // Also register the canonical alias.
                    scope.push((format!("t{}", slot + 1), slot));
                }
            }
        }
        self.scopes.push(scope);
        Ok(())
    }

    fn tx_select(&mut self, s: &Select) -> Result<Select, TemplateError> {
        // 1. Allocate table slots and bindings.
        let mut scope = Vec::new();
        let from = self.tx_table_ref(&s.from, &mut scope)?;
        let mut joins = Vec::new();
        let mut pending_constraints = Vec::new();
        for j in &s.joins {
            let table = self.tx_table_ref(&j.table, &mut scope)?;
            pending_constraints.push(j.constraint.clone());
            joins.push(Join {
                table,
                constraint: None,
                left: j.left,
            });
        }
        self.scopes.push(scope);

        // 2. Join constraints: must be column equalities.
        for (j, constraint) in joins.iter_mut().zip(pending_constraints) {
            if let Some(c) = constraint {
                let skeleton = self.tx_join_constraint(&c)?;
                j.constraint = Some(skeleton);
            }
        }

        // 3. Everything else.
        let projections = s
            .projections
            .iter()
            .map(|p| match p {
                SelectItem::Wildcard => Ok(SelectItem::Wildcard),
                SelectItem::Expr { expr, alias } => Ok(SelectItem::Expr {
                    expr: self.tx_expr(expr, Role::Projection, None)?,
                    alias: alias.clone(),
                }),
            })
            .collect::<Result<Vec<_>, TemplateError>>()?;
        let selection = s
            .selection
            .as_ref()
            .map(|e| self.tx_expr(e, Role::Filter, None))
            .transpose()?;
        let group_by = s
            .group_by
            .iter()
            .map(|e| self.tx_expr(e, Role::GroupBy, None))
            .collect::<Result<Vec<_>, TemplateError>>()?;
        let having = s
            .having
            .as_ref()
            .map(|e| self.tx_expr(e, Role::Filter, None))
            .transpose()?;

        self.scopes.pop();
        Ok(Select {
            distinct: s.distinct,
            projections,
            from,
            joins,
            selection,
            group_by,
            having,
        })
    }

    fn tx_table_ref(
        &mut self,
        tr: &TableRef,
        scope: &mut Vec<(String, usize)>,
    ) -> Result<TableRef, TemplateError> {
        match &tr.factor {
            TableFactor::Table(name) => {
                if self.schema.table(name).is_none() {
                    return Err(TemplateError::Unresolved(format!("table `{name}`")));
                }
                let slot = self.tables.len();
                self.tables.push(name.clone());
                let binding = tr.binding().unwrap_or(name).to_ascii_lowercase();
                scope.push((binding, slot));
                let canonical = format!("T{}", slot + 1);
                scope.push((canonical.to_ascii_lowercase(), slot));
                Ok(TableRef {
                    factor: TableFactor::Table(format!("__T{slot}__")),
                    alias: Some(canonical),
                })
            }
            TableFactor::Derived(_) => Err(TemplateError::Unsupported(
                "derived tables in templates".into(),
            )),
        }
    }

    /// Resolve a column reference to `(table_slot, column_name)`.
    fn resolve(&self, c: &ColumnRef) -> Result<(usize, String), TemplateError> {
        match &c.table {
            Some(q) => {
                let qlow = q.to_ascii_lowercase();
                for scope in self.scopes.iter().rev() {
                    if let Some((_, slot)) = scope.iter().find(|(b, _)| *b == qlow) {
                        let table = &self.tables[*slot];
                        let def = self.schema.table(table).expect("slot tables exist");
                        if def.column(&c.column).is_none() {
                            return Err(TemplateError::Unresolved(format!(
                                "column `{}` in table `{table}`",
                                c.column
                            )));
                        }
                        return Ok((*slot, c.column.to_ascii_lowercase()));
                    }
                }
                Err(TemplateError::Unresolved(format!("qualifier `{q}`")))
            }
            None => {
                for scope in self.scopes.iter().rev() {
                    let mut hit = None;
                    for (_, slot) in scope {
                        let table = &self.tables[*slot];
                        let def = self.schema.table(table).expect("slot tables exist");
                        if def.column(&c.column).is_some() && hit != Some(*slot) {
                            if hit.is_some() {
                                return Err(TemplateError::Unresolved(format!(
                                    "ambiguous column `{}`",
                                    c.column
                                )));
                            }
                            hit = Some(*slot);
                        }
                    }
                    if let Some(slot) = hit {
                        return Ok((slot, c.column.to_ascii_lowercase()));
                    }
                }
                Err(TemplateError::Unresolved(format!("column `{}`", c.column)))
            }
        }
    }

    /// Allocate (or reuse) a column slot; returns the slot index and the
    /// skeleton column reference.
    fn column_slot(&mut self, c: &ColumnRef) -> Result<(usize, Expr), TemplateError> {
        let (table_slot, col) = self.resolve(c)?;
        let key = (table_slot, col);
        let slot = match self.column_keys.get(&key) {
            Some(s) => *s,
            None => {
                let s = self.columns.len();
                self.columns.push(ColumnSlot {
                    table_slot,
                    contexts: Default::default(),
                    math_peer: None,
                });
                self.column_keys.insert(key, s);
                s
            }
        };
        let skeleton = Expr::Column(ColumnRef {
            table: Some(format!("T{}", table_slot + 1)),
            column: format!("__C{slot}__"),
        });
        Ok((slot, skeleton))
    }

    fn value_slot(&mut self, column_slot: Option<usize>, kind: ValueKind) -> Expr {
        let slot = self.values.len();
        self.values.push(ValueSlot { column_slot, kind });
        Expr::Literal(Literal::Str(format!("__V{slot}__")))
    }

    /// Join constraints must be plain column equalities so that filling
    /// can substitute a foreign-key edge.
    fn tx_join_constraint(&mut self, c: &Expr) -> Result<Expr, TemplateError> {
        let Expr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        } = c
        else {
            return Err(TemplateError::Unsupported(format!(
                "join constraint `{c}` is not a column equality"
            )));
        };
        let (Expr::Column(lc), Expr::Column(rc)) = (left.as_ref(), right.as_ref()) else {
            return Err(TemplateError::Unsupported(format!(
                "join constraint `{c}` is not a column equality"
            )));
        };
        let (ls, lskel) = self.column_slot(lc)?;
        let (rs, rskel) = self.column_slot(rc)?;
        self.columns[ls].contexts.join_key = true;
        self.columns[rs].contexts.join_key = true;
        self.joins.push(JoinEdge {
            left_table: self.columns[ls].table_slot,
            right_table: self.columns[rs].table_slot,
            left_col: ls,
            right_col: rs,
        });
        Ok(Expr::binary(lskel, BinaryOp::Eq, rskel))
    }

    /// First column reference in an expression, used to anchor a value
    /// slot for math-expression comparisons like `u - r < 2.22`.
    fn anchor_column(e: &Expr) -> Option<&ColumnRef> {
        match e {
            Expr::Column(c) => Some(c),
            Expr::Binary { left, right, .. } => {
                Self::anchor_column(left).or_else(|| Self::anchor_column(right))
            }
            Expr::Unary { expr, .. } => Self::anchor_column(expr),
            Expr::Agg {
                arg: AggArg::Expr(e),
                ..
            } => Self::anchor_column(e),
            _ => None,
        }
    }

    fn tx_expr(
        &mut self,
        e: &Expr,
        role: Role,
        agg: Option<AggFunc>,
    ) -> Result<Expr, TemplateError> {
        match e {
            Expr::Column(c) => {
                let (slot, skel) = self.column_slot(c)?;
                let ctx = &mut self.columns[slot].contexts;
                if let Some(a) = agg {
                    ctx.agg = Some(a);
                }
                match role {
                    Role::Projection => ctx.projection = true,
                    Role::GroupBy => ctx.group_by = true,
                    Role::OrderBy => ctx.order_by = true,
                    Role::Filter => {}
                }
                Ok(skel)
            }
            Expr::Literal(l) => {
                // Bare literals outside comparisons (rare) are kept as-is.
                Ok(Expr::Literal(l.clone()))
            }
            Expr::Unary { op, expr } => Ok(Expr::Unary {
                op: *op,
                expr: Box::new(self.tx_expr(expr, role, agg)?),
            }),
            Expr::Binary { left, op, right } => self.tx_binary(left, *op, right, role, agg),
            Expr::Agg {
                func,
                distinct,
                arg,
            } => {
                let arg = match arg {
                    AggArg::Star => AggArg::Star,
                    AggArg::Expr(inner) => {
                        AggArg::Expr(Box::new(self.tx_expr(inner, role, Some(*func))?))
                    }
                };
                Ok(Expr::Agg {
                    func: *func,
                    distinct: *distinct,
                    arg,
                })
            }
            Expr::Between {
                expr,
                negated,
                low,
                high,
            } => {
                let anchor = Self::anchor_column(expr)
                    .map(|c| self.column_slot(c).map(|(s, _)| s))
                    .transpose()?;
                if let Some(s) = anchor {
                    self.columns[s].contexts.comparison = true;
                }
                let skel = self.tx_expr(expr, role, agg)?;
                let low = self.tx_bound(low, anchor)?;
                let high = self.tx_bound(high, anchor)?;
                Ok(Expr::Between {
                    expr: Box::new(skel),
                    negated: *negated,
                    low: Box::new(low),
                    high: Box::new(high),
                })
            }
            Expr::InList {
                expr,
                negated,
                list,
            } => {
                let anchor = Self::anchor_column(expr)
                    .map(|c| self.column_slot(c).map(|(s, _)| s))
                    .transpose()?;
                if let Some(s) = anchor {
                    self.columns[s].contexts.equality = true;
                }
                let skel = self.tx_expr(expr, role, agg)?;
                let list = list
                    .iter()
                    .map(|item| match item {
                        Expr::Literal(Literal::Null) => Ok(item.clone()),
                        Expr::Literal(_) => Ok(self.value_slot(anchor, ValueKind::Eq)),
                        other => self.tx_expr(other, role, agg),
                    })
                    .collect::<Result<Vec<_>, TemplateError>>()?;
                Ok(Expr::InList {
                    expr: Box::new(skel),
                    negated: *negated,
                    list,
                })
            }
            Expr::InSubquery {
                expr,
                negated,
                subquery,
            } => {
                if let Some(c) = Self::anchor_column(expr) {
                    let (s, _) = self.column_slot(c)?;
                    self.columns[s].contexts.equality = true;
                }
                let skel = self.tx_expr(expr, role, agg)?;
                let sub = self.tx_query(subquery)?;
                Ok(Expr::InSubquery {
                    expr: Box::new(skel),
                    negated: *negated,
                    subquery: Box::new(sub),
                })
            }
            Expr::Like {
                expr,
                negated,
                pattern,
            } => {
                let anchor = Self::anchor_column(expr)
                    .map(|c| self.column_slot(c).map(|(s, _)| s))
                    .transpose()?;
                if let Some(s) = anchor {
                    self.columns[s].contexts.like = true;
                }
                let skel = self.tx_expr(expr, role, agg)?;
                let pattern = match pattern.as_ref() {
                    Expr::Literal(Literal::Str(_)) => self.value_slot(anchor, ValueKind::Like),
                    other => self.tx_expr(other, role, agg)?,
                };
                Ok(Expr::Like {
                    expr: Box::new(skel),
                    negated: *negated,
                    pattern: Box::new(pattern),
                })
            }
            Expr::IsNull { expr, negated } => Ok(Expr::IsNull {
                expr: Box::new(self.tx_expr(expr, role, agg)?),
                negated: *negated,
            }),
            Expr::Subquery(q) => Ok(Expr::Subquery(Box::new(self.tx_query(q)?))),
            Expr::Exists { negated, subquery } => Ok(Expr::Exists {
                negated: *negated,
                subquery: Box::new(self.tx_query(subquery)?),
            }),
        }
    }

    /// A BETWEEN bound: literal becomes a Cmp value slot; anything else is
    /// extracted normally.
    fn tx_bound(&mut self, e: &Expr, anchor: Option<usize>) -> Result<Expr, TemplateError> {
        match e {
            Expr::Literal(Literal::Null) => Ok(e.clone()),
            Expr::Literal(_) => Ok(self.value_slot(anchor, ValueKind::Cmp)),
            other => self.tx_expr(other, Role::Filter, None),
        }
    }

    fn tx_binary(
        &mut self,
        left: &Expr,
        op: BinaryOp,
        right: &Expr,
        role: Role,
        agg: Option<AggFunc>,
    ) -> Result<Expr, TemplateError> {
        // Math expression between two columns: record the peer link.
        if op.is_arithmetic() {
            if let (Expr::Column(lc), Expr::Column(rc)) = (left, right) {
                let (ls, lskel) = self.column_slot(lc)?;
                let (rs, rskel) = self.column_slot(rc)?;
                self.columns[ls].contexts.math = true;
                self.columns[rs].contexts.math = true;
                self.columns[ls].math_peer = Some(rs);
                self.columns[rs].math_peer = Some(ls);
                return Ok(Expr::binary(lskel, op, rskel));
            }
            // Column op literal (e.g. z * 2): keep the literal fixed.
            let l = self.tx_expr(left, role, agg)?;
            let r = self.tx_expr(right, role, agg)?;
            return Ok(Expr::Binary {
                left: Box::new(l),
                op,
                right: Box::new(r),
            });
        }
        if op.is_comparison() {
            // Normalize literal-on-the-left to keep slot metadata simple.
            let (lhs, rhs, flipped) = match (left, right) {
                (Expr::Literal(_), r) if !matches!(r, Expr::Literal(_)) => (r, left, true),
                _ => (left, right, false),
            };
            if let Expr::Literal(lit) = rhs {
                if !matches!(lit, Literal::Null) {
                    let lhs_has_agg = lhs.contains_aggregate();
                    let anchor = Self::anchor_column(lhs)
                        .map(|c| self.column_slot(c).map(|(s, _)| s))
                        .transpose()?;
                    let kind = if lhs_has_agg {
                        ValueKind::AggCmp
                    } else if op == BinaryOp::Eq || op == BinaryOp::NotEq {
                        ValueKind::Eq
                    } else {
                        ValueKind::Cmp
                    };
                    if let Some(s) = anchor {
                        if !lhs_has_agg {
                            if kind == ValueKind::Eq {
                                self.columns[s].contexts.equality = true;
                            } else {
                                self.columns[s].contexts.comparison = true;
                            }
                        }
                    }
                    let lskel = self.tx_expr(lhs, role, agg)?;
                    let vslot = self.value_slot(if lhs_has_agg { None } else { anchor }, kind);
                    let (l, r) = if flipped {
                        (vslot, lskel)
                    } else {
                        (lskel, vslot)
                    };
                    return Ok(Expr::Binary {
                        left: Box::new(l),
                        op,
                        right: Box::new(r),
                    });
                }
            }
            // Column-to-column or subquery comparisons: plain recursion,
            // marking columns as comparison context.
            if let Expr::Column(c) = lhs {
                let (s, _) = self.column_slot(c)?;
                self.columns[s].contexts.comparison = true;
            }
            if let Expr::Column(c) = rhs {
                let (s, _) = self.column_slot(c)?;
                self.columns[s].contexts.comparison = true;
            }
            let l = self.tx_expr(left, role, agg)?;
            let r = self.tx_expr(right, role, agg)?;
            return Ok(Expr::Binary {
                left: Box::new(l),
                op,
                right: Box::new(r),
            });
        }
        // AND / OR.
        let l = self.tx_expr(left, role, agg)?;
        let r = self.tx_expr(right, role, agg)?;
        Ok(Expr::Binary {
            left: Box::new(l),
            op,
            right: Box::new(r),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Assignment;
    use sb_schema::{Column, ColumnType, ForeignKey, Schema, TableDef};

    fn sdss_schema() -> Schema {
        Schema::new("sdss")
            .with_table(TableDef::new(
                "specobj",
                vec![
                    Column::pk("specobjid", ColumnType::Int),
                    Column::new("bestobjid", ColumnType::Int),
                    Column::new("class", ColumnType::Text),
                    Column::new("subclass", ColumnType::Text),
                    Column::new("z", ColumnType::Float),
                    Column::new("survey", ColumnType::Text),
                ],
            ))
            .with_table(TableDef::new(
                "photoobj",
                vec![
                    Column::pk("objid", ColumnType::Int),
                    Column::new("u", ColumnType::Float),
                    Column::new("r", ColumnType::Float),
                ],
            ))
            .with_table(TableDef::new(
                "neighbors",
                vec![
                    Column::new("objid", ColumnType::Int),
                    Column::new("neighbormode", ColumnType::Int),
                ],
            ))
            .with_fk(ForeignKey::new("specobj", "bestobjid", "photoobj", "objid"))
    }

    fn tpl(sql: &str) -> Template {
        let q = sb_sql::parse(sql).unwrap();
        extract(&q, &sdss_schema()).unwrap_or_else(|e| panic!("extract `{sql}`: {e}"))
    }

    #[test]
    fn extracts_figure1_example() {
        // The paper's Figure 1 seed: filter with an exact match.
        let t = tpl("SELECT s.specobjid FROM specobj AS s WHERE s.subclass = 'STARBURST'");
        assert_eq!(t.table_count, 1);
        assert_eq!(t.columns.len(), 2);
        assert_eq!(t.values.len(), 1);
        assert_eq!(t.values[0].kind, ValueKind::Eq);
        assert_eq!(t.values[0].column_slot, Some(1));
        assert!(t.columns[0].contexts.projection);
        assert!(t.columns[1].contexts.equality);
        let sig = t.signature();
        assert!(sig.contains("__T0__"), "{sig}");
        assert!(sig.contains("__C0__"), "{sig}");
        assert!(sig.contains("'__V0__'"), "{sig}");
    }

    #[test]
    fn instantiates_figure1_generated_sql() {
        // Template from the seed, filled with the `neighbors` leaf values
        // — reproducing "Generated SQL (1)" of Figure 1.
        let t = tpl("SELECT s.specobjid FROM specobj AS s WHERE s.subclass = 'STARBURST'");
        let q = t
            .instantiate(&Assignment {
                tables: vec!["neighbors".into()],
                columns: vec!["objid".into(), "neighbormode".into()],
                values: vec![Literal::Int(2)],
            })
            .unwrap();
        assert_eq!(
            q.to_string(),
            "SELECT T1.objid FROM neighbors AS T1 WHERE T1.neighbormode = 2"
        );
    }

    #[test]
    fn join_edges_are_recorded() {
        let t = tpl("SELECT p.objid, s.specobjid FROM photoobj AS p \
             JOIN specobj AS s ON s.bestobjid = p.objid WHERE s.class = 'GALAXY'");
        assert_eq!(t.table_count, 2);
        assert_eq!(t.joins.len(), 1);
        let j = &t.joins[0];
        // ON s.bestobjid = p.objid: left column belongs to specobj (slot 1).
        assert_eq!(j.left_table, 1);
        assert_eq!(j.right_table, 0);
        assert!(t.columns[j.left_col].contexts.join_key);
    }

    #[test]
    fn math_peers_are_linked() {
        let t = tpl("SELECT p.objid FROM photoobj AS p WHERE p.u - p.r < 2.22");
        let math_cols: Vec<_> = (0..t.columns.len())
            .filter(|i| t.columns[*i].contexts.math)
            .collect();
        assert_eq!(math_cols.len(), 2);
        assert_eq!(t.columns[math_cols[0]].math_peer, Some(math_cols[1]));
        // The comparison value anchors to the first math operand.
        assert_eq!(t.values[0].kind, ValueKind::Cmp);
        assert_eq!(t.values[0].column_slot, Some(math_cols[0]));
    }

    #[test]
    fn group_by_and_having_contexts() {
        let t = tpl("SELECT COUNT(*), s.class FROM specobj AS s \
             GROUP BY s.class HAVING COUNT(*) > 10");
        let class_slot = t
            .columns
            .iter()
            .position(|c| c.contexts.group_by)
            .expect("group-by slot");
        assert!(t.columns[class_slot].contexts.projection);
        assert_eq!(t.values[0].kind, ValueKind::AggCmp);
        assert_eq!(t.values[0].column_slot, None);
    }

    #[test]
    fn agg_context_recorded() {
        let t = tpl("SELECT AVG(s.z) FROM specobj AS s");
        assert_eq!(t.columns[0].contexts.agg, Some(AggFunc::Avg));
    }

    #[test]
    fn between_creates_two_cmp_values() {
        let t = tpl("SELECT s.specobjid FROM specobj AS s WHERE s.z BETWEEN 0.5 AND 1.0");
        assert_eq!(t.values.len(), 2);
        assert!(t.values.iter().all(|v| v.kind == ValueKind::Cmp));
        assert!(t.columns[1].contexts.comparison);
    }

    #[test]
    fn like_creates_like_value() {
        let t = tpl("SELECT s.specobjid FROM specobj AS s WHERE s.subclass LIKE '%BURST%'");
        assert_eq!(t.values[0].kind, ValueKind::Like);
        assert!(t.columns[1].contexts.like);
    }

    #[test]
    fn in_subquery_extracts_recursively() {
        let t = tpl("SELECT s.specobjid FROM specobj AS s WHERE s.bestobjid IN \
             (SELECT p.objid FROM photoobj AS p WHERE p.u > 19)");
        assert_eq!(t.table_count, 2, "subquery table gets its own slot");
        assert_eq!(t.values.len(), 1);
        assert_eq!(t.values[0].kind, ValueKind::Cmp);
    }

    #[test]
    fn order_by_context() {
        let t = tpl("SELECT s.specobjid FROM specobj AS s ORDER BY s.z DESC LIMIT 5");
        let z = t.columns.iter().find(|c| c.contexts.order_by).unwrap();
        assert!(!z.contexts.projection);
        assert_eq!(t.skeleton.limit, Some(5));
    }

    #[test]
    fn reused_column_shares_slot() {
        let t = tpl("SELECT s.z FROM specobj AS s WHERE s.z > 0.5");
        assert_eq!(t.columns.len(), 1);
        assert!(t.columns[0].contexts.projection);
        assert!(t.columns[0].contexts.comparison);
    }

    #[test]
    fn unknown_table_is_unresolved() {
        let q = sb_sql::parse("SELECT a FROM nope").unwrap();
        assert!(matches!(
            extract(&q, &sdss_schema()),
            Err(TemplateError::Unresolved(_))
        ));
    }

    #[test]
    fn literal_flipped_comparison() {
        let t = tpl("SELECT s.specobjid FROM specobj AS s WHERE 0.5 < s.z");
        assert_eq!(t.values.len(), 1);
        assert_eq!(t.values[0].kind, ValueKind::Cmp);
        // Skeleton preserves the literal-first shape.
        assert!(t.signature().contains("'__V0__' <"));
    }

    #[test]
    fn quadruples_match_figure2_shape() {
        let t = tpl("SELECT s.specobjid FROM specobj AS s WHERE s.subclass = 'STARBURST'");
        let quads = t.quadruples();
        assert_eq!(quads.len(), 2);
        // Projection leaf: no value; filter leaf: value 0.
        assert_eq!(quads[0].to_string(), "A(0) T(0) C(0) V(*)");
        assert_eq!(quads[1].to_string(), "A(0) T(0) C(1) V(0)");
    }

    #[test]
    fn instantiation_round_trips_identity() {
        // Filling a template with its own leaves reproduces an equivalent
        // query (modulo canonical aliases).
        let sql =
            "SELECT s.bestobjid, s.z FROM specobj AS s WHERE s.class = 'GALAXY' AND s.z > 0.5";
        let q = sb_sql::parse(sql).unwrap();
        let t = extract(&q, &sdss_schema()).unwrap();
        let a = Assignment {
            tables: vec!["specobj".into()],
            columns: vec!["bestobjid".into(), "z".into(), "class".into()],
            values: vec![Literal::Str("GALAXY".into()), Literal::Float(0.5)],
        };
        let rebuilt = t.instantiate(&a).unwrap();
        assert_eq!(
            rebuilt.to_string(),
            "SELECT T1.bestobjid, T1.z FROM specobj AS T1 WHERE T1.class = 'GALAXY' AND T1.z > 0.5"
        );
    }

    #[test]
    fn bad_assignment_is_rejected() {
        let t = tpl("SELECT s.z FROM specobj AS s");
        let err = t
            .instantiate(&Assignment {
                tables: vec![],
                columns: vec![],
                values: vec![],
            })
            .unwrap_err();
        assert!(matches!(err, TemplateError::BadAssignment(_)));
    }
}
