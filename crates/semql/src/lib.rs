//! # sb-semql — SemQL-style query templates (Phase 1: Seeding)
//!
//! The paper's pipeline transforms manually created SQL queries into an
//! abstract-syntax-tree representation (SemQL, after IRNet) and replaces
//! the leaf nodes — **t**ables, **c**olumns and **v**alues — with
//! placeholder positions, producing *query templates* (Figure 1, Phase 1;
//! Figure 2 shows a worked example with leaf-node *quadruples*).
//!
//! This crate implements:
//!
//! - [`Template`]: a skeleton query with positional placeholders plus slot
//!   metadata describing the context of every leaf (aggregation, group-by,
//!   join-key, math-operand, comparison, …). The metadata is exactly what
//!   Algorithm 1's constrained samplers need.
//! - [`extract`]: template extraction from a parsed query against a
//!   schema (resolving unqualified columns and canonicalizing aliases to
//!   `T1, T2, …` as in the paper's figures).
//! - [`Template::instantiate`]: rebuild a concrete SQL query from a slot
//!   [`Assignment`] — the "Generated AST created on-the-fly" of
//!   Algorithm 1, line 21.
//! - [`Template::quadruples`]: the Figure 2 leaf-node quadruple view
//!   `(aggregator position, table position, column position, value
//!   position)`.
//!
//! Extraction is deliberately partial: query shapes outside the supported
//! grammar return [`TemplateError::Unsupported`], and the pipeline simply
//! skips those seeds. This mirrors the paper's observation that overly
//! complex templates generate semantically broken queries (§3.4).

mod extract;

pub use extract::extract;

use sb_sql::{AggFunc, Literal, Query};
use std::fmt;

/// Errors from template extraction or instantiation.
#[derive(Debug, Clone, PartialEq)]
pub enum TemplateError {
    /// The query uses a shape the template grammar does not cover.
    Unsupported(String),
    /// A column or table could not be resolved against the schema.
    Unresolved(String),
    /// An [`Assignment`] does not match the template's slot counts.
    BadAssignment(String),
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::Unsupported(m) => write!(f, "unsupported query shape: {m}"),
            TemplateError::Unresolved(m) => write!(f, "unresolved reference: {m}"),
            TemplateError::BadAssignment(m) => write!(f, "bad assignment: {m}"),
        }
    }
}

impl std::error::Error for TemplateError {}

/// Where a column slot occurs inside the query; a slot can play several
/// roles at once (e.g. projected *and* filtered).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnContexts {
    /// Appears under an aggregate function.
    pub agg: Option<AggFunc>,
    /// Appears in `GROUP BY`.
    pub group_by: bool,
    /// Appears in `ORDER BY`.
    pub order_by: bool,
    /// Appears in the projection list (outside aggregates).
    pub projection: bool,
    /// Appears as one side of a join `ON` equality.
    pub join_key: bool,
    /// Appears on the left of an inequality comparison (`< <= > >=`) or
    /// `BETWEEN` — requires a numeric column.
    pub comparison: bool,
    /// Appears on the left of `=`/`<>`/`IN` — any type works.
    pub equality: bool,
    /// Appears on the left of `LIKE` — requires a text column.
    pub like: bool,
    /// Appears as an operand of a binary math expression.
    pub math: bool,
}

/// One column placeholder.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSlot {
    /// Which table slot the column belongs to.
    pub table_slot: usize,
    /// Syntactic contexts the slot occurs in.
    pub contexts: ColumnContexts,
    /// The other column slot of the same binary math expression, when this
    /// slot is a math operand (`u - r`: each is the other's peer).
    pub math_peer: Option<usize>,
}

/// What kind of literal a value placeholder stands for; drives value
/// sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueKind {
    /// Compared with `=` / `<>` / member of `IN` list: sample an existing
    /// value of the bound column.
    Eq,
    /// Compared with an inequality or `BETWEEN` bound: sample within the
    /// column's numeric range.
    Cmp,
    /// A `LIKE` pattern: sample a substring pattern of an existing value.
    Like,
    /// Compared against an aggregate (e.g. `HAVING COUNT(*) > v`): sample
    /// a small count-like number.
    AggCmp,
}

/// One value placeholder.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueSlot {
    /// The column slot the value is compared against; `None` for
    /// aggregate comparisons like `COUNT(*) > v`.
    pub column_slot: Option<usize>,
    /// What kind of literal to sample.
    pub kind: ValueKind,
}

/// A join equality between two table slots, extracted from `ON` clauses.
/// Filling must pick a foreign-key edge between the sampled tables and
/// write its columns into `left_col` / `right_col`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinEdge {
    /// Table slot on the left of the equality.
    pub left_table: usize,
    /// Table slot on the right of the equality.
    pub right_table: usize,
    /// Column slot on the left side.
    pub left_col: usize,
    /// Column slot on the right side.
    pub right_col: usize,
}

/// A query template: placeholder skeleton plus slot metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Template {
    /// The skeleton query. Table names are `__T{i}__`, column names
    /// `__C{j}__`, values `'__V{k}__'`; table aliases are canonicalized to
    /// `T{i+1}`.
    pub skeleton: Query,
    /// Number of table slots.
    pub table_count: usize,
    /// Column slots in first-occurrence order.
    pub columns: Vec<ColumnSlot>,
    /// Value slots in first-occurrence order.
    pub values: Vec<ValueSlot>,
    /// Join equalities between table slots.
    pub joins: Vec<JoinEdge>,
    /// The SQL the template was extracted from (provenance).
    pub source: String,
}

/// The Figure 2 quadruple: positions of (aggregator, table, column, value)
/// for one leaf attribute. `None` marks an absent component (e.g. a
/// projection has no value; `COUNT(*)` has no column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafQuadruple {
    /// Aggregate position: index into [`AggFunc::ALL`] + 1, or 0 for "no
    /// aggregation" — matching the paper's `A(0)` notation.
    pub agg: usize,
    /// Table slot.
    pub table: Option<usize>,
    /// Column slot.
    pub column: Option<usize>,
    /// Value slot.
    pub value: Option<usize>,
}

impl fmt::Display for LeafQuadruple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn opt(v: Option<usize>) -> String {
            v.map(|x| x.to_string()).unwrap_or_else(|| "*".to_string())
        }
        write!(
            f,
            "A({}) T({}) C({}) V({})",
            self.agg,
            opt(self.table),
            opt(self.column),
            opt(self.value)
        )
    }
}

/// A concrete filling of a template's slots.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Table name per table slot.
    pub tables: Vec<String>,
    /// Column name per column slot.
    pub columns: Vec<String>,
    /// Literal per value slot.
    pub values: Vec<Literal>,
}

impl Template {
    /// A canonical signature for de-duplicating templates: the printed
    /// skeleton (placeholders included).
    pub fn signature(&self) -> String {
        self.skeleton.to_string()
    }

    /// The Figure 2 leaf-quadruple view: one quadruple per value slot
    /// (filter leaves) and one per column slot that is not value-bound
    /// (projection/group/order leaves).
    pub fn quadruples(&self) -> Vec<LeafQuadruple> {
        let agg_pos = |agg: Option<AggFunc>| -> usize {
            match agg {
                None => 0,
                Some(a) => AggFunc::ALL.iter().position(|x| *x == a).unwrap_or(0) + 1,
            }
        };
        let mut out = Vec::new();
        let value_bound: Vec<Option<usize>> = self.values.iter().map(|v| v.column_slot).collect();
        for (ci, col) in self.columns.iter().enumerate() {
            let value = value_bound.iter().position(|b| *b == Some(ci));
            out.push(LeafQuadruple {
                agg: agg_pos(col.contexts.agg),
                table: Some(col.table_slot),
                column: Some(ci),
                value,
            });
        }
        // Aggregate-only value slots (COUNT(*) > v) have no column.
        for (vi, v) in self.values.iter().enumerate() {
            if v.column_slot.is_none() {
                out.push(LeafQuadruple {
                    agg: 0,
                    table: None,
                    column: None,
                    value: Some(vi),
                });
            }
        }
        out
    }

    /// Rebuild a concrete query from an assignment (Algorithm 1 line 21,
    /// "Generated AST created on-the-fly").
    pub fn instantiate(&self, a: &Assignment) -> Result<Query, TemplateError> {
        if a.tables.len() != self.table_count {
            return Err(TemplateError::BadAssignment(format!(
                "expected {} tables, got {}",
                self.table_count,
                a.tables.len()
            )));
        }
        if a.columns.len() != self.columns.len() {
            return Err(TemplateError::BadAssignment(format!(
                "expected {} columns, got {}",
                self.columns.len(),
                a.columns.len()
            )));
        }
        if a.values.len() != self.values.len() {
            return Err(TemplateError::BadAssignment(format!(
                "expected {} values, got {}",
                self.values.len(),
                a.values.len()
            )));
        }
        let mut q = self.skeleton.clone();
        substitute_query(&mut q, a)?;
        Ok(q)
    }
}

/// Parse a `__T{i}__` / `__C{i}__` / `__V{i}__` placeholder.
pub(crate) fn placeholder_index(s: &str, kind: char) -> Option<usize> {
    let inner = s.strip_prefix("__")?.strip_suffix("__")?;
    let rest = inner.strip_prefix(kind)?;
    rest.parse().ok()
}

fn substitute_query(q: &mut Query, a: &Assignment) -> Result<(), TemplateError> {
    substitute_set_expr(&mut q.body, a)?;
    for item in &mut q.order_by {
        substitute_expr(&mut item.expr, a)?;
    }
    Ok(())
}

fn substitute_set_expr(body: &mut sb_sql::SetExpr, a: &Assignment) -> Result<(), TemplateError> {
    match body {
        sb_sql::SetExpr::Select(s) => substitute_select(s, a),
        sb_sql::SetExpr::SetOp { left, right, .. } => {
            substitute_set_expr(left, a)?;
            substitute_set_expr(right, a)
        }
    }
}

fn substitute_select(s: &mut sb_sql::Select, a: &Assignment) -> Result<(), TemplateError> {
    substitute_table_ref(&mut s.from, a)?;
    for j in &mut s.joins {
        substitute_table_ref(&mut j.table, a)?;
        if let Some(c) = &mut j.constraint {
            substitute_expr(c, a)?;
        }
    }
    for p in &mut s.projections {
        if let sb_sql::SelectItem::Expr { expr, .. } = p {
            substitute_expr(expr, a)?;
        }
    }
    if let Some(sel) = &mut s.selection {
        substitute_expr(sel, a)?;
    }
    for g in &mut s.group_by {
        substitute_expr(g, a)?;
    }
    if let Some(h) = &mut s.having {
        substitute_expr(h, a)?;
    }
    Ok(())
}

fn substitute_table_ref(tr: &mut sb_sql::TableRef, a: &Assignment) -> Result<(), TemplateError> {
    match &mut tr.factor {
        sb_sql::TableFactor::Table(name) => {
            if let Some(i) = placeholder_index(name, 'T') {
                let t = a.tables.get(i).ok_or_else(|| {
                    TemplateError::BadAssignment(format!("missing table slot {i}"))
                })?;
                *name = t.clone();
            }
            Ok(())
        }
        sb_sql::TableFactor::Derived(q) => substitute_query(q, a),
    }
}

fn substitute_expr(e: &mut sb_sql::Expr, a: &Assignment) -> Result<(), TemplateError> {
    use sb_sql::Expr;
    match e {
        Expr::Column(c) => {
            if let Some(i) = placeholder_index(&c.column, 'C') {
                let col = a.columns.get(i).ok_or_else(|| {
                    TemplateError::BadAssignment(format!("missing column slot {i}"))
                })?;
                c.column = col.clone();
            }
            Ok(())
        }
        Expr::Literal(l) => {
            if let Literal::Str(s) = l {
                if let Some(i) = placeholder_index(s, 'V') {
                    let v = a.values.get(i).ok_or_else(|| {
                        TemplateError::BadAssignment(format!("missing value slot {i}"))
                    })?;
                    *l = v.clone();
                }
            }
            Ok(())
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => substitute_expr(expr, a),
        Expr::Binary { left, right, .. } => {
            substitute_expr(left, a)?;
            substitute_expr(right, a)
        }
        Expr::Agg { arg, .. } => match arg {
            sb_sql::AggArg::Star => Ok(()),
            sb_sql::AggArg::Expr(inner) => substitute_expr(inner, a),
        },
        Expr::Between {
            expr, low, high, ..
        } => {
            substitute_expr(expr, a)?;
            substitute_expr(low, a)?;
            substitute_expr(high, a)
        }
        Expr::InList { expr, list, .. } => {
            substitute_expr(expr, a)?;
            for item in list {
                substitute_expr(item, a)?;
            }
            Ok(())
        }
        Expr::InSubquery { expr, subquery, .. } => {
            substitute_expr(expr, a)?;
            substitute_query(subquery, a)
        }
        Expr::Like { expr, pattern, .. } => {
            substitute_expr(expr, a)?;
            substitute_expr(pattern, a)
        }
        Expr::Subquery(q) => substitute_query(q, a),
        Expr::Exists { subquery, .. } => substitute_query(subquery, a),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placeholder_parsing() {
        assert_eq!(placeholder_index("__T0__", 'T'), Some(0));
        assert_eq!(placeholder_index("__C12__", 'C'), Some(12));
        assert_eq!(placeholder_index("__V3__", 'V'), Some(3));
        assert_eq!(placeholder_index("__T0__", 'C'), None);
        assert_eq!(placeholder_index("plain", 'T'), None);
        assert_eq!(placeholder_index("__Tx__", 'T'), None);
    }
}
