//! Plan-cache equivalence: for thousands of fuzzer statements per
//! domain, the cached path must be indistinguishable — byte for byte,
//! errors included — from planning every request from scratch.
//!
//! Three executions per statement:
//!
//! - **plain** — service with the plan cache disabled (parse + plan per
//!   request, the pre-serving behavior),
//! - **cold**  — cache-enabled service, first touch (parse + plan +
//!   capture),
//! - **warm**  — cache-enabled service, repeat (cached `OwnedPlan`
//!   reified and executed).
//!
//! All three responses must serialize identically. Error parity rides
//! along for free: the envelope JSON embeds the error code and message,
//! so a statement that fails must fail the same way on every path.
//!
//! `SB_SERVE_FUZZ_COUNT` overrides the per-domain statement count
//! (default 2000, matching the differential fuzzer's default budget).

use sb_data::Domain;
use sb_serve::{QueryRequest, QueryService, ServeConfig};
use std::sync::Arc;

fn fuzz_count() -> usize {
    std::env::var("SB_SERVE_FUZZ_COUNT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000)
}

#[test]
fn cold_warm_and_uncached_responses_are_byte_identical() {
    let count = fuzz_count();
    for domain in Domain::ALL {
        let db = Arc::new(sb_fuzz::fuzz_database(domain));
        let cached =
            QueryService::new(ServeConfig::default()).with_snapshot(domain.name(), Arc::clone(&db));
        let plain = QueryService::new(ServeConfig {
            plan_cache: false,
            ..ServeConfig::default()
        })
        .with_snapshot(domain.name(), Arc::clone(&db));

        // Distinct statement texts seen so far: the generator can
        // reproduce a simple statement from two different per-index
        // seeds, and a repeat is legitimately a cache hit even on its
        // "cold" pass.
        let mut seen = std::collections::HashSet::new();
        for i in 0..count as u64 {
            let sql = sb_fuzz::workload_query(&db, 0xC0FFEE, i).to_string();
            let req = QueryRequest::new(i, domain.name(), &sql);
            let from_plain = plain.handle(&req);
            let cold = cached.handle(&req);
            let warm = cached.handle(&req);
            let first = seen.insert(sql.clone());
            assert_eq!(
                cold.cache_hit, !first,
                "cold pass must miss exactly on first touch: {sql}"
            );
            assert!(warm.cache_hit, "repeat must hit the raw layer: {sql}");
            assert_eq!(
                cold.to_json(),
                from_plain.to_json(),
                "{}: cold cached response diverged from the uncached service\nsql: {sql}",
                domain.name()
            );
            assert_eq!(
                warm.to_json(),
                from_plain.to_json(),
                "{}: warm cached response diverged from the uncached service\nsql: {sql}",
                domain.name()
            );
        }
        let (hits, misses) = cached.cache_stats();
        assert_eq!(
            misses,
            seen.len() as u64,
            "{}: one miss per distinct statement",
            domain.name()
        );
        assert_eq!(
            hits,
            2 * count as u64 - seen.len() as u64,
            "{}: every non-first touch is a hit",
            domain.name()
        );
    }
}

/// The same equivalence swept across the full `ExecOptions` matrix the
/// differential fuzzer uses (96 configurations), at a reduced statement
/// budget: the captured plan must reproduce fresh planning under every
/// join strategy, pushdown, copy, compilation and columnar switch.
#[test]
fn cache_equivalence_holds_across_the_exec_options_matrix() {
    let count = (fuzz_count() / 50).max(10);
    for domain in Domain::ALL {
        let db = Arc::new(sb_fuzz::fuzz_database(domain));
        let sqls: Vec<String> = (0..count as u64)
            .map(|i| sb_fuzz::workload_query(&db, 0xBEEF, i).to_string())
            .collect();
        for (name, exec) in sb_fuzz::exec_matrix() {
            let cached = QueryService::new(ServeConfig {
                exec,
                ..ServeConfig::default()
            })
            .with_snapshot(domain.name(), Arc::clone(&db));
            let plain = QueryService::new(ServeConfig {
                exec,
                plan_cache: false,
                ..ServeConfig::default()
            })
            .with_snapshot(domain.name(), Arc::clone(&db));
            for (i, sql) in sqls.iter().enumerate() {
                let req = QueryRequest::new(i as u64, domain.name(), sql);
                let want = plain.handle(&req).to_json();
                let cold = cached.handle(&req).to_json();
                let warm = cached.handle(&req).to_json();
                assert_eq!(
                    cold,
                    want,
                    "{} [{name}] cold response diverged\nsql: {sql}",
                    domain.name()
                );
                assert_eq!(
                    warm,
                    want,
                    "{} [{name}] warm response diverged\nsql: {sql}",
                    domain.name()
                );
            }
        }
    }
}
