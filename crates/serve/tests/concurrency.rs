//! Concurrency correctness: N threads hammering one shared snapshot
//! through one service must produce responses byte-identical to a
//! single-threaded replay of the same workload.
//!
//! This is the serving layer's core guarantee made testable: snapshots
//! are immutable, execution is deterministic, and the only shared
//! mutable state (plan cache, admission counters) must never leak into
//! response bytes. The matrix covers the plan cache on/off and the
//! columnar engine on/off, so cache first-touch races and the batch
//! fallback path are both exercised under real contention.
//!
//! `SB_SERVE_COUNT` overrides the per-domain request count.

use sb_data::Domain;
use sb_engine::ExecOptions;
use sb_serve::{LoadConfig, QueryRequest, QueryService, ServeConfig};
use std::sync::Arc;

const THREADS: usize = 8;

fn request_count() -> usize {
    std::env::var("SB_SERVE_COUNT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// Replay the whole workload on one thread, collecting response JSON.
fn replay(service: &QueryService, domain: Domain, sqls: &[String]) -> Vec<String> {
    sqls.iter()
        .enumerate()
        .map(|(i, sql)| {
            service
                .handle(&QueryRequest::new(i as u64, domain.name(), sql))
                .to_json()
        })
        .collect()
}

fn check_domain(domain: Domain, plan_cache: bool, columnar: bool) {
    let db = Arc::new(sb_fuzz::fuzz_database(domain));
    let count = request_count();
    let load = LoadConfig::default();
    let sqls: Vec<String> = (0..count as u64)
        .map(|i| sb_serve::loadgen::workload_sql(&db, &load, i))
        .collect();

    let cfg = ServeConfig {
        // Every thread replays the full workload concurrently; size
        // admission so correctness runs never shed load.
        max_in_flight: THREADS * 2,
        exec: ExecOptions {
            columnar,
            ..ExecOptions::default()
        },
        plan_cache,
        ..ServeConfig::default()
    };

    let baseline = {
        let service = QueryService::new(cfg).with_snapshot(domain.name(), Arc::clone(&db));
        replay(&service, domain, &sqls)
    };

    // Fresh service, so concurrent threads also race on cache
    // first-touch rather than finding it pre-warmed.
    let service = QueryService::new(cfg).with_snapshot(domain.name(), Arc::clone(&db));
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| s.spawn(|| replay(&service, domain, &sqls)))
            .collect();
        for (t, handle) in handles.into_iter().enumerate() {
            let got = handle.join().expect("client thread panicked");
            for (i, (g, want)) in got.iter().zip(&baseline).enumerate() {
                assert_eq!(
                    g,
                    want,
                    "{} thread {t} request {i} diverged from the single-threaded \
                     baseline (plan_cache={plan_cache}, columnar={columnar})\nsql: {}",
                    domain.name(),
                    sqls[i]
                );
            }
        }
    });

    if plan_cache {
        let (hits, _) = service.cache_stats();
        assert!(
            hits > 0,
            "{}: concurrent replay of a hot-set workload must hit the plan cache",
            domain.name()
        );
    }
}

#[test]
fn concurrent_replay_is_byte_identical_cached_columnar() {
    for domain in Domain::ALL {
        check_domain(domain, true, true);
    }
}

#[test]
fn concurrent_replay_is_byte_identical_cached_row_engine() {
    for domain in Domain::ALL {
        check_domain(domain, true, false);
    }
}

#[test]
fn concurrent_replay_is_byte_identical_uncached_columnar() {
    for domain in Domain::ALL {
        check_domain(domain, false, true);
    }
}

#[test]
fn concurrent_replay_is_byte_identical_uncached_row_engine() {
    for domain in Domain::ALL {
        check_domain(domain, false, false);
    }
}
