//! Envelope and guardrail goldens: one pinned JSON response per error
//! class, over a tiny handcrafted snapshot.
//!
//! The response serialization is a wire contract — clients dispatch on
//! `code` and render `rows` — so each class is pinned byte-for-byte:
//! a renamed code, reordered key or reworded engine error shows up here
//! as a diff, not in a consumer. The timeout and overload responses are
//! made deterministic by construction (`timeout_ms = 0` expires at
//! admission; `max_in_flight = 0` rejects everything), so even the
//! timing-dependent classes golden cleanly.

use sb_engine::{Database, Value};
use sb_schema::{Column, ColumnType, Schema, TableDef};
use sb_serve::{QueryRequest, QueryService, ServeConfig};
use std::sync::Arc;

/// Three rows exercising every cell shape the serializer handles:
/// ints, floats, text with a quote, NULL.
fn demo_db() -> Database {
    let schema = Schema::new("demo").with_table(TableDef::new(
        "t",
        vec![
            Column::pk("id", ColumnType::Int),
            Column::new("name", ColumnType::Text),
            Column::new("score", ColumnType::Float),
        ],
    ));
    let mut db = Database::new(schema);
    db.table_mut("t").unwrap().push_rows(vec![
        vec![
            Value::Int(1),
            Value::Text("alpha".into()),
            Value::Float(1.5),
        ],
        vec![
            Value::Int(2),
            Value::Text("b \"quoted\"".into()),
            Value::Float(-0.25),
        ],
        vec![Value::Int(3), Value::Null, Value::Null],
    ]);
    db
}

fn service(cfg: ServeConfig) -> QueryService {
    QueryService::new(cfg).with_snapshot("demo", Arc::new(demo_db()))
}

fn golden(cfg: ServeConfig, req: QueryRequest, want: &str) {
    let got = service(cfg).handle(&req).to_json();
    assert_eq!(got, want, "envelope golden diverged for {}", req.sql);
}

#[test]
fn golden_ok() {
    golden(
        ServeConfig::default(),
        QueryRequest::new(
            1,
            "demo",
            "SELECT t.id, t.name, t.score FROM t ORDER BY t.id",
        ),
        "{\"id\": 1, \"code\": \"ok\", \"error\": null, \
         \"columns\": [\"t.id\", \"t.name\", \"t.score\"], \
         \"rows\": [[1, \"alpha\", 1.5], [2, \"b \\\"quoted\\\"\", -0.25], [3, null, null]], \
         \"row_count\": 3, \"total_rows\": 3, \"truncated\": false}",
    );
}

#[test]
fn golden_truncated() {
    let mut req = QueryRequest::new(2, "demo", "SELECT t.id FROM t ORDER BY t.id");
    req.row_cap = Some(1);
    golden(
        ServeConfig::default(),
        req,
        "{\"id\": 2, \"code\": \"ok\", \"error\": null, \"columns\": [\"t.id\"], \
         \"rows\": [[1]], \"row_count\": 1, \"total_rows\": 3, \"truncated\": true}",
    );
}

// NB: the ok/truncated goldens pin the engine's output-column naming
// too (unaliased projections render as the expression text, `t.id`).

#[test]
fn golden_invalid_request_unknown_snapshot() {
    golden(
        ServeConfig::default(),
        QueryRequest::new(3, "nowhere", "SELECT t.id FROM t"),
        "{\"id\": 3, \"code\": \"invalid_request\", \"error\": \"unknown snapshot `nowhere`\", \
         \"columns\": [], \"rows\": [], \"row_count\": 0, \"total_rows\": 0, \"truncated\": false}",
    );
}

#[test]
fn golden_invalid_request_multi_statement() {
    golden(
        ServeConfig::default(),
        QueryRequest::new(4, "demo", "SELECT t.id FROM t; SELECT t.id FROM t"),
        "{\"id\": 4, \"code\": \"invalid_request\", \
         \"error\": \"multiple statements in one request\", \
         \"columns\": [], \"rows\": [], \"row_count\": 0, \"total_rows\": 0, \"truncated\": false}",
    );
}

#[test]
fn golden_not_read_only() {
    golden(
        ServeConfig::default(),
        QueryRequest::new(5, "demo", "DROP TABLE t"),
        "{\"id\": 5, \"code\": \"not_read_only\", \
         \"error\": \"statement must start with SELECT, found `DROP`\", \
         \"columns\": [], \"rows\": [], \"row_count\": 0, \"total_rows\": 0, \"truncated\": false}",
    );
}

#[test]
fn golden_parse_error() {
    golden(
        ServeConfig::default(),
        QueryRequest::new(6, "demo", "SELECT FROM"),
        "{\"id\": 6, \"code\": \"parse_error\", \
         \"error\": \"parse error at byte 11: unexpected token `FROM` in expression\", \
         \"columns\": [], \"rows\": [], \"row_count\": 0, \"total_rows\": 0, \"truncated\": false}",
    );
}

#[test]
fn golden_bind_error() {
    golden(
        ServeConfig::default(),
        QueryRequest::new(7, "demo", "SELECT t.nope FROM t"),
        "{\"id\": 7, \"code\": \"bind_error\", \"error\": \"unknown column `t.nope`\", \
         \"columns\": [], \"rows\": [], \"row_count\": 0, \"total_rows\": 0, \"truncated\": false}",
    );
}

#[test]
fn golden_exec_error() {
    golden(
        ServeConfig::default(),
        QueryRequest::new(8, "demo", "SELECT t.name + t.id FROM t"),
        "{\"id\": 8, \"code\": \"exec_error\", \
         \"error\": \"type mismatch: non-numeric operand alpha\", \
         \"columns\": [], \"rows\": [], \"row_count\": 0, \"total_rows\": 0, \"truncated\": false}",
    );
}

#[test]
fn golden_timeout() {
    let mut req = QueryRequest::new(9, "demo", "SELECT t.id FROM t");
    req.timeout_ms = Some(0);
    golden(
        ServeConfig::default(),
        req,
        "{\"id\": 9, \"code\": \"timeout\", \
         \"error\": \"deadline exceeded at admission (timeout_ms=0)\", \
         \"columns\": [], \"rows\": [], \"row_count\": 0, \"total_rows\": 0, \"truncated\": false}",
    );
}

#[test]
fn golden_overloaded() {
    golden(
        ServeConfig {
            max_in_flight: 0,
            ..ServeConfig::default()
        },
        QueryRequest::new(10, "demo", "SELECT t.id FROM t"),
        "{\"id\": 10, \"code\": \"overloaded\", \
         \"error\": \"too many requests in flight (max 0)\", \
         \"columns\": [], \"rows\": [], \"row_count\": 0, \"total_rows\": 0, \"truncated\": false}",
    );
}

/// The stable code strings themselves, pinned independently of any
/// particular response.
#[test]
fn error_codes_are_stable() {
    use sb_serve::ErrorCode::*;
    let table = [
        (Ok, "ok"),
        (InvalidRequest, "invalid_request"),
        (NotReadOnly, "not_read_only"),
        (ParseError, "parse_error"),
        (BindError, "bind_error"),
        (ExecError, "exec_error"),
        (Timeout, "timeout"),
        (Overloaded, "overloaded"),
    ];
    for (code, wire) in table {
        assert_eq!(code.as_str(), wire);
    }
}
