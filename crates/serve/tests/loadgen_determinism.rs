//! Load-generator determinism: the workload is a pure function of
//! `(snapshot, seed, index)`, so replaying it at any client count
//! produces the identical request stream — and a real mini load run
//! emits a `BENCH_serve.json` document that validates.

use sb_data::Domain;
use sb_serve::loadgen::workload_sql;
use sb_serve::{
    render_bench_json, run_domain_load, validate_bench_json, LoadConfig, QueryRequest,
    QueryService, ServeConfig, SlowLogConfig,
};
use std::sync::Arc;

/// The request stream exactly as `run_domain_load`'s clients generate
/// it: client `c` of `n` walks indices `c, c + n, c + 2n, ...`. Streams
/// are reassembled by index so the comparison covers both the statement
/// bytes and the index → client assignment.
fn workload_at(clients: usize, requests: usize, load: &LoadConfig) -> Vec<String> {
    let db = sb_fuzz::fuzz_database(Domain::Sdss);
    let mut by_index = vec![String::new(); requests];
    for client in 0..clients {
        let mut index = client as u64;
        while (index as usize) < requests {
            by_index[index as usize] = workload_sql(&db, load, index);
            index += clients as u64;
        }
    }
    assert!(
        by_index.iter().all(|s| !s.is_empty()),
        "round-robin partitioning must cover every index exactly once"
    );
    by_index
}

#[test]
fn workload_bytes_are_identical_at_1_4_and_16_clients() {
    let load = LoadConfig::default();
    let requests = 256;
    let single = workload_at(1, requests, &load);
    assert_eq!(
        single,
        workload_at(4, requests, &load),
        "4-client workload diverged from single-client"
    );
    assert_eq!(
        single,
        workload_at(16, requests, &load),
        "16-client workload diverged from single-client"
    );
    // The hot-set mix must actually mix: repeats for the cache AND a
    // cold tail of distinct statements.
    let distinct: std::collections::HashSet<&String> = single.iter().collect();
    assert!(distinct.len() < requests, "hot set must repeat statements");
    assert!(
        distinct.len() > load.hot_set,
        "cold tail must add fresh statements"
    );
}

/// Profiling is side-band only: replaying the exact loadgen workload
/// against a fully-instrumented service (slow log armed at threshold 0,
/// every request opting into `profile`) produces byte-identical wire
/// responses to a plain service — the profile field rides outside
/// `to_json()` and never perturbs execution.
#[test]
fn profiling_does_not_perturb_workload_response_bytes() {
    let db = Arc::new(sb_fuzz::fuzz_database(Domain::Sdss));
    let load = LoadConfig::default();
    let plain = QueryService::new(ServeConfig::default()).with_snapshot("sdss", Arc::clone(&db));
    let instrumented = QueryService::new(ServeConfig {
        slow_log: SlowLogConfig {
            enabled: true,
            threshold_us: 0,
        },
        ..ServeConfig::default()
    })
    .with_snapshot("sdss", Arc::clone(&db));

    let mut executed = 0;
    for index in 0..128u64 {
        let sql = workload_sql(&db, &load, index);
        let req = QueryRequest::new(index, "sdss", &sql);
        let mut profiled_req = QueryRequest::new(index, "sdss", &sql);
        profiled_req.profile = true;

        let a = plain.handle(&req);
        let b = instrumented.handle(&profiled_req);
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "request {index}: profiling changed the wire response for: {sql}"
        );
        assert!(a.profile.is_none(), "plain service must not profile");
        assert!(b.profile.is_some(), "instrumented service must profile");
        // Anything past the guardrail and prepare reaches execution and
        // is slow-logged at threshold 0 — errors included.
        if !matches!(
            a.code.as_str(),
            "invalid_request" | "not_read_only" | "parse_error"
        ) {
            executed += 1;
        }
    }
    assert!(executed > 0, "workload produced no executable statements");
    assert_eq!(
        instrumented.drain_slow_log().len(),
        executed,
        "threshold-0 slow log must record every executed request"
    );
}

/// The same property through `run_domain_load` itself: sampling
/// profiles and arming the slow log must not change what the service
/// answers, only add side-band reporting.
#[test]
fn sampled_profiling_run_matches_plain_run_outcomes() {
    let base = LoadConfig {
        clients: 2,
        requests: 60,
        ..LoadConfig::default()
    };
    let plain = run_domain_load(Domain::Sdss, &base);
    let instrumented = run_domain_load(
        Domain::Sdss,
        &LoadConfig {
            profile_sample: 7,
            slow_log_threshold_us: Some(0),
            ..base
        },
    );
    assert_eq!(plain.ok, instrumented.ok);
    assert_eq!(plain.errors_by_code, instrumented.errors_by_code);
    assert_eq!(plain.cache_misses, instrumented.cache_misses);
    assert!(plain.slow_log_lines.is_empty());
    assert_eq!(
        instrumented.slow_log_lines.len(),
        instrumented.ok + instrumented.errors
            - instrumented
                .errors_by_code
                .iter()
                .filter(|(c, _)| matches!(*c, "invalid_request" | "not_read_only" | "parse_error"))
                .map(|(_, n)| n)
                .sum::<usize>(),
        "slow log records exactly the requests that reached execution"
    );
    for line in &instrumented.slow_log_lines {
        sb_obs::json::validate(line).unwrap_or_else(|e| panic!("bad slow-log JSON ({e}): {line}"));
    }
}

#[test]
fn mini_load_run_emits_a_validating_bench_document() {
    let load = LoadConfig {
        clients: 4,
        requests: 120,
        ..LoadConfig::default()
    };
    let reports: Vec<_> = Domain::ALL
        .into_iter()
        .map(|d| run_domain_load(d, &load))
        .collect();
    for r in &reports {
        assert_eq!(
            r.ok + r.errors,
            r.requests,
            "{}: every request answered",
            r.domain
        );
        // The fuzzer deliberately generates a slice of erroring
        // statements (the differential oracle checks error parity), so
        // a healthy run answers mostly-ok, not all-ok.
        assert!(
            r.errors < r.requests / 5,
            "{}: error responses dominate the workload ({}/{})",
            r.domain,
            r.errors,
            r.requests
        );
        assert!(
            r.cache_hits > 0,
            "{}: hot set must hit the plan cache",
            r.domain
        );
        assert!(r.qps > 0.0 && r.p50_us <= r.p95_us && r.p95_us <= r.p99_us);
    }
    let doc = render_bench_json(&load, &reports);
    validate_bench_json(&doc).expect("load run must emit a valid BENCH_serve document");
    for domain in Domain::ALL {
        assert!(
            doc.contains(&format!("\"domain\": \"{}\"", domain.name())),
            "document must carry a section for {}",
            domain.name()
        );
    }
}
