//! Request / response envelopes and the read-only SQL guardrail.
//!
//! The service speaks a small structured protocol rather than raw SQL
//! strings in, `Display` dumps out: every request carries its own
//! row-cap and timeout overrides, and every response carries a stable
//! machine-readable [`ErrorCode`] plus an explicit `truncated` marker,
//! so clients never have to parse error prose or guess whether a result
//! was clipped.
//!
//! ## Determinism contract
//!
//! [`QueryResponse::to_json`] renders every field that is a pure
//! function of `(snapshot, request)` — and **only** those fields.
//! `cache_hit` is deliberately excluded: under concurrent first-touch
//! the thread that populates the plan cache sees a miss while the rest
//! see hits, so the flag depends on scheduling. The byte-identity tests
//! compare `to_json` output across thread counts and cache modes, which
//! is exactly the guarantee the serialization is scoped to.

use sb_engine::{EngineError, Value};
use sb_obs::json;
use std::fmt::Write as _;

/// Stable, machine-readable response status. The string forms are a
/// wire contract pinned by golden tests — never repurpose or rename
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Query executed; rows are present (possibly truncated).
    Ok,
    /// Malformed request: unknown snapshot name, empty SQL, or multiple
    /// statements in one request.
    InvalidRequest,
    /// The read-only guardrail rejected the statement before parsing.
    NotReadOnly,
    /// The SQL failed to parse.
    ParseError,
    /// Name resolution failed: unknown table/column or ambiguous
    /// reference.
    BindError,
    /// The query parsed and bound but failed during execution
    /// (type mismatch, unsupported construct, overflow, ...).
    ExecError,
    /// The per-request deadline expired.
    Timeout,
    /// Admission control rejected the request: too many in flight.
    Overloaded,
}

impl ErrorCode {
    /// Every code in wire order — the iteration basis for per-code
    /// counters (the load generator's `errors_by_code` breakdown).
    pub const ALL: [ErrorCode; 8] = [
        ErrorCode::Ok,
        ErrorCode::InvalidRequest,
        ErrorCode::NotReadOnly,
        ErrorCode::ParseError,
        ErrorCode::BindError,
        ErrorCode::ExecError,
        ErrorCode::Timeout,
        ErrorCode::Overloaded,
    ];

    /// The wire string for this code.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::Ok => "ok",
            ErrorCode::InvalidRequest => "invalid_request",
            ErrorCode::NotReadOnly => "not_read_only",
            ErrorCode::ParseError => "parse_error",
            ErrorCode::BindError => "bind_error",
            ErrorCode::ExecError => "exec_error",
            ErrorCode::Timeout => "timeout",
            ErrorCode::Overloaded => "overloaded",
        }
    }

    /// Map an engine error onto the wire taxonomy. Parse errors come
    /// from the parser, binding errors from name resolution; everything
    /// else the engine reports is an execution-time failure.
    pub fn from_engine(err: &EngineError) -> ErrorCode {
        match err {
            EngineError::Parse(_) => ErrorCode::ParseError,
            EngineError::UnknownTable(_)
            | EngineError::UnknownColumn(_)
            | EngineError::AmbiguousColumn(_) => ErrorCode::BindError,
            _ => ErrorCode::ExecError,
        }
    }
}

/// One query request against a named snapshot.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Client-chosen request id, echoed back verbatim.
    pub id: u64,
    /// Snapshot name (registered via `QueryService::with_snapshot`).
    pub db: String,
    /// A single read-only SQL statement.
    pub sql: String,
    /// Per-request row cap; `None` uses the service default.
    pub row_cap: Option<usize>,
    /// Per-request timeout in milliseconds; `None` uses the service
    /// default. `0` expires immediately (used by tests to pin the
    /// timeout envelope deterministically).
    pub timeout_ms: Option<u64>,
    /// Opt into request profiling: the response carries a
    /// [`RequestProfile`] (trace id + phase breakdown) and the engine
    /// records a per-operator [`sb_obs::QueryProfile`]. Never changes
    /// result bytes — only attaches observability.
    pub profile: bool,
}

impl QueryRequest {
    /// A request with service-default row cap and timeout.
    pub fn new(id: u64, db: &str, sql: &str) -> QueryRequest {
        QueryRequest {
            id,
            db: db.to_string(),
            sql: sql.to_string(),
            row_cap: None,
            timeout_ms: None,
            profile: false,
        }
    }
}

/// Seeded-deterministic trace id: FNV-1a over `(seed, id, db, sql)`.
/// The same request against the same service configuration always maps
/// to the same id, so traces can be correlated across replays and log
/// lines can be grepped from a workload description alone.
pub fn trace_id(seed: u64, req: &QueryRequest) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    eat(&seed.to_le_bytes());
    eat(&req.id.to_le_bytes());
    eat(req.db.as_bytes());
    eat(&[0]);
    eat(req.sql.as_bytes());
    format!("{h:016x}")
}

/// Per-request phase breakdown attached to a [`QueryResponse`] when the
/// request opted in (or the slow-query log is armed). Wall-clock data:
/// deliberately excluded from [`QueryResponse::to_json`] so the
/// byte-identity suites stay meaningful; rendered separately by
/// [`QueryResponse::to_json_with_profile`].
#[derive(Debug, Clone, Default)]
pub struct RequestProfile {
    /// Seeded-deterministic request trace id (see [`trace_id`]).
    pub trace_id: String,
    /// Admission gate, deadline setup and snapshot lookup.
    pub admission_us: u64,
    /// Read-only guardrail plus statement parse (fresh path). With the
    /// plan cache enabled, parse work inside the cache is attributed to
    /// the plan phase — the cache prepares normalize→parse→plan as one
    /// step.
    pub parse_us: u64,
    /// Statement planning (or cached-plan lookup).
    pub plan_us: u64,
    /// Engine execution.
    pub execute_us: u64,
    /// Response envelope assembly (row cap + materialization).
    pub serialize_us: u64,
}

impl RequestProfile {
    /// The phase breakdown as a deterministic-key-order JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"trace_id\": \"{}\", \"phases_us\": {{\"admission\": {}, \"parse\": {}, \
             \"plan\": {}, \"execute\": {}, \"serialize\": {}}}}}",
            json::escape(&self.trace_id),
            self.admission_us,
            self.parse_us,
            self.plan_us,
            self.execute_us,
            self.serialize_us,
        )
    }
}

/// The service's answer to one [`QueryRequest`].
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// Echo of the request id.
    pub id: u64,
    /// Stable status code.
    pub code: ErrorCode,
    /// Human-readable error detail (`None` when `code` is `Ok`).
    pub error: Option<String>,
    /// Output column names (empty on error).
    pub columns: Vec<String>,
    /// Output rows, truncated to the row cap (empty on error).
    pub rows: Vec<Vec<Value>>,
    /// Rows the query produced before the cap was applied.
    pub total_rows: usize,
    /// Whether `rows` was clipped by the row cap.
    pub truncated: bool,
    /// Whether the prepared plan came from the cache. Scheduling-
    /// dependent under concurrency; excluded from [`Self::to_json`].
    pub cache_hit: bool,
    /// Trace id and phase timings, present when the request opted in
    /// via [`QueryRequest::profile`] (or the slow-query log was armed).
    /// Wall-clock-dependent; excluded from [`Self::to_json`].
    pub profile: Option<RequestProfile>,
}

impl QueryResponse {
    /// An error response with no result payload.
    pub fn error(id: u64, code: ErrorCode, detail: impl Into<String>) -> QueryResponse {
        QueryResponse {
            id,
            code,
            error: Some(detail.into()),
            columns: Vec::new(),
            rows: Vec::new(),
            total_rows: 0,
            truncated: false,
            cache_hit: false,
            profile: None,
        }
    }

    /// Deterministic JSON rendering: every field that is a function of
    /// `(snapshot, request)`, nothing that depends on scheduling or the
    /// clock (see the module docs). One line, stable key order.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + 16 * self.rows.len());
        let _ = write!(
            out,
            "{{\"id\": {}, \"code\": \"{}\"",
            self.id,
            self.code.as_str()
        );
        match &self.error {
            Some(e) => {
                let _ = write!(out, ", \"error\": \"{}\"", json::escape(e));
            }
            None => out.push_str(", \"error\": null"),
        }
        out.push_str(", \"columns\": [");
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\"", json::escape(c));
        }
        out.push_str("], \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('[');
            for (j, v) in row.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&value_json(v));
            }
            out.push(']');
        }
        let _ = write!(
            out,
            "], \"row_count\": {}, \"total_rows\": {}, \"truncated\": {}}}",
            self.rows.len(),
            self.total_rows,
            self.truncated
        );
        out
    }

    /// [`Self::to_json`] plus a trailing `profile` object when one is
    /// attached. Wall-clock data lives only here — the deterministic
    /// rendering above is byte-identical whether or not profiling ran.
    pub fn to_json_with_profile(&self) -> String {
        let mut out = self.to_json();
        if let Some(p) = &self.profile {
            out.truncate(out.len() - 1);
            let _ = write!(out, ", \"profile\": {}}}", p.to_json());
        }
        out
    }
}

/// One result cell as JSON. Non-finite floats have no JSON number form,
/// so they render as the quoted strings `"NaN"` / `"inf"` / `"-inf"` —
/// lossless for the byte-identity tests and still valid JSON.
pub fn value_json(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) if f.is_finite() => json::number(*f),
        Value::Float(f) if f.is_nan() => "\"NaN\"".to_string(),
        Value::Float(f) if *f > 0.0 => "\"inf\"".to_string(),
        Value::Float(_) => "\"-inf\"".to_string(),
        Value::Text(s) => format!("\"{}\"", json::escape(s)),
        Value::Bool(b) => b.to_string(),
    }
}

/// The read-only guardrail: a quote-aware token scan that runs *before*
/// the parser, so a request can be rejected cheaply (and with a stable
/// error code) without ever reaching statement execution.
///
/// Accepts exactly one statement whose first keyword is `SELECT`
/// (optionally parenthesized, e.g. `(SELECT ...) UNION ...`), with at
/// most one trailing semicolon. Rejects any statement-level keyword
/// from the write/DDL family appearing outside string literals or
/// quoted identifiers. Keywords *inside* quotes are data, not SQL:
/// `SELECT 'drop table' ...` passes.
pub fn validate_read_only_sql(sql: &str) -> Result<(), (ErrorCode, String)> {
    const FORBIDDEN: &[&str] = &[
        "insert", "update", "delete", "drop", "create", "alter", "truncate", "grant", "revoke",
        "attach", "pragma", "copy", "vacuum", "merge", "call", "set",
    ];
    let trimmed = sql.trim();
    if trimmed.is_empty() {
        return Err((ErrorCode::InvalidRequest, "empty SQL".to_string()));
    }

    // Pass 1: strip quoted regions ('...' string literals with ''
    // escapes, "..." quoted identifiers), flagging semicolons as we go.
    let mut bare = String::with_capacity(trimmed.len());
    let mut chars = trimmed.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\'' | '"' => {
                let quote = c;
                loop {
                    match chars.next() {
                        // Doubled quote inside a string is an escape.
                        Some(q) if q == quote => {
                            if chars.peek() == Some(&quote) {
                                chars.next();
                            } else {
                                break;
                            }
                        }
                        Some(_) => {}
                        None => break, // unterminated; the parser will complain
                    }
                }
                bare.push(' ');
            }
            _ => bare.push(c),
        }
    }
    if let Some(pos) = bare.find(';') {
        if !bare[pos + 1..].trim().is_empty() {
            return Err((
                ErrorCode::InvalidRequest,
                "multiple statements in one request".to_string(),
            ));
        }
    }

    // Pass 2: word scan over the unquoted text.
    let mut first_word = true;
    for word in bare
        .split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .filter(|w| !w.is_empty())
    {
        if first_word {
            if !word.eq_ignore_ascii_case("select") {
                return Err((
                    ErrorCode::NotReadOnly,
                    format!("statement must start with SELECT, found `{word}`"),
                ));
            }
            first_word = false;
        }
        if FORBIDDEN.iter().any(|f| word.eq_ignore_ascii_case(f)) {
            return Err((
                ErrorCode::NotReadOnly,
                format!("forbidden keyword `{}`", word.to_ascii_lowercase()),
            ));
        }
    }
    if first_word {
        return Err((ErrorCode::InvalidRequest, "empty SQL".to_string()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_only_accepts_selects() {
        assert!(validate_read_only_sql("SELECT 1").is_ok());
        assert!(validate_read_only_sql("  select a from t where b = 2;").is_ok());
        assert!(validate_read_only_sql("(SELECT a FROM t) UNION (SELECT b FROM u)").is_ok());
    }

    #[test]
    fn read_only_rejects_writes_and_multi_statements() {
        let nro = |sql: &str| {
            let (code, _) = validate_read_only_sql(sql).unwrap_err();
            code
        };
        assert_eq!(nro("INSERT INTO t VALUES (1)"), ErrorCode::NotReadOnly);
        assert_eq!(nro("DROP TABLE t"), ErrorCode::NotReadOnly);
        assert_eq!(nro("SELECT 1; DROP TABLE t"), ErrorCode::InvalidRequest);
        assert_eq!(nro(""), ErrorCode::InvalidRequest);
        assert_eq!(nro("   ;"), ErrorCode::InvalidRequest);
        // Statement-level keyword smuggled past the first word.
        assert_eq!(nro("SELECT 1 UNION DELETE FROM t"), ErrorCode::NotReadOnly);
    }

    #[test]
    fn read_only_ignores_quoted_keywords() {
        assert!(validate_read_only_sql("SELECT 'drop table users' FROM t").is_ok());
        assert!(validate_read_only_sql("SELECT a FROM t WHERE b = 'x; y'").is_ok());
        // Escaped quote inside a literal does not end the string.
        assert!(validate_read_only_sql("SELECT 'it''s; drop' FROM t").is_ok());
    }

    #[test]
    fn value_json_covers_every_variant() {
        assert_eq!(value_json(&Value::Null), "null");
        assert_eq!(value_json(&Value::Int(-3)), "-3");
        assert_eq!(value_json(&Value::Bool(true)), "true");
        assert_eq!(value_json(&Value::Text("a\"b".into())), "\"a\\\"b\"");
        assert_eq!(value_json(&Value::Float(f64::NAN)), "\"NaN\"");
        assert_eq!(value_json(&Value::Float(f64::INFINITY)), "\"inf\"");
        assert_eq!(value_json(&Value::Float(f64::NEG_INFINITY)), "\"-inf\"");
    }
}
