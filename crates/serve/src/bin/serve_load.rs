//! `serve_load` — closed-loop load benchmark for the query service.
//!
//! Replays the deterministic fuzzer workload from N simulated clients
//! against an in-process [`sb_serve::QueryService`] per domain and
//! emits the `BENCH_serve.json` document (p50/p95/p99 latency, qps,
//! plan-cache effectiveness) on stdout or to `--out`:
//!
//! ```sh
//! cargo run --release -p sb-serve --bin serve_load -- --quick
//! cargo run --release -p sb-serve --bin serve_load -- --clients 16 --requests 5000 --out BENCH_serve.json
//! cargo run --release -p sb-serve --bin serve_load -- --validate BENCH_serve.json
//! ```
//!
//! Flags:
//!
//! - `--quick`           small request count, seconds-scale (check.sh uses this)
//! - `--clients N`       simulated closed-loop clients (default 8)
//! - `--requests N`      requests per domain (default 2000)
//! - `--seed N`          workload seed (default 0xC0FFEE)
//! - `--domain NAME`     one of cordis / sdss / oncomx (default: all three)
//! - `--forbid-transient` exit 3 if any domain reports `timeout` or
//!   `overloaded` errors — a deterministic closed-loop run must not
//!   shed load, so check.sh pairs this with `--quick`
//! - `--profile-sample N` request a per-query profile on every Nth
//!   request (0 = off; default 0). Response bytes are unchanged —
//!   profiling is side-band only.
//! - `--slow-log FILE`   arm the service's slow-query log and write the
//!   drained JSON lines (trace id, phase breakdown, analyzed plan) to
//!   FILE after the run
//! - `--slow-threshold-us N` slow-log threshold in µs (default 0: log
//!   every executed request; only meaningful with `--slow-log`)
//! - `--out FILE`        write the document to FILE instead of stdout
//! - `--validate FILE`   validate FILE's shape and exit

use sb_data::Domain;
use sb_serve::{render_bench_json, run_domain_load, validate_bench_json, LoadConfig};

fn parse_domain(name: &str) -> Option<Domain> {
    Domain::ALL
        .into_iter()
        .find(|d| d.name().eq_ignore_ascii_case(name))
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> T {
    value
        .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        .parse()
        .unwrap_or_else(|_| usage(&format!("{flag} needs a number")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut load = LoadConfig::default();
    let mut domains: Vec<Domain> = Vec::new();
    let mut out_path: Option<String> = None;
    let mut slow_log_path: Option<String> = None;
    let mut slow_threshold_us: u64 = 0;
    let mut forbid_transient = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                load.clients = 4;
                load.requests = 200;
            }
            "--clients" => {
                i += 1;
                load.clients = parse_num("--clients", args.get(i));
            }
            "--requests" => {
                i += 1;
                load.requests = parse_num("--requests", args.get(i));
            }
            "--seed" => {
                i += 1;
                load.seed = parse_num("--seed", args.get(i));
            }
            "--domain" => {
                i += 1;
                let name = args
                    .get(i)
                    .unwrap_or_else(|| usage("--domain needs a value"));
                match parse_domain(name) {
                    Some(d) => domains.push(d),
                    None => usage(&format!("unknown domain `{name}`")),
                }
            }
            "--forbid-transient" => forbid_transient = true,
            "--profile-sample" => {
                i += 1;
                load.profile_sample = parse_num("--profile-sample", args.get(i));
            }
            "--slow-log" => {
                i += 1;
                slow_log_path = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage("--slow-log needs a file path"))
                        .clone(),
                );
            }
            "--slow-threshold-us" => {
                i += 1;
                slow_threshold_us = parse_num("--slow-threshold-us", args.get(i));
            }
            "--out" => {
                i += 1;
                out_path = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage("--out needs a file path"))
                        .clone(),
                );
            }
            "--validate" => {
                i += 1;
                let path = args
                    .get(i)
                    .unwrap_or_else(|| usage("--validate needs a file path"));
                validate_file(path);
                return;
            }
            other => usage(&format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    if domains.is_empty() {
        domains.extend(Domain::ALL);
    }
    if slow_log_path.is_some() {
        load.slow_log_threshold_us = Some(slow_threshold_us);
    }

    let mut slow_lines: Vec<String> = Vec::new();
    let mut reports = Vec::new();
    for &domain in &domains {
        sb_obs::progress("serve_load", &format!("loading {}", domain.name()));
        let report = run_domain_load(domain, &load);
        // Only codes that actually fired; the JSON document carries the
        // full zero-padded breakdown.
        let codes: Vec<String> = report
            .errors_by_code
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(code, n)| format!("{code}={n}"))
            .collect();
        let codes = if codes.is_empty() {
            String::new()
        } else {
            format!(" ({})", codes.join(", "))
        };
        eprintln!(
            "serve_load: {} {} reqs, {} clients: {:.0} qps, p50 {:.0}us p95 {:.0}us p99 {:.0}us, \
             {} ok / {} errors{}, cache {}/{} hit",
            report.domain,
            report.requests,
            report.clients,
            report.qps,
            report.p50_us,
            report.p95_us,
            report.p99_us,
            report.ok,
            report.errors,
            codes,
            report.cache_hits,
            report.cache_hits + report.cache_misses,
        );
        // Per-code latency breakdown: are the errors cheap rejections
        // or slow failures? Text-only — BENCH_serve.json is unchanged.
        for (code, h) in &report.latency_by_code {
            if h.count > 0 && *code != "ok" {
                eprintln!(
                    "serve_load:   {code}: n={} p50 {:.0}us p95 {:.0}us max {:.0}us",
                    h.count,
                    h.quantile(0.50),
                    h.quantile(0.95),
                    h.max
                );
            }
        }
        slow_lines.extend(report.slow_log_lines.iter().cloned());
        reports.push(report);
    }

    if let Some(path) = &slow_log_path {
        let mut doc = slow_lines.join("\n");
        if !doc.is_empty() {
            doc.push('\n');
        }
        if let Err(e) = std::fs::write(path, &doc) {
            eprintln!("serve_load: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "serve_load: wrote {} slow-log line(s) to {path}",
            slow_lines.len()
        );
    }

    if forbid_transient {
        for report in &reports {
            let transient = report.transient_errors();
            if transient > 0 {
                eprintln!(
                    "serve_load: {}: {transient} transient error(s) (timeout/overloaded) in a \
                     deterministic run: {:?}",
                    report.domain, report.errors_by_code
                );
                std::process::exit(3);
            }
        }
    }

    let doc = render_bench_json(&load, &reports);
    // Self-check before emitting: a malformed document must fail loudly.
    if let Err(e) = validate_bench_json(&doc) {
        eprintln!("serve_load: internal error, emitted invalid document: {e}");
        std::process::exit(2);
    }
    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &doc) {
                eprintln!("serve_load: cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("serve_load: wrote {path}");
        }
        None => print!("{doc}"),
    }
}

fn validate_file(path: &str) {
    match std::fs::read_to_string(path) {
        Ok(content) => match validate_bench_json(&content) {
            Ok(()) => println!("{path}: valid BENCH_serve document"),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("serve_load: {msg}");
    eprintln!(
        "usage: serve_load [--quick] [--clients N] [--requests N] [--seed N] \
         [--domain cordis|sdss|oncomx]... [--forbid-transient] [--profile-sample N] \
         [--slow-log FILE] [--slow-threshold-us N] [--out FILE] | --validate FILE"
    );
    std::process::exit(2);
}
