//! # sb-serve — concurrent query service over immutable snapshots
//!
//! The serving layer of the reproduction: a long-running, thread-safe
//! query service that answers the `sb-sql` dialect against shared
//! [`Arc<Database>`] snapshots. This is the substrate the benchmark's
//! interactive consumers (NL-to-SQL demos, execution-accuracy scoring
//! farms, data-profiling dashboards) would sit on in production, where
//! one process serves many concurrent clients from one in-memory copy
//! of each domain database.
//!
//! The pieces, each its own module:
//!
//! - [`envelope`] — structured [`QueryRequest`] / [`QueryResponse`]
//!   envelopes, a stable [`ErrorCode`] taxonomy, per-request row caps,
//!   and the read-only guardrail that rejects anything but a single
//!   `SELECT` before it reaches the parser.
//! - [`cache`] — the prepared-plan cache: normalize → parse → plan
//!   once, execute the cached [`sb_opt::OwnedPlan`] on every repeat.
//! - [`admission`] — bounded in-flight admission with explicit
//!   `overloaded` rejection; the service never queues.
//! - [`loadgen`] — a closed-loop load generator replaying the fuzzer
//!   workload from N simulated clients, reporting p50/p95/p99 latency
//!   and throughput through `sb-obs` histograms (the `serve_load`
//!   binary emits `BENCH_serve.json`).
//!
//! ## Concurrency model
//!
//! Snapshots are immutable and shared (`Arc<Database>`); a request
//! borrows one for its lifetime and never copies it. All mutable
//! service state is the plan cache (read-mostly `RwLock`) and two
//! atomics (admission gate, cache counters). There are no locks held
//! across execution, so request handling scales with cores — and
//! because execution on an immutable snapshot is deterministic, N
//! threads hammering one service produce byte-identical responses to a
//! single-threaded replay (pinned by `tests/concurrency.rs`).
//!
//! ## Timeout semantics
//!
//! Timeouts are **cooperative and coarse**: the deadline is checked at
//! admission and at completion, never mid-operator, so a response is
//! either a complete result or a clean `timeout` — never a torn one.
//! `timeout_ms = 0` expires at admission deterministically, which is
//! how the envelope goldens pin the timeout response without a race.

pub mod admission;
pub mod cache;
pub mod envelope;
pub mod loadgen;

pub use admission::{AdmissionGate, Permit};
pub use cache::{PlanCache, Prepared};
pub use envelope::{validate_read_only_sql, ErrorCode, QueryRequest, QueryResponse};
pub use loadgen::{render_bench_json, run_domain_load, validate_bench_json, LoadConfig};

use sb_engine::{Database, ExecOptions};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Service-wide configuration. Per-request envelope fields can lower
/// (but not raise) the row cap and timeout.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Admission bound: concurrent requests beyond this are rejected
    /// with [`ErrorCode::Overloaded`]. `0` rejects everything (used to
    /// pin the overload golden).
    pub max_in_flight: usize,
    /// Default cap on returned rows when the request does not set one.
    pub default_row_cap: usize,
    /// Default per-request deadline when the request does not set one.
    pub default_timeout_ms: u64,
    /// Executor configuration every request runs under.
    pub exec: ExecOptions,
    /// Whether to prepare statements through the [`PlanCache`]. Off,
    /// every request parses and plans from scratch — the equivalence
    /// suites run both ways and demand identical responses.
    pub plan_cache: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_in_flight: 64,
            default_row_cap: 10_000,
            default_timeout_ms: 5_000,
            exec: ExecOptions::default(),
            plan_cache: true,
        }
    }
}

/// A running query service: named immutable snapshots plus the shared
/// plan cache and admission gate. Cheap to share by reference across
/// client threads (`QueryService: Sync`).
#[derive(Debug)]
pub struct QueryService {
    cfg: ServeConfig,
    /// Registration order is kept for deterministic introspection.
    snapshots: Vec<(String, Arc<Database>)>,
    cache: PlanCache,
    gate: AdmissionGate,
}

impl QueryService {
    /// A service with no snapshots yet.
    pub fn new(cfg: ServeConfig) -> QueryService {
        QueryService {
            cfg,
            snapshots: Vec::new(),
            cache: PlanCache::new(),
            gate: AdmissionGate::new(cfg.max_in_flight),
        }
    }

    /// Register (or replace) a named snapshot. Builder-style so test
    /// setup reads as one expression.
    pub fn with_snapshot(mut self, name: &str, db: Arc<Database>) -> QueryService {
        match self
            .snapshots
            .iter_mut()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
        {
            Some(slot) => slot.1 = db,
            None => self.snapshots.push((name.to_string(), db)),
        }
        self
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Registered snapshot names, in registration order.
    pub fn snapshot_names(&self) -> Vec<&str> {
        self.snapshots.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Plan-cache counters: `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits(), self.cache.misses())
    }

    fn snapshot(&self, name: &str) -> Option<&Arc<Database>> {
        self.snapshots
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, db)| db)
    }

    /// Handle one request end to end: admission → deadline → guardrail
    /// → prepare (cached or fresh) → execute → row cap. Every exit path
    /// produces a well-formed [`QueryResponse`] with a stable
    /// [`ErrorCode`]; this function never panics on user input.
    pub fn handle(&self, req: &QueryRequest) -> QueryResponse {
        let _span = sb_obs::span("serve.request");
        let Some(_permit) = self.gate.try_acquire() else {
            sb_obs::count("serve.rejected.overload", 1);
            return QueryResponse::error(
                req.id,
                ErrorCode::Overloaded,
                format!("too many requests in flight (max {})", self.gate.capacity()),
            );
        };

        let timeout_ms = req.timeout_ms.unwrap_or(self.cfg.default_timeout_ms);
        let deadline = Instant::now() + Duration::from_millis(timeout_ms);
        let timed_out = |stage: &str| {
            sb_obs::count("serve.rejected.timeout", 1);
            QueryResponse::error(
                req.id,
                ErrorCode::Timeout,
                format!("deadline exceeded {stage} (timeout_ms={timeout_ms})"),
            )
        };
        // Cooperative deadline check #1: at admission. A zero timeout
        // expires here, deterministically.
        if timeout_ms == 0 {
            return timed_out("at admission");
        }

        let Some(db) = self.snapshot(&req.db) else {
            return QueryResponse::error(
                req.id,
                ErrorCode::InvalidRequest,
                format!("unknown snapshot `{}`", req.db),
            );
        };
        if let Err((code, detail)) = validate_read_only_sql(&req.sql) {
            sb_obs::count("serve.rejected.guardrail", 1);
            return QueryResponse::error(req.id, code, detail);
        }

        // Prepare: through the cache, or parse-and-plan per request
        // when the cache is disabled. Both paths produce the same
        // statement and (deterministic) plan, so responses match.
        let (prepared, cache_hit) = if self.cfg.plan_cache {
            match self.cache.prepare(&req.db, db, &req.sql, self.cfg.exec) {
                (Ok(p), hit) => (p, hit),
                (Err(e), _) => return QueryResponse::error(req.id, ErrorCode::ParseError, e),
            }
        } else {
            match sb_sql::parse(&req.sql) {
                Ok(query) => {
                    let plan = sb_engine::plan_top_select(db, &query, self.cfg.exec);
                    let normalized = query.to_string();
                    (
                        Arc::new(Prepared {
                            normalized,
                            query: Arc::new(query),
                            plan,
                        }),
                        false,
                    )
                }
                Err(e) => {
                    return QueryResponse::error(req.id, ErrorCode::ParseError, e.to_string())
                }
            }
        };

        // Admission-aware fan-out: divide the session's worker budget
        // by the live in-flight count, so intra-query parallelism and
        // request concurrency compose instead of multiplying. Planning
        // above used the uncapped options — worker count never affects
        // plans or results, only scheduling, so cached plans stay
        // shareable across load levels.
        let exec = self.cfg.exec.capped_workers(self.gate.in_flight());
        let result =
            sb_engine::execute_with_plan(db, &prepared.query, exec, prepared.plan.as_ref());
        // Cooperative deadline check #2: at completion. The result of
        // an overdue request is discarded whole — never truncated to
        // whatever was done by the deadline.
        if Instant::now() > deadline {
            return timed_out("during execution");
        }

        match result {
            Ok(rs) => {
                let row_cap = req.row_cap.unwrap_or(self.cfg.default_row_cap);
                let total_rows = rs.rows.len();
                let mut rows = rs.rows;
                let truncated = total_rows > row_cap;
                if truncated {
                    rows.truncate(row_cap);
                    sb_obs::count("serve.truncated", 1);
                }
                sb_obs::count("serve.ok", 1);
                QueryResponse {
                    id: req.id,
                    code: ErrorCode::Ok,
                    error: None,
                    columns: rs.columns,
                    rows,
                    total_rows,
                    truncated,
                    cache_hit,
                }
            }
            Err(e) => {
                sb_obs::count("serve.exec_error", 1);
                let mut resp =
                    QueryResponse::error(req.id, ErrorCode::from_engine(&e), e.to_string());
                resp.cache_hit = cache_hit;
                resp
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_data::{Domain, SizeClass};

    fn sdss_service(cfg: ServeConfig) -> QueryService {
        let db = Arc::new(Domain::Sdss.build(SizeClass::Tiny).db);
        QueryService::new(cfg).with_snapshot("sdss", db)
    }

    #[test]
    fn handle_answers_a_select_and_reports_cache_hits() {
        let svc = sdss_service(ServeConfig::default());
        let req = QueryRequest::new(1, "sdss", "SELECT s.class FROM specobj AS s LIMIT 3");
        let cold = svc.handle(&req);
        assert_eq!(cold.code, ErrorCode::Ok);
        assert!(!cold.cache_hit);
        assert_eq!(cold.rows.len(), 3);
        let warm = svc.handle(&req);
        assert!(warm.cache_hit);
        assert_eq!(cold.to_json(), warm.to_json());
        assert_eq!(svc.cache_stats(), (1, 1));
    }

    #[test]
    fn unknown_snapshot_is_invalid_request() {
        let svc = sdss_service(ServeConfig::default());
        let resp = svc.handle(&QueryRequest::new(7, "nope", "SELECT 1"));
        assert_eq!(resp.code, ErrorCode::InvalidRequest);
    }

    #[test]
    fn snapshot_names_are_case_insensitive_and_replaceable() {
        let db = Arc::new(Domain::Sdss.build(SizeClass::Tiny).db);
        let svc = QueryService::new(ServeConfig::default())
            .with_snapshot("SDSS", Arc::clone(&db))
            .with_snapshot("sdss", db);
        assert_eq!(svc.snapshot_names(), vec!["SDSS"]);
        let resp = svc.handle(&QueryRequest::new(
            1,
            "Sdss",
            "SELECT s.class FROM specobj AS s LIMIT 1",
        ));
        assert_eq!(resp.code, ErrorCode::Ok);
    }
}
