//! # sb-serve — concurrent query service over immutable snapshots
//!
//! The serving layer of the reproduction: a long-running, thread-safe
//! query service that answers the `sb-sql` dialect against shared
//! [`Arc<Database>`] snapshots. This is the substrate the benchmark's
//! interactive consumers (NL-to-SQL demos, execution-accuracy scoring
//! farms, data-profiling dashboards) would sit on in production, where
//! one process serves many concurrent clients from one in-memory copy
//! of each domain database.
//!
//! The pieces, each its own module:
//!
//! - [`envelope`] — structured [`QueryRequest`] / [`QueryResponse`]
//!   envelopes, a stable [`ErrorCode`] taxonomy, per-request row caps,
//!   and the read-only guardrail that rejects anything but a single
//!   `SELECT` before it reaches the parser.
//! - [`cache`] — the prepared-plan cache: normalize → parse → plan
//!   once, execute the cached [`sb_opt::OwnedPlan`] on every repeat.
//! - [`admission`] — bounded in-flight admission with explicit
//!   `overloaded` rejection; the service never queues.
//! - [`loadgen`] — a closed-loop load generator replaying the fuzzer
//!   workload from N simulated clients, reporting p50/p95/p99 latency
//!   and throughput through `sb-obs` histograms (the `serve_load`
//!   binary emits `BENCH_serve.json`).
//!
//! ## Concurrency model
//!
//! Snapshots are immutable and shared (`Arc<Database>`); a request
//! borrows one for its lifetime and never copies it. All mutable
//! service state is the plan cache (read-mostly `RwLock`) and two
//! atomics (admission gate, cache counters). There are no locks held
//! across execution, so request handling scales with cores — and
//! because execution on an immutable snapshot is deterministic, N
//! threads hammering one service produce byte-identical responses to a
//! single-threaded replay (pinned by `tests/concurrency.rs`).
//!
//! ## Timeout semantics
//!
//! Timeouts are **cooperative and coarse**: the deadline is checked at
//! admission and at completion, never mid-operator, so a response is
//! either a complete result or a clean `timeout` — never a torn one.
//! `timeout_ms = 0` expires at admission deterministically, which is
//! how the envelope goldens pin the timeout response without a race.

pub mod admission;
pub mod cache;
pub mod envelope;
pub mod loadgen;

pub use admission::{AdmissionGate, Permit};
pub use cache::{PlanCache, Prepared};
pub use envelope::{
    trace_id, validate_read_only_sql, ErrorCode, QueryRequest, QueryResponse, RequestProfile,
};
pub use loadgen::{render_bench_json, run_domain_load, validate_bench_json, LoadConfig};

use sb_engine::{Database, ExecOptions};
use sb_obs::QueryProfile;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Slow-query log configuration. When enabled, every request whose
/// total wall time reaches `threshold_us` appends one JSON line —
/// trace id, phase breakdown and the EXPLAIN ANALYZE plan rendered from
/// the profile the request already recorded — to the service's
/// in-memory slow log (drained via [`QueryService::drain_slow_log`]).
#[derive(Debug, Clone, Copy)]
pub struct SlowLogConfig {
    /// Arm the slow log (and with it, per-request engine profiling).
    pub enabled: bool,
    /// Minimum total request wall time, in microseconds, for a request
    /// to be logged. `0` logs every request — how tests and the load
    /// generator exercise the path deterministically.
    pub threshold_us: u64,
}

impl Default for SlowLogConfig {
    fn default() -> Self {
        SlowLogConfig {
            enabled: false,
            threshold_us: 10_000,
        }
    }
}

/// Service-wide configuration. Per-request envelope fields can lower
/// (but not raise) the row cap and timeout.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Admission bound: concurrent requests beyond this are rejected
    /// with [`ErrorCode::Overloaded`]. `0` rejects everything (used to
    /// pin the overload golden).
    pub max_in_flight: usize,
    /// Default cap on returned rows when the request does not set one.
    pub default_row_cap: usize,
    /// Default per-request deadline when the request does not set one.
    pub default_timeout_ms: u64,
    /// Executor configuration every request runs under.
    pub exec: ExecOptions,
    /// Whether to prepare statements through the [`PlanCache`]. Off,
    /// every request parses and plans from scratch — the equivalence
    /// suites run both ways and demand identical responses.
    pub plan_cache: bool,
    /// Slow-query logging (off by default).
    pub slow_log: SlowLogConfig,
    /// Seed folded into every request's deterministic trace id, so
    /// distinct service instances replaying the same workload emit
    /// distinguishable (but individually reproducible) traces.
    pub trace_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_in_flight: 64,
            default_row_cap: 10_000,
            default_timeout_ms: 5_000,
            exec: ExecOptions::default(),
            plan_cache: true,
            slow_log: SlowLogConfig::default(),
            trace_seed: 0,
        }
    }
}

/// A running query service: named immutable snapshots plus the shared
/// plan cache and admission gate. Cheap to share by reference across
/// client threads (`QueryService: Sync`).
#[derive(Debug)]
pub struct QueryService {
    cfg: ServeConfig,
    /// Registration order is kept for deterministic introspection.
    snapshots: Vec<(String, Arc<Database>)>,
    cache: PlanCache,
    gate: AdmissionGate,
    /// Buffered slow-query log lines (JSON, one request per line).
    /// In-memory so the service stays filesystem-free; `serve_load`
    /// drains it to the `--slow-log` path.
    slow_log: Mutex<Vec<String>>,
}

impl QueryService {
    /// A service with no snapshots yet.
    pub fn new(cfg: ServeConfig) -> QueryService {
        QueryService {
            cfg,
            snapshots: Vec::new(),
            cache: PlanCache::new(),
            gate: AdmissionGate::new(cfg.max_in_flight),
            slow_log: Mutex::new(Vec::new()),
        }
    }

    /// Register (or replace) a named snapshot. Builder-style so test
    /// setup reads as one expression.
    pub fn with_snapshot(mut self, name: &str, db: Arc<Database>) -> QueryService {
        match self
            .snapshots
            .iter_mut()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
        {
            Some(slot) => slot.1 = db,
            None => self.snapshots.push((name.to_string(), db)),
        }
        self
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Registered snapshot names, in registration order.
    pub fn snapshot_names(&self) -> Vec<&str> {
        self.snapshots.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Plan-cache counters: `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits(), self.cache.misses())
    }

    fn snapshot(&self, name: &str) -> Option<&Arc<Database>> {
        self.snapshots
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, db)| db)
    }

    /// Drain buffered slow-query log lines (oldest first), leaving the
    /// buffer empty. Each line is one self-contained JSON object.
    pub fn drain_slow_log(&self) -> Vec<String> {
        std::mem::take(&mut *self.slow_log.lock().unwrap())
    }

    /// Handle one request end to end: admission → deadline → guardrail
    /// → prepare (cached or fresh) → execute → row cap. Every exit path
    /// produces a well-formed [`QueryResponse`] with a stable
    /// [`ErrorCode`]; this function never panics on user input.
    ///
    /// When the request opts into `profile` (or the slow log is armed),
    /// the engine records a [`QueryProfile`] during execution and the
    /// response carries a [`RequestProfile`]: the deterministic trace
    /// id plus the admission / parse / plan / execute / serialize phase
    /// breakdown. Early-exit errors stamp only the phases they reached.
    /// Profiling off is the exact pre-profiling code path — the
    /// equivalence suites pin byte-identical responses either way.
    pub fn handle(&self, req: &QueryRequest) -> QueryResponse {
        let _span = sb_obs::span("serve.request");
        let profiling = req.profile || self.cfg.slow_log.enabled;
        let t_start = Instant::now();
        let mut rp = profiling.then(|| RequestProfile {
            trace_id: trace_id(self.cfg.trace_seed, req),
            ..RequestProfile::default()
        });
        let us = |since: Instant| since.elapsed().as_micros() as u64;

        let Some(_permit) = self.gate.try_acquire() else {
            sb_obs::count("serve.rejected.overload", 1);
            let mut resp = QueryResponse::error(
                req.id,
                ErrorCode::Overloaded,
                format!("too many requests in flight (max {})", self.gate.capacity()),
            );
            if let Some(rp) = rp.as_mut() {
                rp.admission_us = us(t_start);
            }
            resp.profile = rp;
            return resp;
        };

        let timeout_ms = req.timeout_ms.unwrap_or(self.cfg.default_timeout_ms);
        let deadline = Instant::now() + Duration::from_millis(timeout_ms);
        let timed_out = |stage: &str| {
            sb_obs::count("serve.rejected.timeout", 1);
            QueryResponse::error(
                req.id,
                ErrorCode::Timeout,
                format!("deadline exceeded {stage} (timeout_ms={timeout_ms})"),
            )
        };
        // Cooperative deadline check #1: at admission. A zero timeout
        // expires here, deterministically.
        if timeout_ms == 0 {
            let mut resp = timed_out("at admission");
            if let Some(rp) = rp.as_mut() {
                rp.admission_us = us(t_start);
            }
            resp.profile = rp;
            return resp;
        }

        let Some(db) = self.snapshot(&req.db) else {
            let mut resp = QueryResponse::error(
                req.id,
                ErrorCode::InvalidRequest,
                format!("unknown snapshot `{}`", req.db),
            );
            if let Some(rp) = rp.as_mut() {
                rp.admission_us = us(t_start);
            }
            resp.profile = rp;
            return resp;
        };
        let t_parse = Instant::now();
        if let Some(rp) = rp.as_mut() {
            rp.admission_us = (t_parse - t_start).as_micros() as u64;
        }
        if let Err((code, detail)) = validate_read_only_sql(&req.sql) {
            sb_obs::count("serve.rejected.guardrail", 1);
            let mut resp = QueryResponse::error(req.id, code, detail);
            if let Some(rp) = rp.as_mut() {
                rp.parse_us = us(t_parse);
            }
            resp.profile = rp;
            return resp;
        }

        // Prepare: through the cache, or parse-and-plan per request
        // when the cache is disabled. Both paths produce the same
        // statement and (deterministic) plan, so responses match. The
        // cache path does normalize+parse+plan as one unit; it is
        // attributed entirely to the plan phase (the guardrail above is
        // the parse phase's floor), while the cache-off path splits
        // parse and plan at the real boundary.
        let t_plan;
        let (prepared, cache_hit) = if self.cfg.plan_cache {
            t_plan = Instant::now();
            if let Some(rp) = rp.as_mut() {
                rp.parse_us = (t_plan - t_parse).as_micros() as u64;
            }
            match self.cache.prepare(&req.db, db, &req.sql, self.cfg.exec) {
                (Ok(p), hit) => (p, hit),
                (Err(e), _) => {
                    let mut resp = QueryResponse::error(req.id, ErrorCode::ParseError, e);
                    if let Some(rp) = rp.as_mut() {
                        rp.plan_us = us(t_plan);
                    }
                    resp.profile = rp;
                    return resp;
                }
            }
        } else {
            match sb_sql::parse(&req.sql) {
                Ok(query) => {
                    t_plan = Instant::now();
                    if let Some(rp) = rp.as_mut() {
                        rp.parse_us = (t_plan - t_parse).as_micros() as u64;
                    }
                    let plan = sb_engine::plan_top_select(db, &query, self.cfg.exec);
                    let normalized = query.to_string();
                    (
                        Arc::new(Prepared {
                            normalized,
                            query: Arc::new(query),
                            plan,
                        }),
                        false,
                    )
                }
                Err(e) => {
                    let mut resp =
                        QueryResponse::error(req.id, ErrorCode::ParseError, e.to_string());
                    if let Some(rp) = rp.as_mut() {
                        rp.parse_us = us(t_parse);
                    }
                    resp.profile = rp;
                    return resp;
                }
            }
        };
        let t_exec = Instant::now();
        if let Some(rp) = rp.as_mut() {
            rp.plan_us = (t_exec - t_plan).as_micros() as u64;
        }

        // Admission-aware fan-out: divide the session's worker budget
        // by the live in-flight count, so intra-query parallelism and
        // request concurrency compose instead of multiplying. Planning
        // above used the uncapped options — worker count never affects
        // plans or results, only scheduling, so cached plans stay
        // shareable across load levels.
        let exec = self.cfg.exec.capped_workers(self.gate.in_flight());
        let prof = profiling.then(QueryProfile::new);
        let result = sb_engine::execute_with_plan_profile(
            db,
            &prepared.query,
            exec,
            prepared.plan.as_ref(),
            prof.as_ref(),
        );
        let t_serialize = Instant::now();
        if let Some(rp) = rp.as_mut() {
            rp.execute_us = (t_serialize - t_exec).as_micros() as u64;
        }
        // Cooperative deadline check #2: at completion. The result of
        // an overdue request is discarded whole — never truncated to
        // whatever was done by the deadline.
        if Instant::now() > deadline {
            let mut resp = timed_out("during execution");
            resp.profile = rp;
            return resp;
        }

        let mut resp = match result {
            Ok(rs) => {
                let row_cap = req.row_cap.unwrap_or(self.cfg.default_row_cap);
                let total_rows = rs.rows.len();
                let mut rows = rs.rows;
                let truncated = total_rows > row_cap;
                if truncated {
                    rows.truncate(row_cap);
                    sb_obs::count("serve.truncated", 1);
                }
                sb_obs::count("serve.ok", 1);
                QueryResponse {
                    id: req.id,
                    code: ErrorCode::Ok,
                    error: None,
                    columns: rs.columns,
                    rows,
                    total_rows,
                    truncated,
                    cache_hit,
                    profile: None,
                }
            }
            Err(e) => {
                sb_obs::count("serve.exec_error", 1);
                let mut resp =
                    QueryResponse::error(req.id, ErrorCode::from_engine(&e), e.to_string());
                resp.cache_hit = cache_hit;
                resp
            }
        };
        if let Some(rp) = rp.as_mut() {
            rp.serialize_us = us(t_serialize);
        }

        // Slow log: fires only for requests that reached execution —
        // the analyzed plan is rendered from the profile the request
        // already recorded, with timings, never by re-executing.
        if self.cfg.slow_log.enabled {
            let elapsed_us = us(t_start);
            if elapsed_us >= self.cfg.slow_log.threshold_us {
                if let (Some(rp), Some(prof)) = (rp.as_ref(), prof.as_ref()) {
                    let plan =
                        sb_engine::explain_with_profile(db, &prepared.query, exec, prof, true)
                            .unwrap_or_else(|e| format!("explain failed: {e}"));
                    let line = format!(
                        "{{\"id\": {}, \"db\": \"{}\", \"sql\": \"{}\", \"code\": \"{}\", \
                         \"elapsed_us\": {}, \"profile\": {}, \"plan\": \"{}\"}}",
                        req.id,
                        sb_obs::json::escape(&req.db),
                        sb_obs::json::escape(&req.sql),
                        resp.code.as_str(),
                        elapsed_us,
                        rp.to_json(),
                        sb_obs::json::escape(&plan),
                    );
                    self.slow_log.lock().unwrap().push(line);
                    sb_obs::count("serve.slow_logged", 1);
                }
            }
        }
        resp.profile = rp;
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_data::{Domain, SizeClass};

    fn sdss_service(cfg: ServeConfig) -> QueryService {
        let db = Arc::new(Domain::Sdss.build(SizeClass::Tiny).db);
        QueryService::new(cfg).with_snapshot("sdss", db)
    }

    #[test]
    fn handle_answers_a_select_and_reports_cache_hits() {
        let svc = sdss_service(ServeConfig::default());
        let req = QueryRequest::new(1, "sdss", "SELECT s.class FROM specobj AS s LIMIT 3");
        let cold = svc.handle(&req);
        assert_eq!(cold.code, ErrorCode::Ok);
        assert!(!cold.cache_hit);
        assert_eq!(cold.rows.len(), 3);
        let warm = svc.handle(&req);
        assert!(warm.cache_hit);
        assert_eq!(cold.to_json(), warm.to_json());
        assert_eq!(svc.cache_stats(), (1, 1));
    }

    #[test]
    fn unknown_snapshot_is_invalid_request() {
        let svc = sdss_service(ServeConfig::default());
        let resp = svc.handle(&QueryRequest::new(7, "nope", "SELECT 1"));
        assert_eq!(resp.code, ErrorCode::InvalidRequest);
    }

    #[test]
    fn profile_opt_in_attaches_trace_and_leaves_wire_bytes_alone() {
        let svc = sdss_service(ServeConfig::default());
        let sql = "SELECT s.class FROM specobj AS s LIMIT 2";
        let mut req = QueryRequest::new(3, "sdss", sql);
        req.profile = true;
        let resp = svc.handle(&req);
        assert_eq!(resp.code, ErrorCode::Ok);
        let rp = resp.profile.as_ref().expect("profile requested");
        assert_eq!(rp.trace_id, trace_id(0, &req));
        assert_eq!(rp.trace_id.len(), 16);
        // The plain wire form never mentions the profile; the profiled
        // form appends exactly one extra field.
        assert!(!resp.to_json().contains("trace_id"));
        assert!(resp.to_json_with_profile().contains(&rp.trace_id));
        assert!(sb_obs::json::validate(&resp.to_json_with_profile()).is_ok());

        // Same request without profiling: byte-identical response.
        let plain = svc.handle(&QueryRequest::new(3, "sdss", sql));
        assert!(plain.profile.is_none());
        assert_eq!(plain.to_json(), resp.to_json());
        assert_eq!(plain.to_json(), plain.to_json_with_profile());
    }

    #[test]
    fn trace_ids_are_seeded_and_deterministic() {
        let req = QueryRequest::new(5, "sdss", "SELECT 1");
        assert_eq!(trace_id(0, &req), trace_id(0, &req));
        assert_ne!(trace_id(0, &req), trace_id(1, &req));
        assert_ne!(
            trace_id(0, &req),
            trace_id(0, &QueryRequest::new(6, "sdss", "SELECT 1"))
        );
    }

    #[test]
    fn slow_log_records_trace_id_and_analyzed_plan() {
        let cfg = ServeConfig {
            slow_log: SlowLogConfig {
                enabled: true,
                threshold_us: 0,
            },
            ..ServeConfig::default()
        };
        let svc = sdss_service(cfg);
        let req = QueryRequest::new(
            9,
            "sdss",
            "SELECT s.class FROM specobj AS s WHERE s.z > 0.5",
        );
        assert_eq!(svc.handle(&req).code, ErrorCode::Ok);
        // Guardrail rejections never reach execution, so never log.
        assert_ne!(
            svc.handle(&QueryRequest::new(10, "sdss", "DROP TABLE specobj"))
                .code,
            ErrorCode::Ok
        );

        let lines = svc.drain_slow_log();
        assert_eq!(lines.len(), 1, "exactly the executed request logs");
        let line = &lines[0];
        sb_obs::json::validate(line).unwrap_or_else(|e| panic!("bad slow-log JSON ({e}): {line}"));
        assert!(
            line.contains(&trace_id(0, &req)),
            "trace id missing: {line}"
        );
        assert!(line.contains("Scan"), "analyzed plan missing: {line}");
        assert!(
            line.contains("time="),
            "slow-log plans keep timings: {line}"
        );
        assert!(svc.drain_slow_log().is_empty(), "drain empties the buffer");
    }

    #[test]
    fn snapshot_names_are_case_insensitive_and_replaceable() {
        let db = Arc::new(Domain::Sdss.build(SizeClass::Tiny).db);
        let svc = QueryService::new(ServeConfig::default())
            .with_snapshot("SDSS", Arc::clone(&db))
            .with_snapshot("sdss", db);
        assert_eq!(svc.snapshot_names(), vec!["SDSS"]);
        let resp = svc.handle(&QueryRequest::new(
            1,
            "Sdss",
            "SELECT s.class FROM specobj AS s LIMIT 1",
        ));
        assert_eq!(resp.code, ErrorCode::Ok);
    }
}
