//! Closed-loop load generator: N simulated clients replaying the fuzzer
//! workload against one [`QueryService`], measuring latency through
//! `sb-obs` histograms.
//!
//! ## Closed loop
//!
//! Each client issues a request, waits for the response, and
//! immediately issues the next — no think time, no open-loop arrival
//! schedule. Offered load therefore adapts to service capacity, which
//! is the right shape for measuring an in-process service: the numbers
//! report what the service *can do*, not how a queue melts down.
//!
//! ## Workload determinism
//!
//! The workload is a pure function of `(snapshot, seed, request
//! index)`, never of the client count:
//!
//! - request `i`'s statement comes from
//!   [`sb_fuzz::workload_query`] via [`workload_sql`], which mixes a
//!   small *hot set* (three out of four requests replay one of
//!   [`LoadConfig::hot_set`] statements, exercising the plan cache the
//!   way real templated traffic does) with a cold tail of fresh
//!   statements;
//! - client `c` of `n` handles exactly the indices `i % n == c`.
//!
//! Re-running at any client count generates the identical multiset of
//! requests — `tests/loadgen_determinism.rs` pins the workload bytes at
//! 1, 4 and 16 clients. Latency and throughput stay wall-clock
//! measurements, of course; only the *workload* and the response
//! bodies are deterministic.

use crate::{ErrorCode, QueryRequest, QueryService, ServeConfig, SlowLogConfig};
use sb_data::Domain;
use sb_engine::Database;
use sb_obs::{json, HistStat};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Load-generator knobs. [`Default`] is the full benchmark shape;
/// `serve_load --quick` shrinks it to a seconds-scale smoke run.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Simulated closed-loop clients.
    pub clients: usize,
    /// Total requests per domain (split round-robin across clients).
    pub requests: usize,
    /// Workload seed.
    pub seed: u64,
    /// Size of the hot statement set (indices `0..hot_set` of the
    /// workload stream double as the hot statements).
    pub hot_set: usize,
    /// Every `hot_every`-th request is a cold (fresh) statement; the
    /// rest replay the hot set.
    pub hot_every: usize,
    /// Request every `profile_sample`-th request (by workload index)
    /// with `profile = true`, exercising the tracing path under load.
    /// `0` disables sampling. Profiling never changes response bytes
    /// (pinned by `tests/loadgen_determinism.rs`), only adds the
    /// side-band [`crate::RequestProfile`].
    pub profile_sample: usize,
    /// Arm the service's slow-query log at this threshold (µs); the
    /// drained lines come back in
    /// [`DomainLoadReport::slow_log_lines`]. `None` leaves the log off.
    pub slow_log_threshold_us: Option<u64>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 8,
            requests: 2_000,
            seed: 0xC0FFEE,
            hot_set: 16,
            hot_every: 4,
            profile_sample: 0,
            slow_log_threshold_us: None,
        }
    }
}

/// The statement for request `index`: hot-set replay or cold tail, a
/// pure function of `(db, cfg.seed, index)`.
pub fn workload_sql(db: &Database, cfg: &LoadConfig, index: u64) -> String {
    let effective =
        if cfg.hot_every > 0 && !index.is_multiple_of(cfg.hot_every as u64) && cfg.hot_set > 0 {
            index % cfg.hot_set as u64
        } else {
            index
        };
    sb_fuzz::workload_query(db, cfg.seed, effective).to_string()
}

/// What one domain's load run measured.
#[derive(Debug, Clone)]
pub struct DomainLoadReport {
    /// Domain name (`cordis` / `sdss` / `oncomx`).
    pub domain: String,
    /// Clients that ran.
    pub clients: usize,
    /// Requests issued.
    pub requests: usize,
    /// Responses with [`ErrorCode::Ok`].
    pub ok: usize,
    /// Responses with any error code. The fuzzer deliberately
    /// generates a small slice of erroring statements (its oracle
    /// checks error parity), so this is nonzero on a healthy run.
    pub errors: usize,
    /// The same errors split by [`ErrorCode`] wire string, in taxonomy
    /// order and with zero entries kept — so a report always shows the
    /// full shape and "which errors?" never requires a re-run. On a
    /// healthy deterministic run every error is a workload property
    /// (`parse_error` / `bind_error` / `exec_error`); `timeout` and
    /// `overloaded` are load artifacts and stay zero.
    pub errors_by_code: Vec<(&'static str, usize)>,
    /// Plan-cache hits / misses at the end of the run.
    pub cache_hits: u64,
    /// Plan-cache misses at the end of the run.
    pub cache_misses: u64,
    /// Closed-loop throughput over the whole run (wall clock).
    pub qps: f64,
    /// Latency quantiles in microseconds, from the `sb-obs` histogram.
    pub p50_us: f64,
    /// 95th percentile latency (µs).
    pub p95_us: f64,
    /// 99th percentile latency (µs).
    pub p99_us: f64,
    /// Mean latency (µs).
    pub mean_us: f64,
    /// Maximum latency (µs).
    pub max_us: f64,
    /// Latency histogram per [`ErrorCode`] wire string, in taxonomy
    /// order with empty histograms kept — "are errors fast or slow?"
    /// never requires a re-run. Built from per-client shards merged at
    /// the end (order-independent), so any client count reports the
    /// same counts. Surfaced in `serve_load`'s text output; the
    /// `BENCH_serve.json` document format is unchanged.
    pub latency_by_code: Vec<(&'static str, HistStat)>,
    /// Slow-query log lines drained from the service after the run
    /// (empty unless [`LoadConfig::slow_log_threshold_us`] armed it).
    pub slow_log_lines: Vec<String>,
}

impl DomainLoadReport {
    /// Errors caused by load shedding rather than the workload itself:
    /// `timeout` + `overloaded`. A deterministic closed-loop run (the
    /// check.sh quick smoke) must report zero here — anything else
    /// means admission or deadlines fired nondeterministically.
    pub fn transient_errors(&self) -> usize {
        self.errors_by_code
            .iter()
            .filter(|(code, _)| *code == "timeout" || *code == "overloaded")
            .map(|(_, n)| n)
            .sum()
    }
}

/// The per-domain latency histogram name. `sb-obs` metric names are
/// `&'static str` by design, hence the explicit match.
fn latency_metric(domain: Domain) -> &'static str {
    match domain {
        Domain::Cordis => "serve.latency_us.cordis",
        Domain::Sdss => "serve.latency_us.sdss",
        Domain::OncoMx => "serve.latency_us.oncomx",
    }
}

/// Run one domain's closed-loop load: build the fuzz-sized snapshot,
/// stand up a service with the plan cache on, replay
/// [`LoadConfig::requests`] statements from [`LoadConfig::clients`]
/// threads, and distill the `sb-obs` histogram into a
/// [`DomainLoadReport`].
///
/// Forces `sb-obs` collection on for the duration (restoring `Off`
/// afterwards) and calls `sb_obs::reset()` so each domain reports from
/// a clean registry — don't interleave with other metric consumers.
pub fn run_domain_load(domain: Domain, load: &LoadConfig) -> DomainLoadReport {
    let prev_mode = sb_obs::mode();
    if prev_mode == sb_obs::Mode::Off {
        sb_obs::set_mode(sb_obs::Mode::Summary);
    }
    sb_obs::reset();

    let db = Arc::new(sb_fuzz::fuzz_database(domain));
    let service = QueryService::new(ServeConfig {
        // The load generator itself is the concurrency bound; admission
        // is sized so a healthy run never sheds.
        max_in_flight: load.clients.max(1) * 2,
        slow_log: SlowLogConfig {
            enabled: load.slow_log_threshold_us.is_some(),
            threshold_us: load.slow_log_threshold_us.unwrap_or_default(),
        },
        ..ServeConfig::default()
    })
    .with_snapshot(domain.name(), Arc::clone(&db));

    let metric = latency_metric(domain);
    let clients = load.clients.max(1);
    let ok = AtomicUsize::new(0);
    // One counter per taxonomy code, indexed by position in
    // `ErrorCode::ALL` (slot 0 — Ok — stays unused).
    let by_code: Vec<AtomicUsize> = ErrorCode::ALL.iter().map(|_| AtomicUsize::new(0)).collect();
    // Per-code latency: each client shards into a local array and
    // merges once at exit — no lock on the hot path, and HistStat
    // merges are order-independent so the totals don't depend on which
    // client finishes first.
    let code_hists: Mutex<[HistStat; 8]> = Mutex::new([HistStat::default(); 8]);
    let started = Instant::now();
    std::thread::scope(|s| {
        for client in 0..clients {
            let service = &service;
            let db = &db;
            let ok = &ok;
            let by_code = &by_code;
            let code_hists = &code_hists;
            s.spawn(move || {
                let mut local = [HistStat::default(); 8];
                let mut index = client as u64;
                while (index as usize) < load.requests {
                    let sql = workload_sql(db, load, index);
                    let mut req = QueryRequest::new(index, domain.name(), &sql);
                    req.profile =
                        load.profile_sample > 0 && index.is_multiple_of(load.profile_sample as u64);
                    let t0 = Instant::now();
                    let resp = service.handle(&req);
                    let us = t0.elapsed().as_secs_f64() * 1e6;
                    sb_obs::observe(metric, us);
                    let slot = ErrorCode::ALL
                        .iter()
                        .position(|c| *c == resp.code)
                        .expect("response code outside the taxonomy");
                    local[slot].observe(us);
                    if resp.code == ErrorCode::Ok {
                        ok.fetch_add(1, Ordering::Relaxed);
                    } else {
                        by_code[slot].fetch_add(1, Ordering::Relaxed);
                    }
                    index += clients as u64;
                }
                let mut merged = code_hists.lock().unwrap();
                for (m, l) in merged.iter_mut().zip(&local) {
                    m.merge(l);
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);

    let report = sb_obs::snapshot();
    let hist = report
        .hists
        .iter()
        .find(|(name, _)| name == metric)
        .map(|(_, h)| *h)
        .unwrap_or_default();
    if prev_mode == sb_obs::Mode::Off {
        sb_obs::set_mode(sb_obs::Mode::Off);
    }
    let (cache_hits, cache_misses) = service.cache_stats();
    let errors_by_code: Vec<(&'static str, usize)> = ErrorCode::ALL
        .iter()
        .zip(&by_code)
        .filter(|(c, _)| **c != ErrorCode::Ok)
        .map(|(c, n)| (c.as_str(), n.load(Ordering::Relaxed)))
        .collect();
    let errors = errors_by_code.iter().map(|(_, n)| n).sum();
    let latency_by_code: Vec<(&'static str, HistStat)> = ErrorCode::ALL
        .iter()
        .zip(code_hists.into_inner().unwrap())
        .map(|(c, h)| (c.as_str(), h))
        .collect();
    let slow_log_lines = service.drain_slow_log();
    DomainLoadReport {
        domain: domain.name().to_string(),
        clients,
        requests: load.requests,
        ok: ok.into_inner(),
        errors,
        errors_by_code,
        cache_hits,
        cache_misses,
        qps: load.requests as f64 / elapsed,
        p50_us: hist.quantile(0.50),
        p95_us: hist.quantile(0.95),
        p99_us: hist.quantile(0.99),
        mean_us: if hist.count > 0 {
            hist.sum / hist.count as f64
        } else {
            0.0
        },
        max_us: hist.max,
        latency_by_code,
        slow_log_lines,
    }
}

/// Render domain reports as the `BENCH_serve.json` document.
pub fn render_bench_json(load: &LoadConfig, reports: &[DomainLoadReport]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"sb-serve closed-loop load\",");
    let _ = writeln!(out, "  \"clients\": {},", load.clients.max(1));
    let _ = writeln!(out, "  \"requests_per_domain\": {},", load.requests);
    let _ = writeln!(out, "  \"seed\": {},", load.seed);
    out.push_str("  \"domains\": [");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n");
        let _ = writeln!(out, "      \"domain\": \"{}\",", json::escape(&r.domain));
        let _ = writeln!(
            out,
            "      \"requests\": {}, \"ok\": {}, \"errors\": {},",
            r.requests, r.ok, r.errors
        );
        let codes: Vec<String> = r
            .errors_by_code
            .iter()
            .map(|(code, n)| format!("\"{code}\": {n}"))
            .collect();
        let _ = writeln!(out, "      \"errors_by_code\": {{{}}},", codes.join(", "));
        let _ = writeln!(
            out,
            "      \"cache\": {{\"hits\": {}, \"misses\": {}}},",
            r.cache_hits, r.cache_misses
        );
        let _ = writeln!(out, "      \"qps\": {},", json::number(r.qps));
        let _ = writeln!(
            out,
            "      \"latency_us\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"mean\": {}, \"max\": {}}}",
            json::number(r.p50_us),
            json::number(r.p95_us),
            json::number(r.p99_us),
            json::number(r.mean_us),
            json::number(r.max_us)
        );
        out.push_str("    }");
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Validate a `BENCH_serve.json` document: well-formed JSON (via the
/// `sb-obs` validator) carrying every required key. Returns a
/// human-readable complaint on failure.
pub fn validate_bench_json(content: &str) -> Result<(), String> {
    json::validate(content)?;
    const REQUIRED: &[&str] = &[
        "\"benchmark\"",
        "\"clients\"",
        "\"requests_per_domain\"",
        "\"domains\"",
        "\"qps\"",
        "\"latency_us\"",
        "\"p50\"",
        "\"p95\"",
        "\"p99\"",
        "\"cache\"",
        "\"errors_by_code\"",
    ];
    for key in REQUIRED {
        if !content.contains(key) {
            return Err(format!("missing required key {key}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_renders_valid_and_validates() {
        let load = LoadConfig {
            clients: 2,
            requests: 4,
            ..LoadConfig::default()
        };
        let report = DomainLoadReport {
            domain: "sdss".to_string(),
            clients: 2,
            requests: 4,
            ok: 4,
            errors: 0,
            errors_by_code: ErrorCode::ALL
                .iter()
                .filter(|c| **c != ErrorCode::Ok)
                .map(|c| (c.as_str(), 0))
                .collect(),
            cache_hits: 3,
            cache_misses: 1,
            qps: 1234.5,
            p50_us: 10.0,
            p95_us: 20.0,
            p99_us: 30.0,
            mean_us: 12.0,
            max_us: 31.0,
            latency_by_code: ErrorCode::ALL
                .iter()
                .map(|c| (c.as_str(), HistStat::default()))
                .collect(),
            slow_log_lines: Vec::new(),
        };
        let doc = render_bench_json(&load, &[report]);
        validate_bench_json(&doc).expect("rendered document must validate");
        assert!(validate_bench_json("{}").is_err(), "missing keys must fail");
        assert!(
            validate_bench_json("{\"benchmark\": ").is_err(),
            "malformed JSON must fail"
        );
    }

    #[test]
    fn small_run_splits_errors_by_code_with_no_transients() {
        let load = LoadConfig {
            clients: 2,
            requests: 40,
            ..LoadConfig::default()
        };
        let r = run_domain_load(Domain::Sdss, &load);
        assert_eq!(r.ok + r.errors, r.requests);
        assert_eq!(
            r.errors,
            r.errors_by_code.iter().map(|(_, n)| n).sum::<usize>(),
            "per-code counters must account for every error"
        );
        assert_eq!(
            r.errors_by_code.len(),
            ErrorCode::ALL.len() - 1,
            "every non-Ok code appears, zeros included"
        );
        assert_eq!(
            r.transient_errors(),
            0,
            "deterministic closed-loop run shed load: {:?}",
            r.errors_by_code
        );
        // The per-code latency shards must account for every request...
        let hist_total: u64 = r.latency_by_code.iter().map(|(_, h)| h.count).sum();
        assert_eq!(hist_total as usize, r.requests);
        // ...and agree with the scalar counters, code by code.
        for (code, h) in &r.latency_by_code {
            let n = if *code == "ok" {
                r.ok
            } else {
                r.errors_by_code
                    .iter()
                    .find(|(c, _)| c == code)
                    .map(|(_, n)| *n)
                    .unwrap()
            };
            assert_eq!(h.count as usize, n, "{code}: histogram/counter mismatch");
        }
        assert!(
            r.slow_log_lines.is_empty(),
            "slow log must stay off unless armed"
        );
    }

    #[test]
    fn hot_set_mixing_is_a_pure_function_of_the_index() {
        let db = sb_fuzz::fuzz_database(Domain::Sdss);
        let cfg = LoadConfig {
            hot_set: 4,
            hot_every: 4,
            ..LoadConfig::default()
        };
        // Indices 1..4 replay hot statements 1..3; index 5 maps to hot
        // statement 1 again; multiples of `hot_every` stay cold.
        assert_eq!(workload_sql(&db, &cfg, 5), workload_sql(&db, &cfg, 1));
        assert_ne!(workload_sql(&db, &cfg, 0), workload_sql(&db, &cfg, 4));
    }
}
