//! The prepared-plan cache: normalize → parse → plan **once**, execute
//! the cached plan on every subsequent request.
//!
//! Serving workloads repeat: the same templated statements arrive over
//! and over with cosmetic differences (whitespace, keyword case). The
//! cache removes the per-request parse and plan cost in two layers:
//!
//! 1. **Raw layer** — the exact request text `(snapshot, sql)` maps
//!    straight to its prepared entry, so a verbatim repeat pays one
//!    `HashMap` probe. Parse *errors* are cached here too: a busted
//!    statement hammered in a retry loop fails fast without re-lexing.
//! 2. **Normalized layer** — on a raw miss the statement is parsed and
//!    re-printed through the AST printer, which is the dialect's
//!    canonical form. Cosmetic variants collapse onto one entry:
//!    `select  A from T` and `SELECT a FROM t` share a single plan.
//!
//! ## Why a cached plan is safe to reuse
//!
//! A [`Prepared`] entry stores the statement AST (`Arc<Query>`) and an
//! [`sb_opt::OwnedPlan`] captured by `sb_engine::plan_top_select`. The
//! planner is a pure function of the statement, the snapshot's schema
//! and its row counts — and a service snapshot is immutable — so the
//! cached plan is *the same plan* fresh planning would produce, and
//! execution through it is byte-identical, errors included. This is
//! pinned by the cold/warm equivalence suite in `tests/plan_cache.rs`.
//! Statements the planner does not cover (set operations, derived
//! tables, unknown relations) prepare with `plan: None` and execute
//! through the ordinary path, planning per request as before.
//!
//! One cache instance is bound to one service: the entries embed
//! decisions derived from that service's `ExecOptions` and snapshots,
//! so entries must never be shared across services with different
//! configuration.

use sb_engine::{Database, ExecOptions};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One statement, prepared: parsed once, planned once.
#[derive(Debug)]
pub struct Prepared {
    /// Canonical (printer-normalized) SQL text.
    pub normalized: String,
    /// The parsed statement.
    pub query: Arc<sb_sql::Query>,
    /// The captured optimizer plan, when the statement is a plannable
    /// top-level `SELECT` over base tables (`None` falls back to
    /// per-request planning inside the engine).
    pub plan: Option<sb_opt::OwnedPlan>,
}

/// Outcome of parsing one raw statement, cached either way.
#[derive(Debug, Clone)]
enum RawEntry {
    Prepared(Arc<Prepared>),
    ParseErr(String),
}

#[derive(Debug, Default)]
struct Inner {
    /// `(snapshot, raw sql)` → parse outcome.
    by_raw: HashMap<(String, String), RawEntry>,
    /// `(snapshot, normalized sql)` → prepared entry, shared by every
    /// raw spelling that normalizes onto it.
    by_norm: HashMap<(String, String), Arc<Prepared>>,
}

/// Concurrent prepared-statement cache. Read-mostly: lookups take the
/// read lock, only first-touch preparation takes the write lock.
#[derive(Debug, Default)]
pub struct PlanCache {
    inner: RwLock<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Look up or prepare `sql` against snapshot `db_name`. Returns the
    /// prepared entry (or the cached parse error) and whether this call
    /// was a raw-layer hit.
    ///
    /// Under concurrent first-touch of the same statement, several
    /// threads may parse and plan it simultaneously; the planner is
    /// deterministic, so whichever entry lands in the map is
    /// interchangeable with the rest. Which thread observes the miss is
    /// scheduling-dependent — the reason `cache_hit` stays out of the
    /// response serialization.
    pub fn prepare(
        &self,
        db_name: &str,
        db: &Database,
        sql: &str,
        opts: ExecOptions,
    ) -> (Result<Arc<Prepared>, String>, bool) {
        let raw_key = (db_name.to_string(), sql.to_string());
        {
            let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
            if let Some(entry) = inner.by_raw.get(&raw_key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (
                    match entry {
                        RawEntry::Prepared(p) => Ok(Arc::clone(p)),
                        RawEntry::ParseErr(e) => Err(e.clone()),
                    },
                    true,
                );
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);

        // Parse and plan outside the lock: planning walks the statement
        // and consults row counts, and holding a write lock across it
        // would serialize unrelated first-touch requests.
        let entry = match sb_sql::parse(sql) {
            Err(e) => RawEntry::ParseErr(e.to_string()),
            Ok(query) => {
                let normalized = query.to_string();
                let norm_key = (db_name.to_string(), normalized.clone());
                let existing = {
                    let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
                    inner.by_norm.get(&norm_key).map(Arc::clone)
                };
                let prepared = existing.unwrap_or_else(|| {
                    let plan = sb_engine::plan_top_select(db, &query, opts);
                    Arc::new(Prepared {
                        normalized,
                        query: Arc::new(query),
                        plan,
                    })
                });
                let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
                let shared = inner
                    .by_norm
                    .entry(norm_key)
                    .or_insert_with(|| Arc::clone(&prepared));
                RawEntry::Prepared(Arc::clone(shared))
            }
        };
        let result = match &entry {
            RawEntry::Prepared(p) => Ok(Arc::clone(p)),
            RawEntry::ParseErr(e) => Err(e.clone()),
        };
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        inner.by_raw.entry(raw_key).or_insert(entry);
        (result, false)
    }

    /// Raw-layer hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Raw-layer misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct raw statements cached.
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .by_raw
            .len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct normalized statements (≤ [`Self::len`]).
    pub fn normalized_len(&self) -> usize {
        self.inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .by_norm
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_data::{Domain, SizeClass};

    #[test]
    fn raw_repeat_hits_and_cosmetic_variants_share_one_plan() {
        let db = Domain::Sdss.build(SizeClass::Tiny).db;
        let cache = PlanCache::new();
        let opts = ExecOptions::default();
        let sql = "SELECT s.class FROM specobj AS s WHERE s.z > 0.5";

        let (first, hit) = cache.prepare("sdss", &db, sql, opts);
        assert!(!hit);
        let first = first.expect("parses");
        let (second, hit) = cache.prepare("sdss", &db, sql, opts);
        assert!(hit, "verbatim repeat must hit the raw layer");
        assert!(Arc::ptr_eq(&first, &second.expect("parses")));

        // Different spelling, same canonical statement: raw miss, but
        // the normalized layer hands back the very same entry.
        let variant = "select  s.class  from specobj as s where s.z > 0.5";
        let (third, hit) = cache.prepare("sdss", &db, variant, opts);
        assert!(!hit);
        assert!(Arc::ptr_eq(&first, &third.expect("parses")));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.normalized_len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    #[test]
    fn parse_errors_are_cached() {
        let db = Domain::Sdss.build(SizeClass::Tiny).db;
        let cache = PlanCache::new();
        let opts = ExecOptions::default();
        let (r1, hit1) = cache.prepare("sdss", &db, "SELECT FROM WHERE", opts);
        let (r2, hit2) = cache.prepare("sdss", &db, "SELECT FROM WHERE", opts);
        assert!(!hit1);
        assert!(hit2, "second failure must come from the cache");
        assert_eq!(r1.unwrap_err(), r2.unwrap_err());
    }

    #[test]
    fn snapshot_name_partitions_the_cache() {
        let db = Domain::Sdss.build(SizeClass::Tiny).db;
        let cache = PlanCache::new();
        let opts = ExecOptions::default();
        let sql = "SELECT s.class FROM specobj AS s";
        let (_, hit_a) = cache.prepare("a", &db, sql, opts);
        let (_, hit_b) = cache.prepare("b", &db, sql, opts);
        assert!(!hit_a && !hit_b, "different snapshots never share entries");
        assert_eq!(cache.len(), 2);
    }
}
