//! Admission control: a bounded in-flight gate with explicit overload
//! rejection.
//!
//! The service never queues: a request either gets a [`Permit`]
//! immediately or is answered `overloaded` right away. Closed-loop
//! clients retry on their own schedule, which keeps worst-case memory
//! proportional to `max_in_flight` result sets instead of an unbounded
//! backlog — the classic load-shedding posture for an in-process
//! service.
//!
//! Lock-free: one `AtomicUsize` compare-exchange to admit, one
//! `fetch_sub` on RAII release. `max_in_flight = 0` rejects everything,
//! which the envelope tests use to pin the overload response
//! deterministically.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Bounded admission gate. Cheap to share behind the service.
#[derive(Debug)]
pub struct AdmissionGate {
    max: usize,
    in_flight: AtomicUsize,
}

/// RAII admission slot: dropping it releases the slot.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a AdmissionGate,
}

impl AdmissionGate {
    /// A gate admitting at most `max_in_flight` concurrent requests.
    pub fn new(max_in_flight: usize) -> AdmissionGate {
        AdmissionGate {
            max: max_in_flight,
            in_flight: AtomicUsize::new(0),
        }
    }

    /// Try to admit one request. `None` means overloaded — reject now,
    /// never wait.
    pub fn try_acquire(&self) -> Option<Permit<'_>> {
        let mut cur = self.in_flight.load(Ordering::Relaxed);
        loop {
            if cur >= self.max {
                return None;
            }
            match self.in_flight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(Permit { gate: self }),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Requests currently holding permits.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.max
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.in_flight.fetch_sub(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_bounds_in_flight_and_releases_on_drop() {
        let gate = AdmissionGate::new(2);
        let a = gate.try_acquire().expect("slot 1");
        let b = gate.try_acquire().expect("slot 2");
        assert!(gate.try_acquire().is_none(), "third admit must be rejected");
        assert_eq!(gate.in_flight(), 2);
        drop(a);
        let c = gate.try_acquire().expect("slot freed by drop");
        assert_eq!(gate.in_flight(), 2);
        drop(b);
        drop(c);
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let gate = AdmissionGate::new(0);
        assert!(gate.try_acquire().is_none());
    }

    #[test]
    fn gate_is_consistent_under_contention() {
        let gate = AdmissionGate::new(3);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..2000 {
                        if let Some(p) = gate.try_acquire() {
                            assert!(gate.in_flight() <= 3);
                            drop(p);
                        }
                    }
                });
            }
        });
        assert_eq!(gate.in_flight(), 0);
    }
}
