//! # ScienceBenchmark — a Rust reproduction
//!
//! Umbrella crate re-exporting every subsystem of the reproduction of
//! *ScienceBenchmark: A Complex Real-World Benchmark for Evaluating Natural
//! Language to SQL Systems* (VLDB 2023).
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the full system
//! inventory and experiment index.

pub use sb_core as core;
pub use sb_data as data;
pub use sb_embed as embed;
pub use sb_engine as engine;
pub use sb_gen as gen;
pub use sb_metrics as metrics;
pub use sb_nl as nl;
pub use sb_nl2sql as nl2sql;
pub use sb_obs as obs;
pub use sb_schema as schema;
pub use sb_semql as semql;
pub use sb_sql as sql;
