//! EXPLAIN plan snapshots: the planner's decisions as reviewable text.
//!
//! Each case renders [`sb_engine::explain`] for one query against a
//! deterministic fuzz-domain database and diffs it against the
//! committed golden under `tests/goldens/plans/`. Any change to a
//! rewrite rule, the cost model, or the EXPLAIN format shows up as a
//! golden diff in review instead of a silent behavior change.
//!
//! The case list spans all four Spider hardness buckets (asserted via
//! `sb_metrics::hardness::classify_sql`, so the labels can't rot) and
//! includes at least one cost-based join reorder — visible as the
//! `RestoreOrder` operator wrapping a join tree whose scan order
//! differs from the FROM clause.
//!
//! Regenerate intentionally-changed goldens with:
//! `SB_UPDATE_PLANS=1 cargo test -q --test plan_snapshots`

use sb_data::Domain;
use sb_engine::{explain, ExecOptions};
use sb_fuzz::fuzz_database;
use sb_metrics::hardness::{classify_sql, Hardness};
use std::path::PathBuf;

struct Case {
    /// Golden file stem under `tests/goldens/plans/`.
    name: &'static str,
    domain: Domain,
    /// Expected Spider hardness bucket (asserted, not just documented).
    hardness: Hardness,
    sql: &'static str,
}

const CASES: &[Case] = &[
    Case {
        name: "easy_filter_scan",
        domain: Domain::Sdss,
        hardness: Hardness::Easy,
        sql: "SELECT class FROM specobj WHERE z > 0.5",
    },
    Case {
        name: "easy_full_sort",
        domain: Domain::Sdss,
        hardness: Hardness::Easy,
        sql: "SELECT objid FROM photoobj ORDER BY ra",
    },
    Case {
        name: "medium_topk_fusion",
        domain: Domain::Sdss,
        hardness: Hardness::Medium,
        sql: "SELECT ra FROM photoobj ORDER BY ra LIMIT 5",
    },
    Case {
        name: "medium_hash_join_pruned",
        domain: Domain::Sdss,
        hardness: Hardness::Medium,
        sql: "SELECT s.class FROM specobj AS s \
              JOIN photoobj AS p ON s.bestobjid = p.objid \
              WHERE s.class = 'GALAXY'",
    },
    Case {
        name: "medium_left_outer_join",
        domain: Domain::Sdss,
        hardness: Hardness::Medium,
        sql: "SELECT s.class, p.ra FROM specobj AS s \
              LEFT JOIN photoobj AS p ON s.bestobjid = p.objid \
              WHERE s.z > 0.5",
    },
    Case {
        name: "medium_group_aggregate",
        domain: Domain::Cordis,
        hardness: Hardness::Medium,
        sql: "SELECT status, COUNT(*) FROM projects GROUP BY status",
    },
    Case {
        name: "hard_cost_based_reorder",
        domain: Domain::Sdss,
        hardness: Hardness::Hard,
        sql: "SELECT s.class, g.h_alpha_flux FROM photoobj AS p \
              JOIN specobj AS s ON s.bestobjid = p.objid \
              JOIN galspecline AS g ON g.specobjid = s.specobjid \
              WHERE s.class = 'GALAXY' AND g.h_alpha_flux > 1.0",
    },
    Case {
        name: "hard_in_subquery",
        domain: Domain::Cordis,
        hardness: Hardness::Hard,
        sql: "SELECT acronym FROM projects \
              WHERE principal_investigator IN (SELECT unics_id FROM people)",
    },
    Case {
        name: "extra_grouped_join_topk",
        domain: Domain::Cordis,
        hardness: Hardness::ExtraHard,
        sql: "SELECT pm.member_name, SUM(pm.ec_contribution) FROM project_members AS pm \
              JOIN projects AS pr ON pm.project = pr.unics_id \
              WHERE pr.start_year > 2000 AND pm.country LIKE '%A%' \
              GROUP BY pm.member_name ORDER BY 2 DESC LIMIT 3",
    },
    Case {
        name: "extra_derived_table",
        domain: Domain::Sdss,
        hardness: Hardness::ExtraHard,
        sql: "SELECT d.c, COUNT(*) FROM \
              (SELECT class AS c, zwarning FROM specobj WHERE z > 0.1) AS d \
              JOIN photo_type AS pt ON d.zwarning = pt.value \
              GROUP BY d.c ORDER BY d.c",
    },
];

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens/plans")
        .join(format!("{name}.txt"))
}

fn render_case(case: &Case) -> String {
    let db = fuzz_database(case.domain);
    let q = sb_sql::parse(case.sql).unwrap_or_else(|e| panic!("{}: parse: {e}", case.name));
    let plan = explain(&db, &q, ExecOptions::default())
        .unwrap_or_else(|e| panic!("{}: explain: {e}", case.name));
    format!(
        "-- domain: {}\n-- hardness: {}\n-- {}\n{}",
        case.domain.name(),
        case.hardness.label(),
        case.sql,
        plan
    )
}

#[test]
fn plan_snapshots_match_goldens() {
    let update = std::env::var_os("SB_UPDATE_PLANS").is_some();
    let mut buckets = [false; 4];
    let mut any_reorder = false;
    for case in CASES {
        assert_eq!(
            classify_sql(case.sql),
            case.hardness,
            "{}: hardness label drifted for: {}",
            case.name,
            case.sql
        );
        let i = Hardness::ALL
            .iter()
            .position(|h| *h == case.hardness)
            .unwrap();
        buckets[i] = true;

        let text = render_case(case);
        any_reorder |= text.contains("RestoreOrder");
        let path = golden_path(case.name);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &text).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: missing golden {} ({e}); regenerate with \
                 SB_UPDATE_PLANS=1 cargo test -q --test plan_snapshots",
                case.name,
                path.display()
            )
        });
        assert_eq!(
            text,
            want,
            "{}: plan drifted from {}; if intentional, regenerate with \
             SB_UPDATE_PLANS=1 cargo test -q --test plan_snapshots",
            case.name,
            path.display()
        );
    }
    assert!(
        buckets.iter().all(|b| *b),
        "case list no longer spans all four hardness buckets"
    );
    assert!(
        any_reorder,
        "no snapshot demonstrates a cost-based join reorder (RestoreOrder)"
    );
}

/// The snapshot suite pins plans under default options; this pins that
/// EXPLAIN respects non-default options too (a nested-loop-only session
/// must not label joins as hash joins).
#[test]
fn explain_respects_join_strategy() {
    let db = fuzz_database(Domain::Sdss);
    let sql = "SELECT s.class FROM specobj AS s JOIN photoobj AS p ON s.bestobjid = p.objid";
    let q = sb_sql::parse(sql).unwrap();
    let auto = explain(&db, &q, ExecOptions::default()).unwrap();
    assert!(auto.contains("HashJoin"), "auto:\n{auto}");
    let nl = explain(
        &db,
        &q,
        ExecOptions {
            join: sb_engine::JoinStrategy::NestedLoop,
            ..ExecOptions::default()
        },
    )
    .unwrap();
    assert!(nl.contains("NestedLoopJoin"), "nested loop:\n{nl}");
}
