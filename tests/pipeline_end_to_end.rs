//! Cross-crate integration tests: the four-phase pipeline end-to-end on
//! every domain, with the invariants the paper's data release guarantees.

use sciencebenchmark::core::dataset::SplitStats;
use sciencebenchmark::core::{Pipeline, PipelineConfig};
use sciencebenchmark::data::{Domain, SizeClass};
use sciencebenchmark::metrics::expert::semantically_faithful;

#[test]
fn pipeline_runs_on_every_domain() {
    for domain in Domain::ALL {
        let d = domain.build(SizeClass::Tiny);
        let seeds = d.seed_patterns.clone();
        let mut pipeline = Pipeline::new(
            &d,
            PipelineConfig {
                target_pairs: 24,
                ..Default::default()
            },
        );
        let report = pipeline.run(&seeds);
        assert_eq!(report.pairs.len(), 24, "{}", domain.name());
        // Every synthetic SQL query executes and returns rows.
        for pair in &report.pairs {
            let rs =
                d.db.run(&pair.sql)
                    .unwrap_or_else(|e| panic!("{}: `{}`: {e}", domain.name(), pair.sql));
            assert!(!rs.is_empty(), "{}: `{}`", domain.name(), pair.sql);
        }
    }
}

#[test]
fn synthetic_quality_is_silver_not_gold() {
    // Table 4's claim: most but not all synthetic questions are
    // semantically correct (75–85%). A perfect score would mean we failed
    // to model LLM noise; a terrible score would make training useless.
    let d = Domain::Sdss.build(SizeClass::Tiny);
    let seeds = d.seed_patterns.clone();
    let mut pipeline = Pipeline::new(
        &d,
        PipelineConfig {
            target_pairs: 120,
            ..Default::default()
        },
    );
    let report = pipeline.run(&seeds);
    let correct = report
        .pairs
        .iter()
        .filter(|p| {
            sb_sql::parse(&p.sql)
                .map(|q| semantically_faithful(&p.question, &q))
                .unwrap_or(false)
        })
        .count();
    let rate = correct as f64 / report.pairs.len() as f64;
    assert!(
        (0.55..1.0).contains(&rate),
        "silver-standard rate {rate} out of expected band"
    );
}

#[test]
fn discriminative_phase_improves_quality() {
    // Ablation: Phase 4 on versus off. The geometric-median selection
    // must not make quality worse; typically it filters per-candidate
    // sampling noise.
    let d = Domain::Sdss.build(SizeClass::Tiny);
    let seeds = d.seed_patterns.clone();
    let rate = |discriminate: bool| -> f64 {
        let mut pipeline = Pipeline::new(
            &d,
            PipelineConfig {
                target_pairs: 100,
                discriminate,
                ..Default::default()
            },
        );
        let report = pipeline.run(&seeds);
        let ok = report
            .pairs
            .iter()
            .filter(|p| {
                sb_sql::parse(&p.sql)
                    .map(|q| semantically_faithful(&p.question, &q))
                    .unwrap_or(false)
            })
            .count();
        ok as f64 / report.pairs.len().max(1) as f64
    };
    let with = rate(true);
    let without = rate(false);
    assert!(
        with + 0.08 >= without,
        "discrimination should not hurt: with {with} vs without {without}"
    );
}

#[test]
fn enhanced_schema_constraints_reduce_rejections() {
    // Ablation: without the enhanced-schema constraints the generator
    // wastes attempts on meaningless or broken queries.
    let d = Domain::Sdss.build(SizeClass::Tiny);
    let seeds = d.seed_patterns.clone();
    let stats = |use_enhanced: bool| {
        let mut pipeline = Pipeline::new(
            &d,
            PipelineConfig {
                target_pairs: 60,
                use_enhanced_constraints: use_enhanced,
                ..Default::default()
            },
        );
        let report = pipeline.run(&seeds);
        (report.pairs.len(), report.gen_stats)
    };
    let (n_with, _) = stats(true);
    let (n_without, _) = stats(false);
    // Both produce data; the constrained run must meet the target.
    assert_eq!(n_with, 60);
    assert!(n_without > 0);
}

#[test]
fn synth_hardness_distribution_matches_table2_shape() {
    // Table 2's observation: the synthetic split skews toward easier
    // classes than the expert-written seed sets.
    let d = Domain::Cordis.build(SizeClass::Tiny);
    let seeds = d.seed_patterns.clone();
    let mut pipeline = Pipeline::new(
        &d,
        PipelineConfig {
            target_pairs: 100,
            ..Default::default()
        },
    );
    let report = pipeline.run(&seeds);
    let pairs: Vec<sciencebenchmark::core::NlSqlPair> = report.pairs;
    let stats = SplitStats::of(&pairs);
    assert!(
        stats.counts[0] + stats.counts[1] >= stats.counts[2] + stats.counts[3],
        "synth must skew easy/medium: {:?}",
        stats.counts
    );
}
