//! Integration tests asserting the *shape* of the paper's experimental
//! claims on miniature runs (Table 5 and §5.4).

use sciencebenchmark::core::experiments::{evaluate, fresh_systems, run_domain_grid};
use sciencebenchmark::core::{ExperimentConfig, SpiderPairs, SpiderSetConfig};
use sciencebenchmark::data::{Domain, SizeClass};
use sciencebenchmark::metrics::GoldCache;
use sciencebenchmark::nl2sql::{DbCatalog, Pair};

fn mini_config() -> ExperimentConfig {
    ExperimentConfig {
        size: SizeClass::Tiny,
        scale: 0.15,
        spider: SpiderSetConfig {
            train_total: 180,
            dev_total: 45,
            databases: 3,
            seed: 31,
        },
        seed: 31,
    }
}

#[test]
fn domain_training_lifts_every_system_on_oncomx() {
    // The paper's headline: domain data (seed+synth) beats zero-shot for
    // every system; OncoMX shows the largest gains.
    let cfg = mini_config();
    let spider = SpiderPairs::build(&cfg.spider);
    let results = run_domain_grid(&cfg, &spider, &[Domain::OncoMx]);
    assert_eq!(results.len(), 12);
    for system in ["ValueNet", "T5-Large w/o PICARD", "SmBoP+GraPPa"] {
        let get = |needle: &str| {
            results
                .iter()
                .find(|r| r.system == system && r.regime.contains(needle))
                .map(|r| r.accuracy)
                .unwrap()
        };
        let zero = get("Zero-Shot");
        let best = get("+ Synth");
        assert!(
            best + 1e-9 >= zero,
            "{system}: domain training must not lose to zero-shot ({best} vs {zero})"
        );
    }
}

#[test]
fn in_domain_spider_beats_zero_shot_domain_transfer() {
    // Table 5's control: systems trained and evaluated on Spider-like
    // data score far above zero-shot transfer to a scientific domain.
    let cfg = mini_config();
    let spider = SpiderPairs::build(&cfg.spider);
    let train: Vec<Pair> = spider
        .train
        .iter()
        .map(|p| Pair::new(p.question.clone(), p.sql.clone(), p.db.clone()))
        .collect();
    let catalog = DbCatalog::new(spider.corpus.databases.iter().map(|d| &d.db));

    let sdss = Domain::Sdss.build(SizeClass::Tiny);
    let sdss_bundle = sciencebenchmark::core::experiments::build_domain_bundle(Domain::Sdss, &cfg);

    let mut in_domain_best = 0.0f64;
    let mut transfer_best = 0.0f64;
    let gold_cache = GoldCache::new();
    for mut system in fresh_systems() {
        system.train(&train, &catalog);
        let spider_acc = evaluate(system.as_ref(), &spider.dev, &gold_cache, |name| {
            spider
                .corpus
                .databases
                .iter()
                .find(|d| d.db.schema.name.eq_ignore_ascii_case(name))
                .map(|d| &d.db)
        });
        let sdss_acc = evaluate(
            system.as_ref(),
            &sdss_bundle.dataset.dev,
            &gold_cache,
            |name| {
                if name.eq_ignore_ascii_case("sdss") {
                    Some(&sdss_bundle.data.db)
                } else {
                    None
                }
            },
        );
        in_domain_best = in_domain_best.max(spider_acc);
        transfer_best = transfer_best.max(sdss_acc);
    }
    let _ = &sdss;
    assert!(
        in_domain_best > transfer_best,
        "in-domain Spider accuracy ({in_domain_best}) must exceed zero-shot SDSS transfer ({transfer_best})"
    );
    assert!(
        transfer_best < 0.35,
        "zero-shot transfer to SDSS must be poor (got {transfer_best})"
    );
}

#[test]
fn pipeline_report_accounts_for_every_rejection() {
    use sciencebenchmark::core::{Pipeline, PipelineConfig};
    let d = Domain::Sdss.build(SizeClass::Tiny);
    let seeds = d.seed_patterns.clone();
    let config = PipelineConfig {
        target_pairs: 60,
        ..Default::default()
    };
    let mut p = Pipeline::new(&d, config.clone());
    let report = p.run(&seeds);

    // Phase 2: every sampling attempt is accounted for by exactly one
    // outcome, and the accepted count is what later phases consumed.
    let gs = &report.gen_stats;
    assert_eq!(gs.accepted, report.sql_queries);
    assert_eq!(
        gs.attempts(),
        gs.accepted
            + gs.rejected_sampling
            + gs.rejected_execution
            + gs.rejected_empty
            + gs.rejected_duplicate
    );
    // The Tiny SDSS workload exercises at least the sampling and
    // empty-result rejection paths.
    assert!(gs.rejected_sampling > 0, "no sampling rejections recorded");
    assert!(gs.rejected_empty > 0, "no empty-result rejections recorded");

    // Phases 3+4: candidates fan out per query, the discriminator drops
    // the rest, and the merge dedups.
    assert_eq!(
        report.nl_candidates,
        report.sql_queries * config.candidates_per_query
    );
    assert!(
        report.dropped_discriminator > 0,
        "discriminator dropped nothing"
    );
    assert!(
        report.dropped_discriminator <= report.nl_candidates,
        "cannot drop more candidates than were generated"
    );
    // Kept = candidates − discriminator drops; emitted pairs can only
    // shrink further (merge dedup + early stop at the target).
    let kept = report.nl_candidates - report.dropped_discriminator;
    assert!(report.pairs.len() + report.dropped_duplicate <= kept);
    assert_eq!(report.pairs.len(), config.target_pairs);

    // Determinism: rejection accounting is part of the report contract,
    // so a re-run must reproduce it exactly.
    let again = Pipeline::new(&d, config).run(&seeds);
    assert_eq!(again.gen_stats, report.gen_stats);
    assert_eq!(again.nl_candidates, report.nl_candidates);
    assert_eq!(again.dropped_discriminator, report.dropped_discriminator);
    assert_eq!(again.dropped_duplicate, report.dropped_duplicate);
}

#[test]
fn dataset_serialization_round_trips_through_json() {
    let cfg = mini_config();
    let bundle = sciencebenchmark::core::experiments::build_domain_bundle(Domain::Cordis, &cfg);
    let json = bundle.dataset.to_json();
    let back = sciencebenchmark::core::BenchmarkDataset::from_json(&json).unwrap();
    assert_eq!(bundle.dataset, back);
    assert!(json.contains("\"domain\": \"cordis\""));
}
