//! Equivalence and determinism guarantees for the execution-engine
//! rework: every join strategy and pushdown setting must produce the
//! exact same `ResultSet` (rows *and* order), and the parallel pipeline
//! must be byte-identical regardless of thread count.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sciencebenchmark::core::{Pipeline, PipelineConfig};
use sciencebenchmark::data::{Domain, SizeClass};
use sciencebenchmark::engine::{Database, EngineError, ExecOptions, JoinStrategy};
use sciencebenchmark::schema::{Column, ColumnType, Schema, TableDef};

/// Every execution configuration that must agree: the default (pushdown +
/// auto hash join + compiled expressions + columnar batch engine), each
/// forced join strategy with and without pushdown, each of those both
/// compiled and interpreted and with the columnar engine on and off, and
/// the pre-rework cloning path.
fn all_options() -> Vec<ExecOptions> {
    let mut out = vec![ExecOptions::default(), ExecOptions::legacy()];
    for join in [
        JoinStrategy::Auto,
        JoinStrategy::BuildRight,
        JoinStrategy::NestedLoop,
    ] {
        for predicate_pushdown in [false, true] {
            for compiled in [false, true] {
                for columnar in [false, true] {
                    out.push(ExecOptions {
                        join,
                        predicate_pushdown,
                        compiled,
                        columnar,
                        ..ExecOptions::default()
                    });
                }
            }
        }
    }
    out
}

/// A type-appropriate comparison for `col_ref`, so generated queries
/// always execute.
fn typed_predicate(
    rng: &mut StdRng,
    col_ref: &str,
    ty: sciencebenchmark::schema::ColumnType,
) -> String {
    use sciencebenchmark::schema::ColumnType;
    match ty {
        ColumnType::Int | ColumnType::Float => {
            let op = *["<", ">", "<="].choose(rng).unwrap();
            format!("{col_ref} {op} {}", rng.gen_range(-5..500))
        }
        ColumnType::Bool => format!(
            "{col_ref} = {}",
            if rng.gen_bool(0.5) { "TRUE" } else { "FALSE" }
        ),
        ColumnType::Text => format!("{col_ref} <> 'zz_none'"),
    }
}

/// A random single-hop equi-join over a real FK edge of the schema, with
/// qualified projections and an optional typed filter / ORDER BY / LIMIT.
fn random_equi_join(
    rng: &mut StdRng,
    schema: &sciencebenchmark::schema::Schema,
    edges: &[(String, String, String, String)],
) -> String {
    let (lt, lc, rt, rc) = edges.choose(rng).unwrap();
    let ldef = schema.table(lt).unwrap();
    let rdef = schema.table(rt).unwrap();
    let p1 = &ldef.columns.choose(rng).unwrap().name;
    let p2 = &rdef.columns.choose(rng).unwrap().name;
    let mut sql =
        format!("SELECT T1.{p1}, T2.{p2} FROM {lt} AS T1 JOIN {rt} AS T2 ON T1.{lc} = T2.{rc}");
    if rng.gen_bool(0.6) {
        // Filter on a random column of a random side; the literal is
        // type-appropriate so the query always executes.
        let (qual, def) = if rng.gen_bool(0.5) {
            ("T1", ldef)
        } else {
            ("T2", rdef)
        };
        let col = def.columns.choose(rng).unwrap();
        sql.push_str(&format!(
            " WHERE {}",
            typed_predicate(rng, &format!("{qual}.{}", col.name), col.ty)
        ));
    }
    if rng.gen_bool(0.4) {
        sql.push_str(&format!(
            " ORDER BY T1.{p1}{}",
            if rng.gen_bool(0.5) { " DESC" } else { "" }
        ));
    }
    if rng.gen_bool(0.3) {
        sql.push_str(&format!(" LIMIT {}", rng.gen_range(1..40u64)));
    }
    sql
}

#[test]
fn join_strategies_agree_on_random_equi_joins_across_domains() {
    for (i, domain) in Domain::ALL.into_iter().enumerate() {
        let d = domain.build(SizeClass::Tiny);
        let schema = &d.db.schema;
        // Both directions of every FK edge, so the hash build lands on the
        // big side as well as the small one.
        let mut edges: Vec<(String, String, String, String)> = Vec::new();
        for t in &schema.tables {
            for (lcol, other, rcol) in schema.join_edges(&t.name) {
                edges.push((t.name.clone(), lcol, other, rcol));
            }
        }
        assert!(!edges.is_empty(), "{} has no FK edges", domain.name());
        let mut rng = StdRng::seed_from_u64(0xE9_0200 + i as u64);
        for _ in 0..60 {
            let sql = random_equi_join(&mut rng, schema, &edges);
            let reference =
                d.db.run_with(&sql, ExecOptions::default())
                    .unwrap_or_else(|e| panic!("{}: `{sql}`: {e}", domain.name()));
            for opts in all_options() {
                let rs = d
                    .db
                    .run_with(&sql, opts)
                    .unwrap_or_else(|e| panic!("{}: `{sql}` with {opts:?}: {e}", domain.name()));
                assert_eq!(
                    rs,
                    reference,
                    "{}: `{sql}` differs under {opts:?}",
                    domain.name()
                );
            }
        }
    }
}

#[test]
fn pushdown_agrees_on_filtered_single_table_scans() {
    for (i, domain) in Domain::ALL.into_iter().enumerate() {
        let d = domain.build(SizeClass::Tiny);
        let schema = &d.db.schema;
        let mut rng = StdRng::seed_from_u64(0x5CA_0300 + i as u64);
        for _ in 0..60 {
            let t = schema.tables.choose(&mut rng).unwrap();
            let proj = &t.columns.choose(&mut rng).unwrap().name;
            let col = t.columns.choose(&mut rng).unwrap();
            let pred = typed_predicate(&mut rng, &col.name.clone(), col.ty);
            let sql = format!("SELECT {proj} FROM {} WHERE {pred}", t.name);
            let reference = d.db.run_with(&sql, ExecOptions::default()).unwrap();
            for opts in all_options() {
                assert_eq!(
                    d.db.run_with(&sql, opts).unwrap(),
                    reference,
                    "{}: `{sql}` differs under {opts:?}",
                    domain.name()
                );
            }
        }
    }
}

/// The acceptance criterion for the parallel pipeline: byte-identical
/// output for the same `PipelineConfig` whether rayon runs 1 or N
/// workers. The thread count is process-global, so both runs happen
/// inside this one test.
#[test]
fn pipeline_output_is_identical_for_one_and_many_threads() {
    let run = || {
        let d = Domain::OncoMx.build(SizeClass::Tiny);
        let seeds = d.seed_patterns.clone();
        let mut p = Pipeline::new(
            &d,
            PipelineConfig {
                target_pairs: 40,
                ..Default::default()
            },
        );
        p.run(&seeds)
    };
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let sequential = run();
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let parallel = run();
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(sequential.pairs, parallel.pairs);
    assert_eq!(sequential.sql_queries, parallel.sql_queries);
    assert_eq!(sequential.templates, parallel.templates);
}

/// Observability must never change results: the same random workload
/// executed with `sb-obs` collection on and off must produce identical
/// `ResultSet`s under every executor configuration — and collection-on
/// must actually have collected engine counters (the instrumentation is
/// live, not compiled out).
#[test]
fn obs_on_and_off_produce_identical_result_sets() {
    use sciencebenchmark::obs;
    let d = Domain::Sdss.build(SizeClass::Tiny);
    let schema = &d.db.schema;
    let mut edges: Vec<(String, String, String, String)> = Vec::new();
    for t in &schema.tables {
        for (lcol, other, rcol) in schema.join_edges(&t.name) {
            edges.push((t.name.clone(), lcol, other, rcol));
        }
    }
    let queries: Vec<String> = {
        let mut rng = StdRng::seed_from_u64(0x0B5_0600);
        (0..30)
            .map(|_| random_equi_join(&mut rng, schema, &edges))
            .collect()
    };
    let run_all = || -> Vec<sciencebenchmark::engine::ResultSet> {
        let mut out = Vec::new();
        for sql in &queries {
            for opts in all_options() {
                out.push(d.db.run_with(sql, opts).unwrap());
            }
        }
        out
    };

    obs::set_mode(obs::Mode::Off);
    obs::reset();
    let off = run_all();
    assert!(obs::snapshot().is_empty(), "off mode must collect nothing");

    obs::set_mode(obs::Mode::Summary);
    obs::reset();
    let on = run_all();
    let report = obs::snapshot();
    obs::set_mode(obs::Mode::Off);
    obs::reset();

    assert_eq!(off, on, "sb-obs collection changed engine results");
    assert!(
        report.counter("engine.scan.rows") > 0,
        "engine instrumentation did not collect"
    );
    assert!(report.counter("engine.dispatch.compiled") > 0);
    assert!(report.counter("engine.dispatch.interpreted") > 0);
    // The columnar batch engine ran (half the matrix enables it, the
    // workload is batch-eligible) and its kernels are instrumented.
    assert!(report.counter("engine.columnar.selects") > 0);
    assert!(report.counter("engine.columnar.join.hash") > 0);
    assert!(report.counter("engine.columnar.filter.batches") > 0);
}

/// The per-query profile collector must be equally invisible: attaching
/// a `QueryProfile` to an execution (what `EXPLAIN ANALYZE` and the
/// serve-layer slow log do) must leave every `ResultSet` byte-identical
/// to the unprofiled run, under every executor configuration — and each
/// profiled run must actually have recorded operator flow.
#[test]
fn query_profiles_do_not_change_result_sets() {
    use sciencebenchmark::engine::execute_with_profile;
    use sciencebenchmark::obs::QueryProfile;
    let d = Domain::Cordis.build(SizeClass::Tiny);
    let schema = &d.db.schema;
    let mut edges: Vec<(String, String, String, String)> = Vec::new();
    for t in &schema.tables {
        for (lcol, other, rcol) in schema.join_edges(&t.name) {
            edges.push((t.name.clone(), lcol, other, rcol));
        }
    }
    let mut rng = StdRng::seed_from_u64(0x0B5_0700);
    for _ in 0..30 {
        let sql = random_equi_join(&mut rng, schema, &edges);
        let query = sciencebenchmark::sql::parser::parse(&sql).unwrap();
        for opts in all_options() {
            let plain = execute_with_profile(&d.db, &query, opts, None).unwrap();
            let prof = QueryProfile::new();
            let profiled = execute_with_profile(&d.db, &query, opts, Some(&prof)).unwrap();
            assert_eq!(plain, profiled, "`{sql}` differs when profiled ({opts:?})");
            let snap = prof.snapshot();
            assert!(!snap.blocks.is_empty(), "`{sql}` recorded no blocks");
            snap.check_conservation()
                .unwrap_or_else(|e| panic!("`{sql}` ({opts:?}): {e}"));
        }
    }
}

// ---------------------------------------------------------------------
// Error parity: the compiled expression path must surface the same
// binding errors — same variant, same rendered payload — as the
// interpreter, and zero-row plans must swallow residual errors the same
// way on both paths.
// ---------------------------------------------------------------------

/// Two tables sharing the column name `shared` (the ambiguity surface).
fn parity_db() -> Database {
    let schema = Schema::new("parity")
        .with_table(TableDef::new(
            "a",
            vec![
                Column::pk("id", ColumnType::Int),
                Column::new("x", ColumnType::Text),
                Column::new("shared", ColumnType::Int),
            ],
        ))
        .with_table(TableDef::new(
            "b",
            vec![
                Column::pk("id", ColumnType::Int),
                Column::new("shared", ColumnType::Int),
            ],
        ));
    let mut db = Database::new(schema);
    db.table_mut("a").unwrap().push_rows(vec![
        vec![1.into(), "one".into(), 10.into()],
        vec![2.into(), "two".into(), 20.into()],
    ]);
    db.table_mut("b")
        .unwrap()
        .push_rows(vec![vec![1.into(), 10.into()], vec![3.into(), 30.into()]]);
    db
}

/// Every configuration must reject `sql`, and every rejection must render
/// the exact same message — not just the same variant.
fn assert_uniform_error(db: &Database, sql: &str) -> EngineError {
    let mut first: Option<EngineError> = None;
    for opts in all_options() {
        let err = db
            .run_with(sql, opts)
            .err()
            .unwrap_or_else(|| panic!("`{sql}` must fail under {opts:?}"));
        match &first {
            None => first = Some(err),
            Some(f) => assert_eq!(
                f.to_string(),
                err.to_string(),
                "`{sql}` error message drifts under {opts:?}"
            ),
        }
    }
    first.unwrap()
}

#[test]
fn unknown_column_errors_are_identical_across_paths() {
    let db = parity_db();
    for sql in [
        "SELECT nope FROM a",
        "SELECT T1.nope FROM a AS T1",
        "SELECT x FROM a WHERE nope = 1",
        "SELECT x FROM a ORDER BY zzz",
    ] {
        let err = assert_uniform_error(&db, sql);
        assert!(
            matches!(err, EngineError::UnknownColumn(_)),
            "`{sql}` raised {err} instead of UnknownColumn"
        );
    }
}

#[test]
fn ambiguous_column_errors_are_identical_across_paths() {
    let db = parity_db();
    for sql in [
        "SELECT shared FROM a AS T1 JOIN b AS T2 ON T1.id = T2.id",
        "SELECT T1.x FROM a AS T1 JOIN b AS T2 ON shared = T2.shared",
        "SELECT T1.x FROM a AS T1 JOIN b AS T2 ON T1.id = T2.id WHERE shared > 0",
    ] {
        let err = assert_uniform_error(&db, sql);
        assert!(
            matches!(err, EngineError::AmbiguousColumn(_)),
            "`{sql}` raised {err} instead of AmbiguousColumn"
        );
    }
}

#[test]
fn order_by_ordinal_errors_are_identical_across_paths() {
    let db = parity_db();
    // Ordinals bind after set operations; out-of-range must error even
    // when the result is empty, identically on both evaluation paths.
    for sql in [
        "SELECT x FROM a UNION SELECT x FROM a ORDER BY 5",
        "SELECT x FROM a WHERE x = 'none' UNION \
         SELECT x FROM a WHERE x = 'none' ORDER BY 5",
    ] {
        let err = assert_uniform_error(&db, sql);
        assert!(
            matches!(err, EngineError::UnknownColumn(_)),
            "`{sql}` raised {err} instead of UnknownColumn"
        );
    }
}

#[test]
fn pushdown_emptied_scans_keep_constraint_errors_and_swallow_residual_ones() {
    let db = parity_db();
    // `T1.x = 'NOMATCH'` pushes into the scan of `a` and empties it; the
    // ON constraint's unknown column must still be reported — with the
    // same message — whether the constraint is compiled or interpreted.
    let err = assert_uniform_error(
        &db,
        "SELECT T2.shared FROM a AS T1 JOIN b AS T2 ON T1.nope = T2.id \
         WHERE T1.x = 'NOMATCH'",
    );
    assert!(matches!(err, EngineError::UnknownColumn(_)));
    // ...while a residual (multi-table) conjunct over an unknown column
    // is never evaluated once the plan carries zero rows: both paths
    // succeed with an empty result instead of erroring.
    let sql = "SELECT T1.x FROM a AS T1 JOIN b AS T2 ON T1.id = T2.id \
               WHERE T1.x = 'NOMATCH' AND T1.shared + T2.nope < 0";
    for opts in all_options() {
        let rs = db
            .run_with(sql, opts)
            .unwrap_or_else(|e| panic!("`{sql}` must succeed under {opts:?}: {e}"));
        assert!(rs.rows.is_empty(), "`{sql}` returned rows under {opts:?}");
    }
}
