//! EXPLAIN ANALYZE snapshots: executed plans annotated with per-operator
//! runtime statistics, pinned as goldens under
//! `tests/goldens/plans_analyzed/`.
//!
//! Each case executes its query for real against a deterministic
//! fuzz-domain database — through the row engine, the serial columnar
//! engine, or morsel-parallel columnar execution with a pinned worker
//! count — and renders [`sb_engine::explain_analyze`] in the
//! deterministic no-timings mode: row counts, selectivities, hash-join
//! build/probe sizes and morsel counts are shown (all pure functions of
//! the workload), while wall-clock times and steal counts (scheduling
//! noise) are masked. The same bytes must render at any
//! `RAYON_NUM_THREADS`; `check.sh` regenerates and diffs this suite at
//! 1 and 8 threads.
//!
//! The case list spans all four Spider hardness buckets (asserted via
//! `classify_sql`) and all three execution paths.
//!
//! Regenerate intentionally-changed goldens with:
//! `SB_UPDATE_PLANS=1 cargo test -q --test plan_snapshots_analyzed`

use sb_data::Domain;
use sb_engine::{explain_analyze, ExecOptions};
use sb_fuzz::fuzz_database;
use sb_metrics::hardness::{classify_sql, Hardness};
use std::path::PathBuf;

/// Which execution path the case pins. Parallel cases force an exact
/// worker count and a tiny morsel size so that tiny fuzz tables still
/// fan out — and so the rendering is identical on any machine
/// regardless of `RAYON_NUM_THREADS`.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Row,
    Columnar,
    Parallel,
}

impl Mode {
    fn opts(self) -> ExecOptions {
        let base = ExecOptions::default();
        match self {
            Mode::Row => ExecOptions {
                columnar: false,
                parallel: false,
                ..base
            },
            Mode::Columnar => ExecOptions {
                parallel: false,
                ..base
            },
            Mode::Parallel => ExecOptions {
                parallel: true,
                workers: 3,
                morsel_rows: 7,
                ..base
            },
        }
    }

    fn label(self) -> &'static str {
        match self {
            Mode::Row => "row",
            Mode::Columnar => "columnar",
            Mode::Parallel => "parallel workers=3 morsel_rows=7",
        }
    }
}

struct Case {
    /// Golden file stem under `tests/goldens/plans_analyzed/`.
    name: &'static str,
    domain: Domain,
    hardness: Hardness,
    mode: Mode,
    sql: &'static str,
}

const CASES: &[Case] = &[
    Case {
        name: "easy_filter_scan_row",
        domain: Domain::Sdss,
        hardness: Hardness::Easy,
        mode: Mode::Row,
        sql: "SELECT class FROM specobj WHERE z > 0.5",
    },
    Case {
        name: "easy_filter_scan_columnar",
        domain: Domain::Sdss,
        hardness: Hardness::Easy,
        mode: Mode::Columnar,
        sql: "SELECT class FROM specobj WHERE z > 0.5",
    },
    Case {
        name: "medium_topk_parallel",
        domain: Domain::Sdss,
        hardness: Hardness::Medium,
        mode: Mode::Parallel,
        sql: "SELECT ra FROM photoobj ORDER BY ra LIMIT 5",
    },
    Case {
        name: "medium_hash_join_columnar",
        domain: Domain::Sdss,
        hardness: Hardness::Medium,
        mode: Mode::Columnar,
        sql: "SELECT s.class FROM specobj AS s \
              JOIN photoobj AS p ON s.bestobjid = p.objid \
              WHERE s.class = 'GALAXY'",
    },
    Case {
        name: "medium_group_aggregate_columnar",
        domain: Domain::Cordis,
        hardness: Hardness::Medium,
        mode: Mode::Columnar,
        sql: "SELECT status, COUNT(*) FROM projects GROUP BY status",
    },
    Case {
        name: "medium_left_outer_row",
        domain: Domain::Sdss,
        hardness: Hardness::Medium,
        mode: Mode::Row,
        sql: "SELECT s.class, p.ra FROM specobj AS s \
              LEFT JOIN photoobj AS p ON s.bestobjid = p.objid \
              WHERE s.z > 0.5",
    },
    Case {
        name: "hard_cost_based_reorder_parallel",
        domain: Domain::Sdss,
        hardness: Hardness::Hard,
        mode: Mode::Parallel,
        sql: "SELECT s.class, g.h_alpha_flux FROM photoobj AS p \
              JOIN specobj AS s ON s.bestobjid = p.objid \
              JOIN galspecline AS g ON g.specobjid = s.specobjid \
              WHERE s.class = 'GALAXY' AND g.h_alpha_flux > 1.0",
    },
    Case {
        name: "hard_in_subquery_row",
        domain: Domain::Cordis,
        hardness: Hardness::Hard,
        mode: Mode::Row,
        sql: "SELECT acronym FROM projects \
              WHERE principal_investigator IN (SELECT unics_id FROM people)",
    },
    Case {
        name: "extra_grouped_join_topk_parallel",
        domain: Domain::Cordis,
        hardness: Hardness::ExtraHard,
        mode: Mode::Parallel,
        sql: "SELECT pm.member_name, SUM(pm.ec_contribution) FROM project_members AS pm \
              JOIN projects AS pr ON pm.project = pr.unics_id \
              WHERE pr.start_year > 2000 AND pm.country LIKE '%A%' \
              GROUP BY pm.member_name ORDER BY 2 DESC LIMIT 3",
    },
    Case {
        name: "extra_derived_table_columnar",
        domain: Domain::Sdss,
        hardness: Hardness::ExtraHard,
        mode: Mode::Columnar,
        sql: "SELECT d.c, COUNT(*) FROM \
              (SELECT class AS c, zwarning FROM specobj WHERE z > 0.1) AS d \
              JOIN photo_type AS pt ON d.zwarning = pt.value \
              GROUP BY d.c ORDER BY d.c",
    },
];

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens/plans_analyzed")
        .join(format!("{name}.txt"))
}

fn render_case(case: &Case) -> String {
    let db = fuzz_database(case.domain);
    let q = sb_sql::parse(case.sql).unwrap_or_else(|e| panic!("{}: parse: {e}", case.name));
    let plan = explain_analyze(&db, &q, case.mode.opts(), false)
        .unwrap_or_else(|e| panic!("{}: explain_analyze: {e}", case.name));
    format!(
        "-- domain: {}\n-- hardness: {}\n-- mode: {}\n-- {}\n{}",
        case.domain.name(),
        case.hardness.label(),
        case.mode.label(),
        case.sql,
        plan
    )
}

#[test]
fn analyzed_snapshots_match_goldens() {
    let update = std::env::var_os("SB_UPDATE_PLANS").is_some();
    let mut buckets = [false; 4];
    let mut modes = [false; 3];
    for case in CASES {
        assert_eq!(
            classify_sql(case.sql),
            case.hardness,
            "{}: hardness label drifted for: {}",
            case.name,
            case.sql
        );
        let i = Hardness::ALL
            .iter()
            .position(|h| *h == case.hardness)
            .unwrap();
        buckets[i] = true;
        modes[case.mode as usize] = true;

        let text = render_case(case);
        assert!(
            !text.contains("time=") && !text.contains("steals="),
            "{}: no-timings rendering leaked nondeterministic fields:\n{text}",
            case.name
        );
        // Rendering involves a full re-execution; the annotation bytes
        // must not depend on which run produced them.
        assert_eq!(
            text,
            render_case(case),
            "{}: analyzed rendering is not deterministic across runs",
            case.name
        );

        let path = golden_path(case.name);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &text).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: missing golden {} ({e}); regenerate with \
                 SB_UPDATE_PLANS=1 cargo test -q --test plan_snapshots_analyzed",
                case.name,
                path.display()
            )
        });
        assert_eq!(
            text,
            want,
            "{}: analyzed plan drifted from {}; if intentional, regenerate with \
             SB_UPDATE_PLANS=1 cargo test -q --test plan_snapshots_analyzed",
            case.name,
            path.display()
        );
    }
    assert!(
        buckets.iter().all(|b| *b),
        "case list no longer spans all four hardness buckets"
    );
    assert!(
        modes.iter().all(|m| *m),
        "case list no longer covers row, columnar and parallel execution"
    );
}

/// Timings mode adds wall-clock and steal fields on top of the same
/// counts — useful interactively, never pinned.
#[test]
fn timings_mode_adds_masked_fields() {
    let case = &CASES[1]; // columnar filter scan
    let db = fuzz_database(case.domain);
    let q = sb_sql::parse(case.sql).unwrap();
    let timed = explain_analyze(&db, &q, case.mode.opts(), true).unwrap();
    assert!(timed.contains("time="), "timings missing:\n{timed}");
}

/// The annotated tree must degrade to exactly the plain EXPLAIN text
/// when every annotation is stripped — same operators, same structure.
#[test]
fn analyzed_plan_superset_of_plain_explain() {
    for case in CASES {
        let db = fuzz_database(case.domain);
        let q = sb_sql::parse(case.sql).unwrap();
        let plain = sb_engine::explain(&db, &q, case.mode.opts()).unwrap();
        let analyzed = explain_analyze(&db, &q, case.mode.opts(), false).unwrap();
        for (pl, al) in plain.lines().zip(analyzed.lines()) {
            assert!(
                al.starts_with(pl),
                "{}: analyzed line is not an annotated form of the plain line:\
                 \n plain:    {pl}\n analyzed: {al}",
                case.name
            );
        }
        assert_eq!(
            plain.lines().count(),
            analyzed.lines().count(),
            "{}: analyzed tree has different operator count",
            case.name
        );
    }
}
