//! Randomized property tests over the core data structures and
//! invariants, spanning the parser, engine, templates and embeddings.
//!
//! Each property runs a few hundred seeded cases through a plain loop;
//! the seeds are fixed so failures reproduce deterministically.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sciencebenchmark::embed;
use sciencebenchmark::engine::{Database, Value};
use sciencebenchmark::schema::{Column, ColumnType, Schema, TableDef};

// ---------------------------------------------------------------------
// Random input generators.
// ---------------------------------------------------------------------

fn ident(rng: &mut StdRng) -> String {
    loop {
        let len = rng.gen_range(1..=9usize);
        let mut s = String::new();
        s.push((b'a' + rng.gen_range(0..26u8)) as char);
        for _ in 1..len {
            let c = match rng.gen_range(0..3u8) {
                0 => (b'a' + rng.gen_range(0..26u8)) as char,
                1 => (b'0' + rng.gen_range(0..10u8)) as char,
                _ => '_',
            };
            s.push(c);
        }
        if sb_sql::Keyword::from_word(&s).is_none() {
            return s;
        }
    }
}

fn literal_sql(rng: &mut StdRng) -> String {
    match rng.gen_range(0..3u8) {
        0 => rng.gen_range(-1_000_000..1_000_000i64).to_string(),
        1 => format!("{:.3}", rng.gen_range(-1000.0..1000.0)),
        _ => {
            let len = rng.gen_range(0..=12usize);
            let alphabet: Vec<char> = "abcdefghij XYZ".chars().collect();
            let s: String = (0..len).map(|_| *alphabet.choose(rng).unwrap()).collect();
            format!("'{s}'")
        }
    }
}

fn simple_query(rng: &mut StdRng) -> String {
    let table = ident(rng);
    let col1 = ident(rng);
    let col2 = ident(rng);
    let lit = literal_sql(rng);
    let op = *["=", "<", ">", "<=", ">=", "<>"].choose(rng).unwrap();
    let distinct = rng.gen_bool(0.5);
    let desc = rng.gen_bool(0.5);
    let mut q = format!(
        "SELECT {}{col1}, {col2} FROM {table} WHERE {col1} {op} {lit}",
        if distinct { "DISTINCT " } else { "" }
    );
    q.push_str(&format!(
        " ORDER BY {col2}{}",
        if desc { " DESC" } else { "" }
    ));
    if rng.gen_bool(0.5) {
        q.push_str(&format!(" LIMIT {}", rng.gen_range(0..100u64)));
    }
    q
}

fn random_rows(rng: &mut StdRng, max: usize) -> Vec<(i64, f64, bool)> {
    let n = rng.gen_range(0..max);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(-1_000_000..1_000_000i64),
                rng.gen_range(-100.0..100.0),
                rng.gen_bool(0.5),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------
// SQL front end: print → parse round-trip on generated queries.
// ---------------------------------------------------------------------

#[test]
fn parse_print_parse_is_identity() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for _ in 0..300 {
        let sql = simple_query(&mut rng);
        let q1 = sb_sql::parse(&sql).expect("generated query parses");
        let printed = q1.to_string();
        let q2 = sb_sql::parse(&printed).expect("printed query reparses");
        assert_eq!(q1, q2, "round-trip changed the AST for: {sql}");
        assert_eq!(printed, q2.to_string(), "printing is not a fixpoint: {sql}");
    }
}

/// The same invariant over the fuzzer's schema-aware generator, whose
/// output covers joins, grouping, set operations and subqueries far
/// beyond `simple_query` — the fast seeded cousin of the differential
/// campaign in `crates/fuzz/tests/differential.rs`.
#[test]
fn fuzzer_generated_queries_round_trip() {
    use sciencebenchmark::data::Domain;
    for (domain, seed) in [
        (Domain::Cordis, 11u64),
        (Domain::Sdss, 12),
        (Domain::OncoMx, 13),
    ] {
        let db = sb_fuzz::fuzz_database(domain);
        let mut gen = sb_fuzz::QueryGenerator::new(&db, seed);
        for _ in 0..300 {
            let q1 = gen.query();
            let printed = q1.to_string();
            let q2 = sb_sql::parse(&printed)
                .unwrap_or_else(|e| panic!("printed query reparses: {e}\n{printed}"));
            assert_eq!(q1, q2, "round-trip changed the AST for: {printed}");
            assert_eq!(
                printed,
                q2.to_string(),
                "printing is not a fixpoint: {printed}"
            );
        }
    }
}

#[test]
fn hardness_is_total_and_stable() {
    let mut rng = StdRng::seed_from_u64(0xB0B);
    for _ in 0..300 {
        let sql = simple_query(&mut rng);
        let q = sb_sql::parse(&sql).unwrap();
        let h1 = sciencebenchmark::metrics::classify(&q);
        let h2 = sciencebenchmark::metrics::classify(&q);
        assert_eq!(h1, h2);
    }
}

// ---------------------------------------------------------------------
// Engine invariants on randomized content.
// ---------------------------------------------------------------------

fn test_db(rows: &[(i64, f64, bool)]) -> Database {
    let schema = Schema::new("prop").with_table(TableDef::new(
        "t",
        vec![
            Column::pk("id", ColumnType::Int),
            Column::new("x", ColumnType::Float),
            Column::new("flag", ColumnType::Bool),
        ],
    ));
    let mut db = Database::new(schema);
    let table = db.table_mut("t").unwrap();
    for (id, x, flag) in rows {
        table.push_rows(vec![vec![
            Value::Int(*id),
            Value::Float(*x),
            Value::Bool(*flag),
        ]]);
    }
    db
}

#[test]
fn filter_never_grows_the_result() {
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..100 {
        let rows = random_rows(&mut rng, 40);
        let threshold = rng.gen_range(-100.0..100.0);
        let db = test_db(&rows);
        let all = db.run("SELECT id FROM t").unwrap();
        let filtered = db
            .run(&format!("SELECT id FROM t WHERE x > {threshold:.4}"))
            .unwrap();
        assert!(filtered.len() <= all.len());
    }
}

#[test]
fn limit_truncates_exactly() {
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..100 {
        let rows = random_rows(&mut rng, 40);
        let n = rng.gen_range(0..50u64);
        let db = test_db(&rows);
        let limited = db.run(&format!("SELECT id FROM t LIMIT {n}")).unwrap();
        assert_eq!(limited.len(), rows.len().min(n as usize));
    }
}

#[test]
fn count_matches_row_count() {
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..100 {
        let rows = random_rows(&mut rng, 40);
        let db = test_db(&rows);
        let rs = db.run("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(rows.len() as i64));
    }
}

#[test]
fn union_all_cardinality_adds() {
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..60 {
        let rows = random_rows(&mut rng, 30);
        let db = test_db(&rows);
        let u = db
            .run("SELECT id FROM t UNION ALL SELECT id FROM t")
            .unwrap();
        assert_eq!(u.len(), rows.len() * 2);
        // Plain UNION (set semantics) is bounded by the distinct count.
        let distinct = db.run("SELECT DISTINCT id FROM t").unwrap();
        let set_union = db.run("SELECT id FROM t UNION SELECT id FROM t").unwrap();
        assert_eq!(set_union.len(), distinct.len());
    }
}

#[test]
fn order_by_produces_sorted_output() {
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..100 {
        let rows = random_rows(&mut rng, 40);
        let db = test_db(&rows);
        let rs = db.run("SELECT x FROM t ORDER BY x").unwrap();
        for w in rs.rows.windows(2) {
            let a = w[0][0].as_f64().unwrap();
            let b = w[1][0].as_f64().unwrap();
            assert!(a <= b);
        }
    }
}

#[test]
fn execution_match_is_reflexive() {
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..60 {
        let rows = random_rows(&mut rng, 30);
        let db = test_db(&rows);
        let sql = "SELECT id, x FROM t WHERE flag = TRUE";
        assert!(sciencebenchmark::metrics::execution_match(&db, sql, sql));
    }
}

// ---------------------------------------------------------------------
// Embedding space invariants.
// ---------------------------------------------------------------------

fn random_words(rng: &mut StdRng, max_words: usize) -> String {
    let n = rng.gen_range(1..=max_words);
    (0..n)
        .map(|_| {
            let len = rng.gen_range(1..=8usize);
            (0..len)
                .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
                .collect::<String>()
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[test]
fn cosine_bounded_and_symmetric() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..200 {
        let a = random_words(&mut rng, 6);
        let b = random_words(&mut rng, 6);
        let ea = embed::embed(&a);
        let eb = embed::embed(&b);
        let s1 = ea.cosine(&eb);
        let s2 = eb.cosine(&ea);
        assert!((-1.0..=1.0).contains(&s1));
        assert!((s1 - s2).abs() < 1e-6);
    }
}

#[test]
fn self_similarity_is_max() {
    let mut rng = StdRng::seed_from_u64(8);
    for _ in 0..200 {
        let a = random_words(&mut rng, 6);
        let e = embed::embed(&a);
        assert!((e.cosine(&e) - 1.0).abs() < 1e-5, "text: {a}");
    }
}

#[test]
fn geometric_median_selection_returns_members() {
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..100 {
        let n = rng.gen_range(1..8usize);
        let texts: Vec<String> = (0..n).map(|_| random_words(&mut rng, 5)).collect();
        let k = rng.gen_range(1..4usize);
        let selected = embed::select_top_k(&texts, k);
        assert_eq!(selected.len(), k.min(texts.len()));
        for s in selected {
            assert!(texts.contains(s));
        }
    }
}

// ---------------------------------------------------------------------
// Template extraction / instantiation invariants.
// ---------------------------------------------------------------------

#[test]
fn generated_fills_always_execute() {
    use sciencebenchmark::data::{Domain, SizeClass};
    use sciencebenchmark::gen::Generator;
    let d = Domain::Sdss.build(SizeClass::Tiny);
    let sql = "SELECT s.specobjid FROM specobj AS s WHERE s.class = 'GALAXY'";
    let template = sb_semql::extract(&sb_sql::parse(sql).unwrap(), &d.db.schema).unwrap();
    for seed in 0..50u64 {
        let mut g = Generator::new(&d.db, &d.enhanced, seed);
        // Whatever the sampler produces must execute (not necessarily
        // return rows).
        if let Ok(q) = g.fill(&template) {
            assert!(d.db.run_query(&q).is_ok(), "{}", q);
        }
    }
}
