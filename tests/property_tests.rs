//! Property-based tests over the core data structures and invariants,
//! spanning the parser, engine, templates and embeddings.

use proptest::prelude::*;
use sciencebenchmark::embed;
use sciencebenchmark::engine::{Database, Value};
use sciencebenchmark::schema::{Column, ColumnType, Schema, TableDef};

// ---------------------------------------------------------------------
// SQL front end: print → parse round-trip on generated queries.
// ---------------------------------------------------------------------

fn ident_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("not a keyword", |s| {
        sb_sql::Keyword::from_word(s).is_none()
    })
}

fn literal_sql() -> impl Strategy<Value = String> {
    prop_oneof![
        any::<i32>().prop_map(|v| v.to_string()),
        (-1000.0f64..1000.0).prop_map(|v| format!("{v:.3}")),
        "[a-zA-Z ]{0,12}".prop_map(|s| format!("'{s}'")),
    ]
}

prop_compose! {
    fn simple_query()(
        table in ident_strategy(),
        col1 in ident_strategy(),
        col2 in ident_strategy(),
        lit in literal_sql(),
        op in prop_oneof![Just("="), Just("<"), Just(">"), Just("<="), Just(">="), Just("<>")],
        distinct in any::<bool>(),
        desc in any::<bool>(),
        limit in proptest::option::of(0u64..100),
    ) -> String {
        let mut q = format!(
            "SELECT {}{col1}, {col2} FROM {table} WHERE {col1} {op} {lit}",
            if distinct { "DISTINCT " } else { "" }
        );
        q.push_str(&format!(" ORDER BY {col2}{}", if desc { " DESC" } else { "" }));
        if let Some(n) = limit {
            q.push_str(&format!(" LIMIT {n}"));
        }
        q
    }
}

proptest! {
    #[test]
    fn parse_print_parse_is_identity(sql in simple_query()) {
        let q1 = sb_sql::parse(&sql).expect("generated query parses");
        let printed = q1.to_string();
        let q2 = sb_sql::parse(&printed).expect("printed query reparses");
        prop_assert_eq!(&q1, &q2);
        prop_assert_eq!(printed.clone(), q2.to_string());
    }

    #[test]
    fn hardness_is_total_and_stable(sql in simple_query()) {
        let q = sb_sql::parse(&sql).unwrap();
        let h1 = sciencebenchmark::metrics::classify(&q);
        let h2 = sciencebenchmark::metrics::classify(&q);
        prop_assert_eq!(h1, h2);
    }
}

// ---------------------------------------------------------------------
// Engine invariants on randomized content.
// ---------------------------------------------------------------------

fn test_db(rows: &[(i64, f64, bool)]) -> Database {
    let schema = Schema::new("prop").with_table(TableDef::new(
        "t",
        vec![
            Column::pk("id", ColumnType::Int),
            Column::new("x", ColumnType::Float),
            Column::new("flag", ColumnType::Bool),
        ],
    ));
    let mut db = Database::new(schema);
    let table = db.table_mut("t").unwrap();
    for (id, x, flag) in rows {
        table.push_rows(vec![vec![
            Value::Int(*id),
            Value::Float(*x),
            Value::Bool(*flag),
        ]]);
    }
    db
}

proptest! {
    #[test]
    fn filter_never_grows_the_result(rows in proptest::collection::vec((any::<i64>(), -100.0f64..100.0, any::<bool>()), 0..40), threshold in -100.0f64..100.0) {
        let db = test_db(&rows);
        let all = db.run("SELECT id FROM t").unwrap();
        let filtered = db.run(&format!("SELECT id FROM t WHERE x > {threshold:.4}")).unwrap();
        prop_assert!(filtered.len() <= all.len());
    }

    #[test]
    fn limit_truncates_exactly(rows in proptest::collection::vec((any::<i64>(), -100.0f64..100.0, any::<bool>()), 0..40), n in 0u64..50) {
        let db = test_db(&rows);
        let limited = db.run(&format!("SELECT id FROM t LIMIT {n}")).unwrap();
        prop_assert_eq!(limited.len(), rows.len().min(n as usize));
    }

    #[test]
    fn count_matches_row_count(rows in proptest::collection::vec((any::<i64>(), -100.0f64..100.0, any::<bool>()), 0..40)) {
        let db = test_db(&rows);
        let rs = db.run("SELECT COUNT(*) FROM t").unwrap();
        prop_assert_eq!(rs.rows[0][0].clone(), Value::Int(rows.len() as i64));
    }

    #[test]
    fn union_all_cardinality_adds(rows in proptest::collection::vec((any::<i64>(), -100.0f64..100.0, any::<bool>()), 0..30)) {
        let db = test_db(&rows);
        let u = db.run("SELECT id FROM t UNION ALL SELECT id FROM t").unwrap();
        prop_assert_eq!(u.len(), rows.len() * 2);
        // Plain UNION (set semantics) is bounded by the distinct count.
        let distinct = db.run("SELECT DISTINCT id FROM t").unwrap();
        let set_union = db.run("SELECT id FROM t UNION SELECT id FROM t").unwrap();
        prop_assert_eq!(set_union.len(), distinct.len());
    }

    #[test]
    fn order_by_produces_sorted_output(rows in proptest::collection::vec((any::<i64>(), -100.0f64..100.0, any::<bool>()), 0..40)) {
        let db = test_db(&rows);
        let rs = db.run("SELECT x FROM t ORDER BY x").unwrap();
        for w in rs.rows.windows(2) {
            let a = w[0][0].as_f64().unwrap();
            let b = w[1][0].as_f64().unwrap();
            prop_assert!(a <= b);
        }
    }

    #[test]
    fn execution_match_is_reflexive(rows in proptest::collection::vec((any::<i64>(), -100.0f64..100.0, any::<bool>()), 0..30)) {
        let db = test_db(&rows);
        let sql = "SELECT id, x FROM t WHERE flag = TRUE";
        prop_assert!(sciencebenchmark::metrics::execution_match(&db, sql, sql));
    }
}

// ---------------------------------------------------------------------
// Embedding space invariants.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn cosine_bounded_and_symmetric(a in "[a-z ]{0,40}", b in "[a-z ]{0,40}") {
        let ea = embed::embed(&a);
        let eb = embed::embed(&b);
        let s1 = ea.cosine(&eb);
        let s2 = eb.cosine(&ea);
        prop_assert!((-1.0..=1.0).contains(&s1));
        prop_assert!((s1 - s2).abs() < 1e-6);
    }

    #[test]
    fn self_similarity_is_max(a in "[a-z]{1,20}( [a-z]{1,20}){0,5}") {
        let e = embed::embed(&a);
        prop_assert!((e.cosine(&e) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn geometric_median_selection_returns_members(
        texts in proptest::collection::vec("[a-z ]{1,30}", 1..8),
        k in 1usize..4,
    ) {
        let selected = embed::select_top_k(&texts, k);
        prop_assert_eq!(selected.len(), k.min(texts.len()));
        for s in selected {
            prop_assert!(texts.contains(s));
        }
    }
}

// ---------------------------------------------------------------------
// Template extraction / instantiation invariants.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn generated_fills_always_execute(seed in 0u64..50) {
        use sciencebenchmark::data::{Domain, SizeClass};
        use sciencebenchmark::gen::Generator;
        let d = Domain::Sdss.build(SizeClass::Tiny);
        let sql = "SELECT s.specobjid FROM specobj AS s WHERE s.class = 'GALAXY'";
        let template = sb_semql::extract(&sb_sql::parse(sql).unwrap(), &d.db.schema).unwrap();
        let mut g = Generator::new(&d.db, &d.enhanced, seed);
        // Whatever the sampler produces must execute (not necessarily
        // return rows).
        if let Ok(q) = g.fill(&template) {
            prop_assert!(d.db.run_query(&q).is_ok(), "{}", q);
        }
    }
}
