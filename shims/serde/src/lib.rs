//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, this shim converts values to
//! and from a single in-crate JSON tree ([`json::Value`]). That is all
//! the workspace needs: `#[derive(Serialize, Deserialize)]` on
//! named-field structs plus `serde_json::{to_string_pretty, from_str}`.
//! The `derive` feature re-exports the macros from `serde_derive`, same
//! as upstream.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod json {
    //! The JSON data model shared with the `serde_json` shim.

    /// A JSON tree. Integers and floats are kept apart so integer values
    /// round-trip exactly.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Int(i64),
        Float(f64),
        Str(String),
        Array(Vec<Value>),
        /// Insertion-ordered, matching struct field declaration order.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// Object entries, if this is an object.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(entries) => Some(entries),
                _ => None,
            }
        }
    }

    /// Look up a required object field by name.
    pub fn field<'a>(entries: &'a [(String, Value)], name: &str) -> Result<&'a Value, String> {
        entries
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field `{name}`"))
    }
}

use json::Value;

/// Conversion into the JSON data model.
pub trait Serialize {
    /// Represent `self` as a JSON tree.
    fn to_json_value(&self) -> Value;
}

/// Conversion out of the JSON data model.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a JSON tree.
    fn from_json_value(v: &Value) -> Result<Self, String>;
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self)
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Int(i64::try_from(*self).expect("integer fits in i64 for JSON"))
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(t) => t.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(format!("expected number, got {other:?}")),
        }
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| format!("integer {i} out of range for {}", stringify!($t))),
                    other => Err(format!("expected integer, got {other:?}")),
                }
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        let items: Vec<T> = Vec::from_json_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| format!("expected array of length {N}, got {len}"))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

// Identity impls so callers can (de)serialize the JSON tree itself —
// e.g. `serde_json::from_str::<serde::json::Value>` for documents whose
// schema is inspected dynamically (the `bench_diff` gate reads both
// BENCH document shapes this way).
impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}
