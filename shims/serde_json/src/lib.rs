//! Offline stand-in for `serde_json`.
//!
//! A recursive-descent JSON parser and a pretty printer over the
//! [`serde::json::Value`] model. The pretty format matches upstream
//! `to_string_pretty`: 2-space indent and `"key": value` separators,
//! which integration tests assert on textually.

pub use serde::json::Value;

use std::fmt;

/// Parse or serialization failure.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize to human-readable JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s).map_err(Error)?;
    T::from_json_value(&value).map_err(Error)
}

// ---------------------------------------------------------------------
// Printing

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps a trailing `.0` on whole floats, matching
                // upstream output for values like `1.0`.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => write_seq(
            items.iter(),
            items.len(),
            indent,
            depth,
            out,
            '[',
            ']',
            |item, out| {
                write_value(item, indent, depth + 1, out);
            },
        ),
        Value::Object(entries) => write_seq(
            entries.iter(),
            entries.len(),
            indent,
            depth,
            out,
            '{',
            '}',
            |(k, v), out| {
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(v, indent, depth + 1, out);
            },
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I: Iterator>(
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    open: char,
    close: char,
    mut write_item: impl FnMut(I::Item, &mut String),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(item, out);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'n' => self.keyword("null", Value::Null),
            b't' => self.keyword("true", Value::Bool(true)),
            b'f' => self.keyword("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `]`, got `{}` at byte {}",
                        other as char, self.pos
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `}}`, got `{}` at byte {}",
                        other as char, self.pos
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos).ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject rather than corrupt.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid \\u escape {code:04x}"))?,
                            );
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 from the raw bytes.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or("truncated UTF-8 sequence")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(parse_value_complete("null").unwrap(), Value::Null);
        assert_eq!(parse_value_complete("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_value_complete("-42").unwrap(), Value::Int(-42));
        assert_eq!(parse_value_complete("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(
            parse_value_complete("\"a\\nb\"").unwrap(),
            Value::Str("a\nb".into())
        );
    }

    #[test]
    fn parse_nested() {
        let v = parse_value_complete(r#"{"a": [1, 2, {"b": "c"}], "d": null}"#).unwrap();
        match v {
            Value::Object(entries) => {
                assert_eq!(entries.len(), 2);
                assert_eq!(entries[0].0, "a");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn pretty_print_style() {
        let v = Value::Object(vec![
            ("domain".into(), Value::Str("cordis".into())),
            ("n".into(), Value::Int(3)),
            (
                "xs".into(),
                Value::Array(vec![Value::Int(1), Value::Int(2)]),
            ),
        ]);
        let mut out = String::new();
        write_value(&v, Some(2), 0, &mut out);
        assert!(out.contains("\"domain\": \"cordis\""));
        assert!(out.contains("\n  \"n\": 3"));
        assert!(out.contains("\n    1,"));
    }

    #[test]
    fn unicode_survives_round_trip() {
        let v = parse_value_complete("\"caf\\u00e9 – naïve\"").unwrap();
        assert_eq!(v, Value::Str("café – naïve".into()));
        let mut out = String::new();
        write_value(&v, None, 0, &mut out);
        assert_eq!(parse_value_complete(&out).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_value_complete("1 2").is_err());
        assert!(parse_value_complete("{\"a\": }").is_err());
    }
}
