//! Offline stand-in for `rayon`.
//!
//! Implements the small data-parallel surface the workspace uses —
//! `par_iter()` / `into_par_iter()` with `map(..).collect::<Vec<_>>()`,
//! `for_each`, and `join` — on scoped `std::thread`s. Two properties are
//! load-bearing and guaranteed here:
//!
//! - **Order preservation**: `collect` returns results in input order,
//!   regardless of thread count or scheduling. Combined with per-item
//!   seeded RNGs this is what makes the parallel pipeline byte-identical
//!   for 1 or N threads.
//! - **`RAYON_NUM_THREADS`**: like upstream rayon, the env var caps the
//!   worker count (`1` forces fully sequential in-thread execution).
//!
//! Work is split into one contiguous chunk per worker, so per-item
//! closure panics propagate and nothing is reordered.

use std::num::NonZeroUsize;

/// Number of worker threads: `RAYON_NUM_THREADS` when set and valid,
/// otherwise the machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run two closures, potentially in parallel; returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon-shim: joined closure panicked"))
    })
}

/// Order-preserving parallel map over owned items: the workhorse behind
/// every adapter in this shim.
fn parallel_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Contiguous chunks, one per worker; concatenating chunk outputs in
    // worker order restores the input order exactly.
    let n = items.len();
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    let outputs: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon-shim: worker panicked"))
            .collect()
    });
    outputs.into_iter().flatten().collect()
}

/// A parallel iterator: a fully-materialized item list plus a composed
/// mapping. Terminal operations run [`parallel_map_vec`].
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A mapped parallel iterator.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Apply `f` to every item in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        F: Fn(T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every item for its side effects.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        parallel_map_vec(self.items, f);
    }
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Execute the map and collect results in input order.
    pub fn collect<C: FromParallel<R>>(self) -> C {
        C::from_ordered_vec(parallel_map_vec(self.items, self.f))
    }
}

/// Collection targets for [`ParMap::collect`].
pub trait FromParallel<R> {
    /// Build the collection from results already in input order.
    fn from_ordered_vec(v: Vec<R>) -> Self;
}

impl<R> FromParallel<R> for Vec<R> {
    fn from_ordered_vec(v: Vec<R>) -> Self {
        v
    }
}

/// `par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;

    /// A parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `into_par_iter()` on owned collections and ranges.
pub trait IntoParallelIterator {
    /// Owned item type.
    type Item: Send;

    /// A parallel iterator over owned items.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_owned_and_range() {
        let out: Vec<String> = vec!["a", "b", "c"]
            .into_par_iter()
            .map(|s| s.to_uppercase())
            .collect();
        assert_eq!(out, vec!["A", "B", "C"]);
        let sq: Vec<usize> = (0..17usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(sq.len(), 17);
        assert_eq!(sq[16], 256);
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<i32> = Vec::new();
        let out: Vec<i32> = v.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        let v: Vec<usize> = (1..=100).collect();
        v.par_iter().for_each(|x| {
            sum.fetch_add(*x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }
}
