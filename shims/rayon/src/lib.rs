//! Offline stand-in for `rayon`.
//!
//! Implements the small data-parallel surface the workspace uses —
//! `par_iter()` / `into_par_iter()` with `map(..).collect::<Vec<_>>()`,
//! `for_each`, and `join` — on scoped `std::thread`s. Two properties are
//! load-bearing and guaranteed here:
//!
//! - **Order preservation**: `collect` returns results in input order,
//!   regardless of thread count or scheduling. Combined with per-item
//!   seeded RNGs this is what makes the parallel pipeline byte-identical
//!   for 1 or N threads.
//! - **`RAYON_NUM_THREADS`**: like upstream rayon, the env var caps the
//!   worker count (`1` forces fully sequential in-thread execution).
//!
//! Work is split into one contiguous chunk per worker, so per-item
//! closure panics propagate and nothing is reordered.

use std::num::NonZeroUsize;

/// Number of worker threads: `RAYON_NUM_THREADS` when set and valid,
/// otherwise the machine's available parallelism.
///
/// The env var is re-read on every call (tests and long-lived services
/// flip it at runtime), but `available_parallelism` is resolved once:
/// on Linux it walks cgroup quota files, which is microseconds of
/// filesystem traffic — far too slow for a per-query code path.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    static MACHINE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *MACHINE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

static WORKER_EXIT: std::sync::OnceLock<fn()> = std::sync::OnceLock::new();

/// Install a function every shim worker thread runs after its last work
/// item, still inside the scope that spawned it. First install wins;
/// later calls are ignored.
///
/// This exists because `std::thread::scope` may unblock before the
/// worker's TLS destructors have run, so thread-local state flushed
/// from a `Drop` impl is not guaranteed visible to the caller when the
/// parallel call returns. `sb-obs` installs its `flush` here so worker
/// metric deltas are always merged before the dispatching thread can
/// snapshot them.
pub fn set_worker_exit_hook(hook: fn()) {
    let _ = WORKER_EXIT.set(hook);
}

#[inline]
fn worker_exit() {
    if let Some(hook) = WORKER_EXIT.get() {
        hook();
    }
}

/// Run two closures, potentially in parallel; returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(move || {
            let rb = b();
            worker_exit();
            rb
        });
        let ra = a();
        (ra, hb.join().expect("rayon-shim: joined closure panicked"))
    })
}

/// Order-preserving parallel map over owned items: the workhorse behind
/// every adapter in this shim.
fn parallel_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Contiguous chunks, one per worker; concatenating chunk outputs in
    // worker order restores the input order exactly.
    let n = items.len();
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    let outputs: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| {
                s.spawn(move || {
                    let out = c.into_iter().map(f).collect::<Vec<R>>();
                    worker_exit();
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon-shim: worker panicked"))
            .collect()
    });
    outputs.into_iter().flatten().collect()
}

/// What one [`morsel_map`] dispatch did, for observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MorselStats {
    /// Morsels dispatched (a pure function of `count` and the caller's
    /// morsel size — never of the worker count or scheduling).
    pub morsels: usize,
    /// Morsels executed by a worker other than their home worker under
    /// the static assignment `home = morsel * workers / morsels`.
    /// Scheduling-dependent by nature; only the *presence* of work
    /// stealing is meaningful, not the exact count.
    pub steals: usize,
    /// Workers that participated in the dispatch.
    pub workers: usize,
}

/// Morsel-driven parallel map: split `0..morsels` across `workers`
/// scoped threads with **dynamic claiming** (each worker grabs the next
/// unclaimed morsel index from a shared atomic), run `f(morsel_index)`
/// per morsel, and return the results **in morsel order** regardless of
/// which worker ran what.
///
/// Dynamic claiming is what makes skewed morsels load-balance: a worker
/// stuck on an expensive morsel simply claims fewer of them. Order
/// preservation is unconditional — each result lands in slot
/// `morsel_index` — so callers that concatenate per-morsel outputs in
/// index order observe a schedule-independent result.
///
/// `workers <= 1` or `morsels <= 1` degenerates to an in-thread loop
/// with zero synchronization.
pub fn morsel_map<R, F>(morsels: usize, workers: usize, f: F) -> (Vec<R>, MorselStats)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    if morsels == 0 {
        return (
            Vec::new(),
            MorselStats {
                morsels: 0,
                steals: 0,
                workers: 0,
            },
        );
    }
    let workers = workers.max(1).min(morsels);
    if workers <= 1 || morsels <= 1 {
        let out: Vec<R> = (0..morsels).map(f).collect();
        return (
            out,
            MorselStats {
                morsels,
                steals: 0,
                workers: 1,
            },
        );
    }
    let next = AtomicUsize::new(0);
    let steals = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    let steals = &steals;
    let mut parts: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    let mut mine: Vec<(usize, R)> = Vec::new();
                    loop {
                        let m = next.fetch_add(1, Ordering::Relaxed);
                        if m >= morsels {
                            break;
                        }
                        // Home worker under the static contiguous split;
                        // running someone else's morsel counts as a steal.
                        let home = m * workers / morsels;
                        if home != w {
                            steals.fetch_add(1, Ordering::Relaxed);
                        }
                        mine.push((m, f(m)));
                    }
                    worker_exit();
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon-shim: morsel worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..morsels).map(|_| None).collect();
    for part in parts.drain(..) {
        for (m, r) in part {
            slots[m] = Some(r);
        }
    }
    let out: Vec<R> = slots
        .into_iter()
        .map(|s| s.expect("rayon-shim: morsel never ran"))
        .collect();
    let stats = MorselStats {
        morsels,
        steals: steals.load(Ordering::Relaxed),
        workers,
    };
    (out, stats)
}

/// A parallel iterator: a fully-materialized item list plus a composed
/// mapping. Terminal operations run [`parallel_map_vec`].
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A mapped parallel iterator.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Apply `f` to every item in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        F: Fn(T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every item for its side effects.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        parallel_map_vec(self.items, f);
    }
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Execute the map and collect results in input order.
    pub fn collect<C: FromParallel<R>>(self) -> C {
        C::from_ordered_vec(parallel_map_vec(self.items, self.f))
    }
}

/// Collection targets for [`ParMap::collect`].
pub trait FromParallel<R> {
    /// Build the collection from results already in input order.
    fn from_ordered_vec(v: Vec<R>) -> Self;
}

impl<R> FromParallel<R> for Vec<R> {
    fn from_ordered_vec(v: Vec<R>) -> Self {
        v
    }
}

/// `par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;

    /// A parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `into_par_iter()` on owned collections and ranges.
pub trait IntoParallelIterator {
    /// Owned item type.
    type Item: Send;

    /// A parallel iterator over owned items.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_owned_and_range() {
        let out: Vec<String> = vec!["a", "b", "c"]
            .into_par_iter()
            .map(|s| s.to_uppercase())
            .collect();
        assert_eq!(out, vec!["A", "B", "C"]);
        let sq: Vec<usize> = (0..17usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(sq.len(), 17);
        assert_eq!(sq[16], 256);
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<i32> = Vec::new();
        let out: Vec<i32> = v.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn morsel_map_is_order_preserving_at_any_worker_count() {
        for workers in [1, 2, 3, 8, 64] {
            let (out, stats) = morsel_map(37, workers, |m| m * 10);
            assert_eq!(out, (0..37).map(|m| m * 10).collect::<Vec<_>>());
            assert_eq!(stats.morsels, 37);
            assert_eq!(stats.workers, workers.clamp(1, 37));
        }
        let (empty, stats) = morsel_map(0, 8, |m| m);
        assert!(empty.is_empty());
        assert_eq!(stats.morsels, 0);
    }

    #[test]
    fn worker_exit_hook_has_run_when_the_dispatch_returns() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static EXITS: AtomicUsize = AtomicUsize::new(0);
        set_worker_exit_hook(|| {
            EXITS.fetch_add(1, Ordering::SeqCst);
        });
        // morsel_map returning implies the workers' hooks already ran:
        // no sleep, no waiting on TLS teardown. Other tests in this
        // binary spawn workers concurrently, so assert on the delta,
        // not an absolute count.
        let before = EXITS.load(Ordering::SeqCst);
        let (out, stats) = morsel_map(8, 3, |m| m);
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        assert!(EXITS.load(Ordering::SeqCst) - before >= stats.workers);
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        let v: Vec<usize> = (1..=100).collect();
        v.par_iter().for_each(|x| {
            sum.fetch_add(*x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }
}
