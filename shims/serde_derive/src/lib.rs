//! Offline stand-in for `serde_derive`.
//!
//! Supports exactly what the workspace uses: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` on non-generic structs with named fields.
//! Implemented on the raw `proc_macro` API (no `syn`/`quote` in this
//! offline environment): the struct name and field identifiers are
//! scraped from the token stream and the impl is emitted as a string.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct StructShape {
    name: String,
    fields: Vec<String>,
}

/// Extract the struct name and its named fields from a derive input.
/// Panics (a compile error at the derive site) on enums, tuple structs
/// or generics — none of which this shim supports.
fn parse_struct(input: TokenStream) -> StructShape {
    let mut iter = input.into_iter().peekable();
    let mut name = None;

    // Walk to `struct <Name>`, skipping attributes and visibility.
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: consume the following [...] group.
                iter.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("serde shim derive: expected struct name, got {other:?}"),
                }
                break;
            }
            TokenTree::Ident(_) => {} // visibility etc.
            other => panic!("serde shim derive: unsupported item shape near {other:?}"),
        }
    }
    let name = name.expect("serde shim derive: no `struct` keyword found");

    // The next brace group holds the named fields. Anything else (tuple
    // struct parens, generics) is unsupported.
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde shim derive: generic structs are not supported")
            }
            Some(_) => continue,
            None => panic!("serde shim derive: struct `{name}` has no braced field list"),
        }
    };

    // Fields: skip attributes/visibility, take the ident before `:`,
    // then skip the type up to the next top-level comma (tracking angle
    // brackets so `Map<K, V>`-style types don't split early).
    let mut fields = Vec::new();
    let mut toks = body.stream().into_iter().peekable();
    while let Some(tt) = toks.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                toks.next();
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            TokenTree::Ident(id) => {
                match toks.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => {
                        panic!("serde shim derive: expected `:` after field `{id}`, got {other:?}")
                    }
                }
                fields.push(id.to_string());
                let mut angle_depth = 0i32;
                while let Some(t) = toks.peek() {
                    match t {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                            toks.next();
                            break;
                        }
                        _ => {}
                    }
                    toks.next();
                }
            }
            other => panic!("serde shim derive: unexpected token in field list: {other:?}"),
        }
    }

    StructShape { name, fields }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input);
    let entries: String = shape
        .fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_json_value(&self.{f})),"))
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> ::serde::json::Value {{\n\
                 ::serde::json::Value::Object(vec![{entries}])\n\
             }}\n\
         }}",
        name = shape.name
    )
    .parse()
    .expect("serde shim derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input);
    let inits: String = shape
        .fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_json_value(\
                     ::serde::json::field(entries, \"{f}\")?)?,"
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_json_value(v: &::serde::json::Value) -> Result<Self, String> {{\n\
                 let entries = v.as_object().ok_or_else(|| \
                     format!(\"expected object for {name}, got {{v:?}}\"))?;\n\
                 Ok({name} {{ {inits} }})\n\
             }}\n\
         }}",
        name = shape.name
    )
    .parse()
    .expect("serde shim derive: generated Deserialize impl parses")
}
