//! Offline stand-in for `criterion`.
//!
//! Implements the harness surface the workspace's benches use:
//! `Criterion`, `benchmark_group` / `sample_size` / `bench_function` /
//! `finish`, `Bencher::{iter, iter_batched}`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Behavior mirrors upstream where it matters operationally:
//!
//! - Under `cargo test` (no `--bench` argument) every benchmark routine
//!   runs exactly once as a smoke test, so `cargo test -q` stays fast.
//! - Under `cargo bench`, each benchmark is calibrated to a minimum
//!   sample duration, measured over several samples, and the median
//!   ns/iter is reported on stdout.
//! - If `CRITERION_JSON` names a file, all results are also written
//!   there as a JSON array of `{group, name, ns_per_iter, iters_per_sample,
//!   samples}` records — this is how `BENCH_*.json` baselines are made.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; measurement here is identical for
/// all variants (setup is always excluded from timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Record {
    pub group: String,
    pub name: String,
    pub ns_per_iter: f64,
    pub iters_per_sample: u64,
    pub samples: usize,
    /// Auxiliary named values attached via [`BenchmarkGroup::metric`]
    /// (cache hit rates, item counts, ...). Emitted as a `"metrics"`
    /// object in the JSON record only when non-empty, so records
    /// without metrics keep their original shape.
    pub metrics: Vec<(String, f64)>,
}

/// Runs one benchmark routine; handed to the user's closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` back to back `iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// True when invoked by `cargo bench` (which passes `--bench`); false
/// under `cargo test`, where routines run once as smoke tests.
fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

fn run_one(
    group: &str,
    name: &str,
    samples: usize,
    f: &mut dyn FnMut(&mut Bencher),
) -> Option<Record> {
    if !bench_mode() {
        // Smoke test: execute once, record nothing.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        return None;
    }

    // Warm up once before calibrating, as upstream criterion does: the
    // first run pays one-time lazy costs (allocator growth, caches,
    // columnar images) that would otherwise inflate the first
    // calibration sample and lock iterations at 1 per sample.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);

    // Calibrate: double iterations until one sample takes >= 5 ms.
    let target = Duration::from_millis(5);
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= target || iters >= 1 << 24 {
            break;
        }
        iters *= 2;
    }

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    println!("{group}/{name}: {median:.1} ns/iter ({iters} iters x {samples} samples)");
    Some(Record {
        group: group.to_string(),
        name: name.to_string(),
        ns_per_iter: median,
        iters_per_sample: iters,
        samples,
        metrics: Vec::new(),
    })
}

/// The harness entry point.
pub struct Criterion {
    records: Rc<RefCell<Vec<Record>>>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            records: Rc::new(RefCell::new(Vec::new())),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; CLI args beyond `--bench`
    /// detection are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            records: &self.records,
            name: name.into(),
            samples: 7,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        if let Some(r) = run_one("", name, 7, &mut f) {
            self.records.borrow_mut().push(r);
        }
        self
    }

    /// Print the report and, when `CRITERION_JSON` is set, write all
    /// records to that path as JSON.
    pub fn final_summary(&self) {
        let records = self.records.borrow();
        if records.is_empty() {
            return;
        }
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            let mut out = String::from("[\n");
            for (i, r) in records.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&format!(
                    "  {{\"group\": \"{}\", \"name\": \"{}\", \"ns_per_iter\": {:.1}, \
                     \"queries_per_sec\": {:.1}, \"iters_per_sample\": {}, \"samples\": {}",
                    r.group,
                    r.name,
                    r.ns_per_iter,
                    1e9 / r.ns_per_iter.max(f64::MIN_POSITIVE),
                    r.iters_per_sample,
                    r.samples
                ));
                if !r.metrics.is_empty() {
                    out.push_str(", \"metrics\": {");
                    for (j, (k, v)) in r.metrics.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&format!("\"{k}\": {v}"));
                    }
                    out.push('}');
                }
                out.push('}');
            }
            out.push_str("\n]\n");
            if let Err(e) = std::fs::write(&path, out) {
                eprintln!("criterion shim: failed to write {path}: {e}");
            } else {
                println!("criterion shim: wrote {} records to {path}", records.len());
            }
        }
    }
}

/// A group of related benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    records: &'a Rc<RefCell<Vec<Record>>>,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(3, 25);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        if let Some(r) = run_one(&self.name, name, self.samples, &mut f) {
            self.records.borrow_mut().push(r);
        }
        self
    }

    /// Attach a named auxiliary value to the most recent benchmark in
    /// this group (no-op in smoke mode, where nothing is recorded).
    /// Upstream criterion has no such API; the shim uses it to record
    /// workload facts — cache hit/miss counts, items processed — next to
    /// the timing they explain.
    pub fn metric(&mut self, name: &str, value: f64) -> &mut Self {
        let mut records = self.records.borrow_mut();
        if let Some(r) = records.last_mut().filter(|r| r.group == self.name) {
            r.metrics.push((name.to_string(), value));
        }
        self
    }

    /// End the group (reporting happens in `final_summary`).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
            c.final_summary();
        }
    };
}

/// Produce `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_routine_once() {
        // Unit tests never pass --bench, so run_one smoke-executes.
        let mut count = 0u32;
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_function("counts", |b| b.iter(|| count += 1));
        g.finish();
        assert_eq!(count, 1);
        assert!(c.records.borrow().is_empty());
    }

    #[test]
    fn metric_attaches_to_last_record_only_when_one_exists() {
        // Smoke mode records nothing, so metric() must be a no-op.
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_function("noop", |b| b.iter(|| 1));
        g.metric("hits", 3.0);
        g.finish();
        assert!(c.records.borrow().is_empty());

        // With a record present, the metric lands on it.
        c.records.borrow_mut().push(Record {
            group: "g".to_string(),
            name: "n".to_string(),
            ns_per_iter: 1.0,
            iters_per_sample: 1,
            samples: 1,
            metrics: Vec::new(),
        });
        let mut g = c.benchmark_group("g");
        g.metric("hits", 3.0);
        g.finish();
        assert_eq!(
            c.records.borrow()[0].metrics,
            vec![("hits".to_string(), 3.0)]
        );
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher {
            iters: 3,
            elapsed: Duration::ZERO,
        };
        let mut setups = 0;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 16]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 3);
    }
}
