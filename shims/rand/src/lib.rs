//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this shim provides
//! the exact API surface the workspace uses: [`rngs::StdRng`] (backed by
//! xoshiro256** seeded via SplitMix64), the [`Rng`] / [`SeedableRng`]
//! traits with `gen_range` / `gen_bool` / `gen`, [`seq::SliceRandom`]
//! (`choose` / `shuffle`), and [`distributions::WeightedIndex`].
//!
//! Numeric streams differ from upstream `rand`, but every generator in
//! the workspace only relies on determinism-given-seed, which this shim
//! guarantees: the same seed always yields the same sequence, on every
//! platform.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform u64 source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A float uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits → [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait StandardSample {
    /// Draw one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types [`Rng::gen_range`] can sample uniformly. The single blanket
/// `SampleRange` impl below is what lets integer-literal ranges infer
/// their type from surrounding arithmetic, as with upstream `rand`.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform value in `[low, high)` or `[low, high]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i128 - low as i128) as u128 + inclusive as u128;
                assert!(span > 0, "gen_range: empty range");
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(
            low < high || (_inclusive && low == high),
            "gen_range: empty range"
        );
        low + (high - low) * rng.next_f64()
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(rng, lo, hi, true)
    }
}

/// The user-facing sampling methods; blanket-implemented for every
/// [`RngCore`], mirroring upstream `rand`.
pub trait Rng: RngCore {
    /// Uniform value in a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        // p == 1.0 must always hit; next_f64 < 1.0 guarantees it.
        self.next_f64() < p
    }

    /// A value from the standard distribution (`[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** with SplitMix64 seeding.
    /// Deterministic across platforms for a given seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden xoshiro state; SplitMix64
            // cannot produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Random selection / permutation over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly chosen element, or `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() as usize) % self.len();
                Some(&self[i])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() as usize) % (i + 1);
                self.swap(i, j);
            }
        }
    }
}

pub mod distributions {
    use super::RngCore;
    use std::fmt;

    /// A distribution sampled with an external RNG.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error building a [`WeightedIndex`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct WeightedError(pub &'static str);

    impl fmt::Display for WeightedError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "weighted index: {}", self.0)
        }
    }

    impl std::error::Error for WeightedError {}

    /// Index sampling proportional to `f64` weights (CDF inversion).
    #[derive(Debug, Clone)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
        total: f64,
    }

    impl WeightedIndex {
        /// Build from an iterator of non-negative weights, at least one of
        /// which must be positive.
        pub fn new<I>(weights: I) -> Result<WeightedIndex, WeightedError>
        where
            I: IntoIterator<Item = f64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError("weights must be finite and non-negative"));
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() || total <= 0.0 {
                return Err(WeightedError("total weight must be positive"));
            }
            Ok(WeightedIndex { cumulative, total })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let target = rng.next_f64() * self.total;
            match self
                .cumulative
                .binary_search_by(|c| c.partial_cmp(&target).expect("finite"))
            {
                Ok(i) => (i + 1).min(self.cumulative.len() - 1),
                Err(i) => i.min(self.cumulative.len() - 1),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<i64> = (0..16).map(|_| a.gen_range(0..1_000_000i64)).collect();
        let vc: Vec<i64> = (0..16).map(|_| c.gen_range(0..1_000_000i64)).collect();
        assert_ne!(va, vc, "different seeds diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(5..=5);
            assert_eq!(w, 5);
            let f = r.gen_range(-2.0..3.5);
            assert!((-2.0..3.5).contains(&f));
            let fi: f64 = r.gen_range(0.5..=1.0);
            assert!((0.5..=1.0).contains(&fi));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(r.gen_bool(1.0));
            assert!(!r.gen_bool(0.0));
        }
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<i32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = StdRng::seed_from_u64(4);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*items.choose(&mut r).unwrap() as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = StdRng::seed_from_u64(5);
        let dist = WeightedIndex::new([8.0, 1.0, 1.0]).unwrap();
        let mut counts = [0usize; 3];
        for _ in 0..5_000 {
            counts[dist.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[1] * 3, "{counts:?}");
        assert!(counts[1] > 0 && counts[2] > 0, "{counts:?}");
        assert!(WeightedIndex::new([]).is_err());
        assert!(WeightedIndex::new([0.0]).is_err());
        assert!(WeightedIndex::new([-1.0, 2.0]).is_err());
    }

    #[test]
    fn gen_standard_f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(6);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
