//! Evaluate the three NL-to-SQL systems on the OncoMX cancer-research
//! domain: zero-shot from the Spider-like corpus versus trained with the
//! domain's seed + synthetic data (a single-domain slice of Table 5).
//!
//! ```sh
//! cargo run --release --example evaluate_nl2sql
//! ```

use sciencebenchmark::core::experiments::{build_domain_bundle, evaluate, fresh_systems};
use sciencebenchmark::core::{ExperimentConfig, SpiderPairs, SpiderSetConfig};
use sciencebenchmark::data::Domain;
use sciencebenchmark::metrics::GoldCache;
use sciencebenchmark::nl2sql::{DbCatalog, Pair};

fn main() {
    let cfg = ExperimentConfig::quick();
    println!("building the Spider-like corpus ...");
    let spider = SpiderPairs::build(&SpiderSetConfig {
        train_total: 480,
        dev_total: 60,
        databases: 4,
        seed: 11,
    });
    println!("building the OncoMX bundle (seed/dev/synth) ...");
    let bundle = build_domain_bundle(Domain::OncoMx, &cfg);
    println!(
        "  seed {} / dev {} / synth {} pairs\n",
        bundle.dataset.seed.len(),
        bundle.dataset.dev.len(),
        bundle.dataset.synth.len()
    );

    let to_pairs = |ps: &[sciencebenchmark::core::NlSqlPair]| -> Vec<Pair> {
        ps.iter()
            .map(|p| Pair::new(p.question.clone(), p.sql.clone(), p.db.clone()))
            .collect()
    };
    let spider_train = to_pairs(&spider.train);
    let mut domain_train = spider_train.clone();
    domain_train.extend(to_pairs(&bundle.dataset.seed));
    domain_train.extend(to_pairs(&bundle.dataset.synth));

    let mut dbs: Vec<&sciencebenchmark::engine::Database> =
        spider.corpus.databases.iter().map(|d| &d.db).collect();
    dbs.push(&bundle.data.db);
    let catalog = DbCatalog::new(dbs);

    println!("{:<24} {:>12} {:>16}", "system", "zero-shot", "seed+synth");
    let gold_cache = GoldCache::new();
    for make in 0..3 {
        // Train two fresh instances of the same system under the two
        // regimes.
        let mut zero = fresh_systems().remove(make);
        zero.train(&spider_train, &catalog);
        let mut tuned = fresh_systems().remove(make);
        tuned.train(&domain_train, &catalog);
        let lookup = |name: &str| {
            if name.eq_ignore_ascii_case("oncomx") {
                Some(&bundle.data.db)
            } else {
                None
            }
        };
        let acc_zero = evaluate(zero.as_ref(), &bundle.dataset.dev, &gold_cache, lookup);
        let acc_tuned = evaluate(tuned.as_ref(), &bundle.dataset.dev, &gold_cache, lookup);
        println!("{:<24} {:>12.2} {:>16.2}", zero.name(), acc_zero, acc_tuned);
    }
    println!(
        "\nThe paper's OncoMX row: zero-shot 0.20–0.27 → seed+synth 0.46–0.57; \
         what must reproduce is the jump, not the absolute value."
    );
}
