//! A tour of the relational engine substrate: build the CORDIS research-
//! policy database and exercise joins, aggregation, subqueries, set
//! operations and the execution-accuracy comparison.
//!
//! ```sh
//! cargo run --release --example sql_engine_tour
//! ```

use sciencebenchmark::data::{Domain, SizeClass};
use sciencebenchmark::metrics::execution_match;

fn main() {
    let cordis = Domain::Cordis.build(SizeClass::Small);
    let db = &cordis.db;
    println!(
        "CORDIS: {} tables / {} columns / {} rows\n",
        db.schema.tables.len(),
        db.schema.column_count(),
        db.total_rows()
    );

    let showcase = [
        (
            "grouped aggregation",
            "SELECT p.framework_program, COUNT(*), AVG(p.total_cost) FROM projects AS p \
             GROUP BY p.framework_program ORDER BY COUNT(*) DESC",
        ),
        (
            "multi-join",
            "SELECT i.institution_name, COUNT(*) FROM institutions AS i \
             JOIN project_members AS m ON m.institution_id = i.unics_id \
             WHERE m.member_role = 'coordinator' \
             GROUP BY i.institution_name ORDER BY COUNT(*) DESC LIMIT 5",
        ),
        (
            "scalar subquery",
            "SELECT COUNT(*) FROM projects AS p \
             WHERE p.ec_max_contribution > (SELECT AVG(p2.ec_max_contribution) FROM projects AS p2)",
        ),
        (
            "set operation",
            "SELECT p.framework_program FROM projects AS p WHERE p.start_year = 2020 \
             INTERSECT \
             SELECT p.framework_program FROM projects AS p WHERE p.start_year = 2010",
        ),
        (
            "math operators",
            "SELECT p.acronym, p.total_cost - p.ec_max_contribution FROM projects AS p \
             WHERE p.total_cost - p.ec_max_contribution > 1000000.0 LIMIT 5",
        ),
    ];
    for (label, sql) in showcase {
        let rs = db.run(sql).expect("showcase query executes");
        println!("[{label}] {} rows", rs.len());
        for row in rs.rows.iter().take(3) {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            println!("    {}", cells.join(" | "));
        }
        println!();
    }

    // Execution accuracy treats semantically equivalent queries as equal.
    let gold = "SELECT p.acronym FROM projects AS p WHERE p.framework_program = 'H2020' AND p.start_year = 2020";
    let same = "SELECT p2.acronym FROM projects AS p2 WHERE p2.start_year = 2020 AND p2.framework_program = 'H2020'";
    let different = "SELECT p.acronym FROM projects AS p WHERE p.framework_program = 'FP7'";
    println!(
        "execution match (reordered conjuncts): {}",
        execution_match(db, gold, same)
    );
    println!(
        "execution match (different filter)   : {}",
        execution_match(db, gold, different)
    );
}
