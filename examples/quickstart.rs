//! Quickstart: build a scientific database, run SQL on it, and generate a
//! small synthetic training set with the four-phase pipeline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sciencebenchmark::core::{Pipeline, PipelineConfig};
use sciencebenchmark::data::{Domain, SizeClass};

fn main() {
    // 1. Build the SDSS astrophysics database (synthetic content, real
    //    schema: 6 tables / 61 columns).
    let domain = Domain::Sdss.build(SizeClass::Tiny);
    println!(
        "Built `{}`: {} tables, {} columns, {} rows",
        domain.db.schema.name,
        domain.db.schema.tables.len(),
        domain.db.schema.column_count(),
        domain.db.total_rows()
    );

    // 2. Run the paper's Q1 running example on it.
    let q1 = "SELECT s.specobjid FROM specobj AS s WHERE s.subclass = 'STARBURST'";
    let result = domain.db.run(q1).expect("Q1 executes");
    println!("\nQ1 `{q1}`\n  → {} starburst objects", result.len());

    // 3. The enhanced schema spells out the cryptic column names.
    println!(
        "\nEnhanced schema: specobj.z = \"{}\", photoobj.ra = \"{}\"",
        domain.enhanced.readable_column("specobj", "z"),
        domain.enhanced.readable_column("photoobj", "ra"),
    );

    // 4. Run the automatic training-data generation pipeline (Figure 1)
    //    seeded with the domain's expert patterns.
    let seeds = domain.seed_patterns.clone();
    let mut pipeline = Pipeline::new(
        &domain,
        PipelineConfig {
            target_pairs: 20,
            ..Default::default()
        },
    );
    let report = pipeline.run(&seeds);
    println!(
        "\nPipeline: {} templates → {} SQL queries → {} NL/SQL pairs",
        report.templates,
        report.sql_queries,
        report.pairs.len()
    );
    for pair in report.pairs.iter().take(5) {
        println!("  “{}”\n    ↔ {}", pair.question, pair.sql);
    }
}
