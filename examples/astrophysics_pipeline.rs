//! Astrophysics deep-dive: walk the four pipeline phases by hand on the
//! SDSS database — extract a template from the paper's Q3 (the math-
//! operator query), generate variants under the enhanced-schema
//! constraints, translate them to questions, and select the best with the
//! discriminative phase.
//!
//! ```sh
//! cargo run --release --example astrophysics_pipeline
//! ```

use sciencebenchmark::data::{Domain, SizeClass};
use sciencebenchmark::embed::Discriminator;
use sciencebenchmark::gen::{GenOptions, Generator};
use sciencebenchmark::nl::LlmProfile;

fn main() {
    let domain = Domain::Sdss.build(SizeClass::Small);

    // Phase 1 — Seeding: template from the paper's Q3 (Spider hardness:
    // extra hard; uses the magnitude difference u - r).
    let q3 = "SELECT p.objid, s.specobjid FROM photoobj AS p \
              JOIN specobj AS s ON s.bestobjid = p.objid \
              WHERE s.class = 'GALAXY' AND p.u - p.r < 2.22 AND p.u - p.r > 1";
    let query = sb_sql::parse(q3).expect("Q3 parses");
    let template = sb_semql::extract(&query, &domain.db.schema).expect("Q3 extracts");
    println!("Q3 template:\n  {}", template.signature());
    println!("  leaf quadruples:");
    for quad in template.quadruples() {
        println!("    {quad}");
    }

    // Phase 2 — constrained generation: the sampler may only combine
    // columns of the same math group (magnitudes u g r i z).
    let mut generator = Generator::new(&domain.db, &domain.enhanced, 7);
    let (generated, stats) = generator.generate(&[template], 6, &GenOptions::default());
    println!(
        "\nGenerated {} variants ({} attempts, {} rejected empty):",
        generated.len(),
        stats.attempts(),
        stats.rejected_empty
    );
    for g in &generated {
        println!("  {}", g.query);
    }

    // Phase 3 — SQL-to-NL with the fine-tuned GPT-3 profile.
    let mut llm = LlmProfile::gpt3_finetuned(7);
    llm.fine_tune("sdss", 468 + domain.seed_patterns.len());
    let first = &generated.first().expect("at least one variant").query;
    let candidates = llm.candidates(first, &domain.enhanced, 8);
    println!("\n8 question candidates for `{first}`:");
    for c in &candidates {
        println!("  - {c}");
    }

    // Phase 4 — discriminative selection (geometric median, k = 2).
    let selected = Discriminator::new(2).select(&candidates);
    println!("\nSelected by the discriminative phase:");
    for s in selected {
        println!("  ✓ {s}");
    }
}
