#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before review.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
# --workspace: the root Cargo.toml is both a workspace and a package, so
# a bare `cargo build` would skip member-only binaries like profile_run.
cargo build --release --workspace

echo "== fuzz smoke: differential oracle, bounded (500 queries/domain) =="
SB_FUZZ_COUNT=500 cargo test -q -p sb-fuzz

echo "== cargo test -q (workspace) =="
cargo test -q --workspace

echo "== plan snapshots: regenerate and diff committed goldens =="
SB_UPDATE_PLANS=1 cargo test -q --test plan_snapshots
git diff --exit-code -- tests/goldens/plans || {
    echo "EXPLAIN plan goldens drifted; commit the regenerated files if intentional" >&2
    exit 1
}

echo "== obs smoke: SB_OBS=summary profile_run on one domain =="
report="$(mktemp)"
serve_report="$(mktemp)"
trap 'rm -f "$report" "$serve_report"' EXIT
SB_OBS=summary ./target/release/profile_run --quick --domain sdss > "$report"
./target/release/profile_run --validate "$report"
grep -q '"engine.scan.rows"' "$report" || {
    echo "profile_run report is missing engine counters" >&2
    exit 1
}
grep -q '"pipeline.pairs_emitted"' "$report" || {
    echo "profile_run report is missing pipeline counters" >&2
    exit 1
}

echo "== columnar smoke: batch engine live under default options =="
# ExecOptions::default() has columnar on; the report must carry batch
# counters, proving the vectorized path executed rather than silently
# falling back to the row engine everywhere. (The fuzz smoke above
# already differentially checks the +columnar half of the 96-config
# matrix against the reference interpreter.)
grep -q '"engine.columnar.selects"' "$report" || {
    echo "profile_run report is missing columnar batch counters (batch engine never ran)" >&2
    exit 1
}

echo "== serve smoke: in-process load run across all three domains =="
# Closed-loop mini load test against the concurrent query service (plan
# cache on, 4 clients), then shape-check the emitted BENCH document:
# well-formed JSON with per-domain qps and latency quantiles.
./target/release/serve_load --quick --out "$serve_report"
./target/release/serve_load --validate "$serve_report"
for key in '"qps"' '"p99"' '"cache"'; do
    grep -q "$key" "$serve_report" || {
        echo "BENCH_serve report is missing $key" >&2
        exit 1
    }
done
for domain in cordis sdss oncomx; do
    grep -q "\"domain\": \"$domain\"" "$serve_report" || {
        echo "BENCH_serve report is missing domain $domain" >&2
        exit 1
    }
done

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "All checks passed."
