#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before review.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== fuzz smoke: differential oracle, bounded (500 queries/domain) =="
SB_FUZZ_COUNT=500 cargo test -q -p sb-fuzz

echo "== cargo test -q (workspace) =="
cargo test -q --workspace

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "All checks passed."
